"""Figure 12 — comparison to Zhuang & Lee's hardware prefetch filter.

Paper reference points: the 8 KB hardware filter alone gains only 4.4 %
(it kills useful CDP prefetches along with the useless); ECDP+throttling
beats hwfilter+throttling; adding coordinated throttling helps the filter
too (the throttling benefit generalizes).
"""

from _common import BENCHES, CONFIG, run_once

from repro.experiments.metrics import geomean
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_benchmark

MECHANISMS = ["cdp", "hwfilter", "hwfilter+throttle", "ecdp+throttle"]


def compute():
    baselines = {b: run_benchmark(b, "baseline", CONFIG) for b in BENCHES}
    table = {}
    for mech in MECHANISMS:
        ratios, bpki = [], []
        for bench in BENCHES:
            result = run_benchmark(bench, mech, CONFIG)
            base = baselines[bench]
            ratios.append(result.ipc / base.ipc)
            bpki.append(
                (result.bpki / base.bpki - 1) * 100 if base.bpki else 0.0
            )
        table[mech] = ((geomean(ratios) - 1) * 100, sum(bpki) / len(bpki))
    return table


def bench_fig12_hw_filter(benchmark, show):
    table = run_once(benchmark, compute)
    rows = [
        (mech, f"{ipc:+.1f}%", f"{bpki:+.1f}%")
        for mech, (ipc, bpki) in table.items()
    ]
    show(
        format_table(
            ["mechanism", "gmean dIPC", "mean dBPKI"],
            rows,
            title="Figure 12 — hardware prefetch filtering comparison",
        )
    )
    # Shape: filter beats raw CDP; throttling helps it; ours still wins.
    assert table["hwfilter"][0] > table["cdp"][0]
    assert table["hwfilter+throttle"][0] >= table["hwfilter"][0]
    assert table["ecdp+throttle"][0] > table["hwfilter+throttle"][0]
