"""Related-work comparison points (Sections 7.1, 7.2, 7.4, 6.1.6).

* GRP-style coarse per-load hints (Wang et al.): the paper reimplements
  this and finds a negligible 0.4 % gain — enabling/disabling ALL
  pointers of a load cannot separate the beneficial PGs from the harmful.
* Srinivasan-style static load filtering: ~1 % for the same reason.
* Gendler et al.'s PAB selector: the paper measured it LOSING 11 %
  performance (it disables the covering prefetcher whenever a
  low-coverage one is more accurate).
* Section 6.1.6: profiling-input sensitivity — profiling on the ref
  input instead of train moves results by ~1 % (4 % for mst).
"""

from _common import BENCHES, CONFIG, run_once

from repro.experiments.metrics import geomean
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_benchmark

MECHANISMS = ["grp", "loadfilter", "gendler", "ecdp", "ecdp+throttle"]


def compute_coarse():
    baselines = {b: run_benchmark(b, "baseline", CONFIG) for b in BENCHES}
    table = {}
    for mech in MECHANISMS:
        ratios = [
            run_benchmark(b, mech, CONFIG).ipc / baselines[b].ipc
            for b in BENCHES
        ]
        table[mech] = (geomean(ratios) - 1) * 100
    return table


def bench_related_coarse_hints(benchmark, show):
    table = run_once(benchmark, compute_coarse)
    rows = [(mech, f"{gain:+.1f}%") for mech, gain in table.items()]
    show(
        format_table(
            ["mechanism", "gmean dIPC"],
            rows,
            title="Sections 7.1/7.2/7.4 — coarse hints and PAB selection",
        )
    )
    # Shape: fine-grained ECDP beats both coarse-grained schemes, and the
    # accuracy-only PAB selector trails the full proposal.
    assert table["ecdp"] >= table["grp"] - 0.5
    assert table["ecdp"] >= table["loadfilter"] - 0.5
    assert table["ecdp+throttle"] > table["gendler"]


def compute_profile_sensitivity():
    rows = []
    deltas = []
    for bench in BENCHES:
        train_profiled = run_benchmark(
            bench, "ecdp+throttle", CONFIG, profile_input="train"
        )
        self_profiled = run_benchmark(
            bench, "ecdp+throttle", CONFIG, profile_input="ref"
        )
        delta = (self_profiled.ipc / train_profiled.ipc - 1) * 100
        deltas.append(abs(delta))
        rows.append((bench, f"{delta:+.2f}%"))
    rows.append(("mean |delta|", f"{sum(deltas) / len(deltas):.2f}%"))
    return rows, deltas


def bench_profile_input_sensitivity(benchmark, show):
    rows, deltas = run_once(benchmark, compute_profile_sensitivity)
    show(
        format_table(
            ["benchmark", "self-profiled vs train-profiled dIPC"],
            rows,
            title="Section 6.1.6 — profiling input-set sensitivity",
        )
    )
    # Shape: hints transfer across inputs — most benchmarks move little.
    small = sum(1 for d in deltas if d < 5.0)
    assert small >= len(deltas) * 2 // 3
