"""Fixtures for the figure/table regeneration benches.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def show(capsys):
    """Print a rendered figure even under pytest's output capture."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print("\n" + text + "\n")

    return _show
