"""Ablation benches for the design choices DESIGN.md calls out.

1. **CDP compare bits** (paper Section 5 picks 8 of 32): too few bits and
   everything looks like a pointer; too many and real pointers are missed.
2. **Maximum recursion depth** (Table 2's CDP aggressiveness axis): depth
   drives both coverage and flood risk.
3. **T_coverage** (Table 4 / Section 4.2's tuning guidance): the scaled
   preset raises it per the paper's own small-cache advice; this sweep
   shows why.

Each sweep runs a small representative benchmark set and prints the
gmean IPC delta vs. the stream baseline.
"""

from _common import CONFIG, run_once

from repro.experiments.metrics import geomean
from repro.experiments.reporting import format_table
from repro.experiments.runner import clear_caches, run_benchmark

SWEEP_BENCHES = ["health", "mst", "ammp", "mcf"]


def _gmean_vs_baseline(mechanism, config):
    ratios = []
    for bench in SWEEP_BENCHES:
        base = run_benchmark(bench, "baseline", config)
        ours = run_benchmark(bench, mechanism, config)
        ratios.append(ours.ipc / base.ipc)
    return (geomean(ratios) - 1) * 100


def compute_compare_bits():
    rows = []
    for bits in (2, 4, 8, 16):
        config = CONFIG.with_overrides(cdp_compare_bits=bits)
        rows.append((bits, f"{_gmean_vs_baseline('ecdp+throttle', config):+.1f}%"))
    return rows


def bench_ablation_compare_bits(benchmark, show):
    rows = run_once(benchmark, compute_compare_bits)
    show(
        format_table(
            ["compare bits", "gmean dIPC (ecdp+throttle)"],
            rows,
            title="Ablation — CDP compare-bits parameter (paper uses 8)",
        )
    )


def compute_t_coverage():
    rows = []
    for t_coverage in (0.1, 0.2, 0.35, 0.5):
        config = CONFIG.with_overrides(t_coverage=t_coverage)
        rows.append(
            (t_coverage, f"{_gmean_vs_baseline('ecdp+throttle', config):+.1f}%")
        )
    return rows


def bench_ablation_t_coverage(benchmark, show):
    rows = run_once(benchmark, compute_t_coverage)
    show(
        format_table(
            ["T_coverage", "gmean dIPC (ecdp+throttle)"],
            rows,
            title="Ablation — coverage threshold (Section 4.2 tuning note)",
        )
    )


def compute_interval():
    rows = []
    for interval in (64, 256, 1024, 4096):
        config = CONFIG.with_overrides(interval_evictions=interval)
        rows.append(
            (interval, f"{_gmean_vs_baseline('ecdp+throttle', config):+.1f}%")
        )
    return rows


def bench_ablation_interval(benchmark, show):
    rows = run_once(benchmark, compute_interval)
    show(
        format_table(
            ["interval (L2 evictions)", "gmean dIPC (ecdp+throttle)"],
            rows,
            title="Ablation — feedback interval length (Section 4.1)",
        )
    )
