"""Figure 14 — dual-core results.

Twelve 2-benchmark multiprogrammed mixes (pointer-intensive and
non-intensive combined, as in Section 5), comparing weighted speedup and
system bus traffic of the full proposal against the stream baseline, plus
the DBP/Markov/GHB baselines on a mix subset.

Paper reference points: +10.4 % weighted speedup, -14.9 % bus traffic on
average; the pointer+pointer mixes gain most (xalancbmk+astar: +20 %,
-28.3 % traffic); non-intensive mixes ~flat.
"""

from _common import CONFIG, run_once

from repro.experiments.metrics import (
    total_bus_traffic_per_ki,
    weighted_speedup,
)
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_benchmark, run_multicore

#: 12 mixes: intensive+intensive, intensive+non, non+non (Section 5)
MIXES = [
    ("xalancbmk", "astar"),
    ("mcf", "health"),
    ("mst", "ammp"),
    ("omnetpp", "pfast"),
    ("perlbench", "bisort"),
    ("astar", "ammp"),
    ("mcf", "libquantum"),
    ("health", "GemsFDTD"),
    ("xalancbmk", "h264ref"),
    ("pfast", "milc"),
    ("GemsFDTD", "h264ref"),
    ("libquantum", "bwaves"),
]

BASELINE_MIXES = MIXES[:4]  # DBP/Markov/GHB run on a subset
COMPARISON_MECHS = ["dbp", "markov", "ghb"]


def compute():
    rows = []
    ws_gains, bus_deltas = [], []
    for mix in MIXES:
        alone = [run_benchmark(b, "baseline", CONFIG) for b in mix]
        shared_base = run_multicore(list(mix), "baseline", CONFIG)
        shared_ours = run_multicore(list(mix), "ecdp+throttle", CONFIG)
        ws_base = weighted_speedup(shared_base, alone)
        ws_ours = weighted_speedup(shared_ours, alone)
        bus_base = total_bus_traffic_per_ki(shared_base)
        bus_ours = total_bus_traffic_per_ki(shared_ours)
        gain = (ws_ours / ws_base - 1) * 100
        bus = (bus_ours / bus_base - 1) * 100 if bus_base else 0.0
        ws_gains.append(gain)
        bus_deltas.append(bus)
        rows.append(("+".join(mix), f"{ws_base:.2f}", f"{ws_ours:.2f}",
                     f"{gain:+.1f}%", f"{bus:+.1f}%"))
    rows.append(("mean", "", "",
                 f"{sum(ws_gains) / len(ws_gains):+.1f}%",
                 f"{sum(bus_deltas) / len(bus_deltas):+.1f}%"))

    comparison_rows = []
    for mech in COMPARISON_MECHS + ["ecdp+throttle"]:
        gains = []
        for mix in BASELINE_MIXES:
            alone = [run_benchmark(b, "baseline", CONFIG) for b in mix]
            base = weighted_speedup(
                run_multicore(list(mix), "baseline", CONFIG), alone
            )
            ours = weighted_speedup(
                run_multicore(list(mix), mech, CONFIG), alone
            )
            gains.append((ours / base - 1) * 100)
        comparison_rows.append((mech, f"{sum(gains) / len(gains):+.1f}%"))
    return rows, comparison_rows, sum(ws_gains) / len(ws_gains)


def bench_fig14_dualcore(benchmark, show):
    rows, comparison_rows, mean_gain = run_once(benchmark, compute)
    show(
        format_table(
            ["mix", "WS base", "WS ours", "dWS", "dBus"],
            rows,
            title="Figure 14 — dual-core weighted speedup and bus traffic",
        )
        + "\n\n"
        + format_table(
            ["mechanism", "mean dWS (4 pointer mixes)"],
            comparison_rows,
            title="Figure 14 (cont.) — prefetcher comparison on 2 cores",
        )
    )
    assert mean_gain > 0
