"""Sweep fan-out throughput — local vs subprocess backend.

Times the same content-addressed job matrix through the execution
engine under each in-machine executor backend (DESIGN.md §8) at
``--jobs`` 1/2/4, reporting jobs/minute per cell.  Per-job simulation
time is small (``input_set="test"``), so the numbers expose what the
bench is after: the dispatch + transport overhead each backend adds and
how it scales with slot count — not simulator speed (that is
``bench_perf_kernel.py``'s job).

Every run journals to a throwaway checkpoint, and the bench asserts the
cross-backend differential on the side: all cells at all slot counts
must converge to one identical set of journal content hashes.

Two entry points:

* ``pytest benchmarks/bench_sweep_fanout.py --benchmark-only`` — smoke
  variant (small matrix, jobs 1/2) for CI;
* ``PYTHONPATH=src python benchmarks/bench_sweep_fanout.py`` — the full
  measurement, written to ``BENCH_sweep.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.config import SystemConfig
from repro.experiments.engine import (
    CheckpointJournal,
    ExecutionEngine,
    Job,
    RetryPolicy,
)
from repro.experiments.engine.backends import create_backend
from repro.experiments.reporting import format_table
from repro.workloads.registry import pointer_intensive_names

#: both in-machine backends; `remote` needs an inventory, so it is
#: benched by its tests, not here
BACKENDS = ("local", "subprocess")
JOBS_GRID = (1, 2, 4)
MECHANISMS = ("baseline", "cdp")
INPUT_SET = "test"


def job_matrix(benchmarks: int) -> List[Job]:
    config = SystemConfig.scaled()
    return [
        Job(workload, mechanism, config, input_set=INPUT_SET)
        for workload in pointer_intensive_names()[:benchmarks]
        for mechanism in MECHANISMS
    ]


def _run_once(
    backend_name: str, slots: int, matrix: List[Job], scratch: Path
) -> Dict[str, Any]:
    """One timed sweep; returns seconds + the journal's content hashes."""
    journal = CheckpointJournal(
        scratch / f"{backend_name}-j{slots}.jsonl"
    )
    engine = ExecutionEngine(
        jobs=slots,
        timeout=300.0,
        retry=RetryPolicy(max_attempts=2),
        checkpoint=journal,
        backend=create_backend(backend_name),
    )
    start = time.perf_counter()
    try:
        report = engine.run(matrix)
    finally:
        engine.close()
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "ok": len(report.ok),
        "failed": len(report.failures),
        "hashes": journal.content_hashes(),
    }


def compute(
    benchmarks: int = 6,
    backends=BACKENDS,
    jobs_grid=JOBS_GRID,
    repeats: int = 2,
) -> Dict[str, Any]:
    """Run the grid; best-of *repeats* per (backend, slots) cell."""
    matrix = job_matrix(benchmarks)
    cells: List[Dict[str, Any]] = []
    hash_sets: List[Any] = []
    with tempfile.TemporaryDirectory(prefix="bench-fanout-") as tmp:
        scratch = Path(tmp)
        for backend_name in backends:
            for slots in jobs_grid:
                best: Optional[Dict[str, Any]] = None
                for repeat in range(repeats):
                    run_dir = scratch / f"r{repeat}"
                    run_dir.mkdir(exist_ok=True)
                    run = _run_once(backend_name, slots, matrix, run_dir)
                    if best is None or run["seconds"] < best["seconds"]:
                        best = run
                hash_sets.append(best.pop("hashes"))
                cells.append(
                    {
                        "backend": backend_name,
                        "jobs": slots,
                        "n_jobs": len(matrix),
                        "repeats": repeats,
                        "jobs_per_minute": (
                            60.0 * len(matrix) / best["seconds"]
                        ),
                        **best,
                    }
                )

    def rate(backend_name: str, slots: int) -> Optional[float]:
        for cell in cells:
            if (cell["backend"], cell["jobs"]) == (backend_name, slots):
                return cell["jobs_per_minute"]
        return None

    serial_local = rate("local", jobs_grid[0])
    headline = {
        "local_jobs_per_minute": rate("local", max(jobs_grid)),
        "subprocess_jobs_per_minute": rate("subprocess", max(jobs_grid)),
        "local_scaling": (
            rate("local", max(jobs_grid)) / serial_local
            if serial_local
            else None
        ),
        "subprocess_overhead_ratio": (
            rate("local", max(jobs_grid))
            / rate("subprocess", max(jobs_grid))
            if rate("subprocess", max(jobs_grid))
            else None
        ),
        "all_ok": all(cell["failed"] == 0 for cell in cells),
        # the differential: every backend x slots cell journals the
        # same content-addressed records
        "all_journals_identical": bool(hash_sets)
        and all(hashes == hash_sets[0] for hashes in hash_sets),
    }
    return {
        "benchmark": "bench_sweep_fanout",
        "config": "scaled",
        "input_set": INPUT_SET,
        "mechanisms": list(MECHANISMS),
        "versions": {
            "python": platform.python_version(),
            "python_implementation": platform.python_implementation(),
        },
        "cells": cells,
        "headline": headline,
    }


def render(payload: Dict[str, Any]) -> str:
    rows = []
    for cell in payload["cells"]:
        rows.append(
            (
                cell["backend"],
                str(cell["jobs"]),
                str(cell["n_jobs"]),
                f"{cell['seconds']:.2f}",
                f"{cell['jobs_per_minute']:,.0f}",
                str(cell["failed"]) if cell["failed"] else "-",
            )
        )
    headline = payload["headline"]
    rows.append(
        (
            "[headline]",
            "",
            "",
            "",
            f"local {headline['local_jobs_per_minute']:,.0f} vs "
            f"subprocess {headline['subprocess_jobs_per_minute']:,.0f}",
            "identical" if headline["all_journals_identical"] else "MISMATCH",
        )
    )
    return format_table(
        ["backend", "--jobs", "matrix", "seconds", "jobs/min", "failed"],
        rows,
        title="Sweep fan-out throughput — backend dispatch overhead",
    )


def bench_sweep_fanout(benchmark, show):
    """pytest entry: small matrix, jobs 1/2; correctness asserts only."""
    payload = benchmark.pedantic(
        lambda: compute(benchmarks=2, jobs_grid=(1, 2), repeats=1),
        rounds=1,
        iterations=1,
    )
    show(render(payload))
    assert payload["headline"]["all_ok"]
    assert payload["headline"]["all_journals_identical"]
    assert all(cell["jobs_per_minute"] > 0 for cell in payload["cells"])


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="sweep fan-out throughput: local vs subprocess backend"
    )
    repo_root = Path(__file__).resolve().parent.parent
    parser.add_argument(
        "--out",
        type=Path,
        default=repo_root / "BENCH_sweep.json",
        help="output JSON path (default: BENCH_sweep.json at repo root)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small matrix, jobs 1/2, one repeat (CI)",
    )
    parser.add_argument("--benchmarks", type=int, default=6,
                        help="pointer workloads in the matrix")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed sweeps per cell (best-of)")
    args = parser.parse_args(argv)

    if args.smoke:
        payload = compute(benchmarks=2, jobs_grid=(1, 2), repeats=1)
    else:
        payload = compute(
            benchmarks=args.benchmarks, repeats=args.repeats
        )
    print(render(payload))
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}", file=sys.stderr)
    if not (
        payload["headline"]["all_ok"]
        and payload["headline"]["all_journals_identical"]
    ):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
