"""Section 6.7 — the remaining (non-pointer-intensive) benchmarks.

Paper reference points: the full proposal changes nothing on benchmarks
with no LDS misses — +0.3 % IPC and -0.1 % bandwidth on average.
"""

from _common import CONFIG, run_once

from repro.experiments.metrics import geomean
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_benchmark
from repro.workloads.registry import non_pointer_names


def compute():
    rows = []
    ratios, bpki_deltas = [], []
    for bench in non_pointer_names():
        base = run_benchmark(bench, "baseline", CONFIG)
        ours = run_benchmark(bench, "ecdp+throttle", CONFIG)
        ratio = ours.ipc / base.ipc
        bpki = (ours.bpki / base.bpki - 1) * 100 if base.bpki else 0.0
        ratios.append(ratio)
        bpki_deltas.append(bpki)
        rows.append((bench, f"{(ratio - 1) * 100:+.2f}%", f"{bpki:+.2f}%"))
    mean_ipc = (geomean(ratios) - 1) * 100
    mean_bpki = sum(bpki_deltas) / len(bpki_deltas)
    rows.append(("mean", f"{mean_ipc:+.2f}%", f"{mean_bpki:+.2f}%"))
    return rows, mean_ipc, mean_bpki


def bench_sec67_nonpointer(benchmark, show):
    rows, mean_ipc, mean_bpki = run_once(benchmark, compute)
    show(
        format_table(
            ["benchmark", "dIPC", "dBPKI"],
            rows,
            title="Section 6.7 — non-pointer-intensive benchmarks",
        )
    )
    # Shape: essentially no effect either way.
    assert -2.0 < mean_ipc < 5.0
    assert abs(mean_bpki) < 10.0
