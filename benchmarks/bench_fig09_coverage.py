"""Figure 9 — prefetcher coverage under each mechanism.

Paper reference points: ECDP with throttling *slightly reduces* average
coverage of both prefetchers — the stated price of the accuracy gains
("the loss in coverage is the price paid for the increase in accuracy").
ECDP improves CDP coverage on art/health/perimeter/pfast by removing
polluting prefetches.
"""

from _common import BENCHES, CONFIG, run_once

from repro.experiments.reporting import format_table, side_by_side
from repro.experiments.runner import run_benchmark

CDP_MECHS = ["cdp", "ecdp", "ecdp+throttle"]
STREAM_MECHS = ["baseline", "cdp", "ecdp", "ecdp+throttle"]


def compute():
    cdp_rows, stream_rows = [], []
    for bench in BENCHES:
        cdp_cells = [bench]
        for mech in CDP_MECHS:
            result = run_benchmark(bench, mech, CONFIG)
            cdp_cells.append(f"{result.coverage('cdp') * 100:.0f}%")
        cdp_rows.append(cdp_cells)
        stream_cells = [bench]
        for mech in STREAM_MECHS:
            result = run_benchmark(bench, mech, CONFIG)
            stream_cells.append(f"{result.coverage('stream') * 100:.0f}%")
        stream_rows.append(stream_cells)
    return cdp_rows, stream_rows


def bench_fig09_coverage(benchmark, show):
    cdp_rows, stream_rows = run_once(benchmark, compute)
    left = format_table(
        ["benchmark"] + CDP_MECHS, cdp_rows, title="CDP coverage"
    )
    right = format_table(
        ["benchmark"] + STREAM_MECHS, stream_rows, title="Stream coverage"
    )
    show("Figure 9 — prefetcher coverage\n" + side_by_side(left, right))
