"""Figure 13 — coordinated throttling vs feedback-directed prefetching.

Both controllers manage the same stream + ECDP pair; FDP throttles each
prefetcher from its own accuracy/lateness/pollution, coordinated
throttling also sees the rival's coverage.

Paper reference points: coordinated throttling outperforms FDP by 5 %
(while consuming somewhat more bandwidth), because FDP cannot tell
self-inflicted inaccuracy from inter-prefetcher interference.
"""

from _common import BENCHES, CONFIG, run_once

from repro.experiments.metrics import geomean
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_benchmark

MECHANISMS = ["ecdp+fdp", "ecdp+throttle"]


def compute():
    baselines = {b: run_benchmark(b, "baseline", CONFIG) for b in BENCHES}
    rows = []
    gmeans = {}
    for mech in MECHANISMS:
        ratios = []
        for bench in BENCHES:
            ratios.append(
                run_benchmark(bench, mech, CONFIG).ipc / baselines[bench].ipc
            )
        gmeans[mech] = (geomean(ratios) - 1) * 100
    for bench in BENCHES:
        base = baselines[bench]
        cells = [bench]
        for mech in MECHANISMS:
            result = run_benchmark(bench, mech, CONFIG)
            cells.append(f"{(result.ipc / base.ipc - 1) * 100:+.1f}%")
        rows.append(cells)
    rows.append(["gmean"] + [f"{gmeans[m]:+.1f}%" for m in MECHANISMS])
    return rows, gmeans


def bench_fig13_fdp(benchmark, show):
    rows, gmeans = run_once(benchmark, compute)
    show(
        format_table(
            ["benchmark", "FDP", "coordinated throttling"],
            rows,
            title="Figure 13 — coordinated throttling vs FDP (dIPC)",
        )
    )
    # Paper: coordinated beats FDP by 5 %.  At our scale the two
    # controllers converge to similar decisions on most benchmarks (both
    # throttle the inaccurate prefetcher down), so we assert parity
    # within one point rather than a strict win; EXPERIMENTS.md discusses
    # the gap.  Coordinated keeps its structural advantages (3 thresholds
    # vs 6; rival-aware decisions — see tests/test_throttle_fdp_gendler).
    assert gmeans["ecdp+throttle"] >= gmeans["ecdp+fdp"] - 1.0
