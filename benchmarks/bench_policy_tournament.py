"""Policy tournament: every throttling controller, scored on perf/BW.

The policy subsystem (``repro.policy``) makes the controller between
the feedback collector and the aggressiveness ladders pluggable; this
bench races the controllers against each other on the workload zoo and
ranks them on the paper's own economy — performance delivered per unit
of bus bandwidth spent.

Three phases:

1. **record** — run the default table3 controller with telemetry on
   every tournament workload, persisting one interval series per
   workload;
2. **train** — fit the tabular Q-learning policy offline on those
   recorded series (deterministic replay; the trained table travels
   inside ``policy_params`` and therefore inside each job's content
   hash);
3. **tournament** — run every entrant on every workload through the
   sweep engine and score each cell against the ``static-3`` entrant
   (all prefetchers pinned Aggressive — the paper's no-throttling
   baseline)::

       score = (IPC / IPC_static3) / (BPKI / BPKI_static3)

   A score above 1.0 means the controller bought a better
   performance-per-bandwidth point than running wide open.

Entrants: ``table3`` (the paper's heuristic), ``qlearn`` trained
offline, ``bandit`` learning online, ``pid`` on accuracy, and the
``static`` pin at levels 3 and 1.  The ranking is by geometric-mean
score across workloads.

Two entry points:

* ``pytest benchmarks/bench_policy_tournament.py --benchmark-only`` —
  smoke variant (2 policies x 2 workloads on the test input; CI's
  policy-smoke job);
* ``PYTHONPATH=src python benchmarks/bench_policy_tournament.py`` —
  the full tournament, written to ``BENCH_policy.json`` at the repo
  root.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.config import SystemConfig
from repro.experiments.engine import (
    CheckpointJournal,
    ExecutionEngine,
    Job,
    RetryPolicy,
)
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_benchmark
from repro.policy import train_policy
from repro.telemetry import Telemetry, TelemetryConfig, write_series_jsonl

MECHANISM = "ecdp+throttle"
WORKLOADS = ["mst", "health", "perimeter"]
INPUT_SET = "train"

SMOKE_WORKLOADS = ["mst", "health"]
SMOKE_INPUT_SET = "test"

#: the test input completes zero feedback intervals at scaled defaults,
#: so the smoke tournament shrinks the L2 and the interval the same way
#: the differential suite does — policies then act tens of times even
#: on the tiny input
SMOKE_OVERRIDES = {"l2_size": 8192, "interval_evictions": 32}

#: the normalizer: every prefetcher pinned at Aggressive = no throttling
NORMALIZER = "static-3"

#: entrant name -> (policy, params); qlearn-trained params are injected
#: after the training phase
ENTRANTS: Dict[str, tuple] = {
    "table3": ("table3", ""),
    "qlearn-trained": ("qlearn", None),  # filled by train phase
    "bandit-online": ("bandit", "epsilon=0.1,seed=3"),
    "pid": ("pid", ""),
    "static-3": ("static", "level=3"),
    "static-1": ("static", "level=1"),
}

SMOKE_ENTRANTS = ["qlearn-trained", "static-3"]


def record_series(
    workloads: List[str], input_set: str, directory: Path,
    config: SystemConfig,
) -> List[str]:
    """Phase 1: one table3-governed interval series per workload."""
    directory.mkdir(parents=True, exist_ok=True)
    files: List[str] = []
    for workload in workloads:
        telemetry = Telemetry(TelemetryConfig(series=True))
        run_benchmark(
            workload, MECHANISM, config,
            input_set=input_set, telemetry=telemetry, use_cache=False,
        )
        path = directory / f"{workload}.series.jsonl"
        write_series_jsonl(telemetry, path)
        files.append(str(path))
    return files


def run_tournament(
    entrants: Dict[str, tuple],
    workloads: List[str],
    input_set: str,
    base: SystemConfig,
    jobs: int = 2,
    timeout: Optional[float] = 900.0,
    checkpoint: Optional[CheckpointJournal] = None,
    resume: bool = False,
) -> Dict[str, Any]:
    """Phase 3: the entrant x workload matrix through the sweep engine."""
    matrix = []
    job_entrant: Dict[str, str] = {}
    for name, (policy, params) in entrants.items():
        config = base.with_overrides(
            throttle_policy=policy, policy_params=params
        ).validate()
        for workload in workloads:
            job = Job(workload, MECHANISM, config, input_set=input_set)
            matrix.append(job)
            job_entrant[job.key()] = name
    engine = ExecutionEngine(
        jobs=jobs,
        timeout=timeout,
        retry=RetryPolicy(max_attempts=2),
        checkpoint=checkpoint,
    )
    try:
        report = engine.run(matrix, resume=resume)
    finally:
        engine.close()

    cells: List[Dict[str, Any]] = []
    failures: List[Dict[str, str]] = []
    for outcome in report:
        job = outcome.job
        entrant = job_entrant[job.key()]
        if not outcome.ok:
            failures.append(
                {"cell": f"{entrant}/{job.benchmark}",
                 "reason": outcome.failure.reason}
            )
            continue
        result = outcome.result
        policy, params = entrants[entrant]
        cells.append({
            "workload": job.benchmark,
            "entrant": entrant,
            "policy": policy,
            "policy_params": params,
            "ipc": result.ipc,
            "bpki": result.bpki,
        })
    return {"cells": cells, "failures": failures}


def score_cells(cells: List[Dict[str, Any]]) -> None:
    """Attach per-cell perf/BW scores vs the NORMALIZER entrant, in place."""
    norms = {
        cell["workload"]: cell
        for cell in cells
        if cell["entrant"] == NORMALIZER
    }
    for cell in cells:
        norm = norms.get(cell["workload"])
        if norm is None or not norm["ipc"]:
            cell.update(ipc_ratio=None, bpki_ratio=None, score=None)
            continue
        ipc_ratio = cell["ipc"] / norm["ipc"]
        bpki_ratio = (
            max(cell["bpki"], 1e-9) / max(norm["bpki"], 1e-9)
        )
        cell.update(
            ipc_ratio=ipc_ratio,
            bpki_ratio=bpki_ratio,
            score=ipc_ratio / bpki_ratio,
        )


def _geomean(values: List[float]) -> Optional[float]:
    if not values or any(v <= 0 for v in values):
        return None
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def rank_entrants(
    entrants: Dict[str, tuple], cells: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Geomean score per entrant, best first."""
    ranking = []
    for name, (policy, params) in entrants.items():
        mine = [c for c in cells if c["entrant"] == name
                and c.get("score") is not None]
        ranking.append({
            "entrant": name,
            "policy": policy,
            "workloads_scored": len(mine),
            "geomean_score": _geomean([c["score"] for c in mine]),
            "geomean_ipc_ratio": _geomean(
                [c["ipc_ratio"] for c in mine]
            ),
            "geomean_bpki_ratio": _geomean(
                [c["bpki_ratio"] for c in mine]
            ),
        })
    ranking.sort(
        key=lambda row: (
            row["geomean_score"] is not None,
            row["geomean_score"] or 0.0,
        ),
        reverse=True,
    )
    return ranking


def compute(
    smoke: bool = False,
    jobs: int = 2,
    timeout: Optional[float] = 900.0,
    checkpoint: Optional[CheckpointJournal] = None,
    resume: bool = False,
    series_dir: Optional[Path] = None,
) -> Dict[str, Any]:
    """All three phases; returns the BENCH_policy.json payload."""
    workloads = SMOKE_WORKLOADS if smoke else WORKLOADS
    input_set = SMOKE_INPUT_SET if smoke else INPUT_SET
    base = SystemConfig.scaled()
    if smoke:
        base = base.with_overrides(**SMOKE_OVERRIDES)
    entrants = dict(ENTRANTS)
    if smoke:
        entrants = {name: entrants[name] for name in SMOKE_ENTRANTS}

    series_dir = series_dir or (
        Path(".repro-checkpoints") / "policy-tournament-series"
    )
    series_files = record_series(workloads, input_set, series_dir, base)
    training = train_policy(series_files, policy="qlearn")
    if "qlearn-trained" in entrants:
        entrants["qlearn-trained"] = (
            "qlearn", training["policy_params"]
        )

    outcome = run_tournament(
        entrants, workloads, input_set, base,
        jobs=jobs, timeout=timeout, checkpoint=checkpoint, resume=resume,
    )
    score_cells(outcome["cells"])
    ranking = rank_entrants(entrants, outcome["cells"])
    return {
        "benchmark": "bench_policy_tournament",
        "mechanism": MECHANISM,
        "config": "scaled",
        "input_set": input_set,
        "smoke": smoke,
        "workloads": workloads,
        "normalizer": NORMALIZER,
        "entrants": [
            {"entrant": name, "policy": policy, "policy_params": params}
            for name, (policy, params) in entrants.items()
        ],
        "training": {
            key: training[key]
            for key in ("policy", "rows", "transitions",
                        "states_visited", "hyperparameters")
        },
        "cells": outcome["cells"],
        "ranking": ranking,
        "failures": outcome["failures"],
    }


#: schema floor for the full artifact (CI validates the smoke shape
#: with the same checker minus the count floors)
FULL_MIN_POLICIES = 4
FULL_MIN_WORKLOADS = 3

_CELL_KEYS = {"workload", "entrant", "policy", "policy_params",
              "ipc", "bpki", "ipc_ratio", "bpki_ratio", "score"}
_RANK_KEYS = {"entrant", "policy", "workloads_scored", "geomean_score",
              "geomean_ipc_ratio", "geomean_bpki_ratio"}


def validate_payload(payload: Dict[str, Any], smoke: bool = False) -> None:
    """Assert the BENCH_policy.json schema (used by CI and the tests)."""
    for key in ("benchmark", "mechanism", "workloads", "normalizer",
                "entrants", "training", "cells", "ranking", "failures"):
        assert key in payload, f"payload missing {key!r}"
    assert payload["benchmark"] == "bench_policy_tournament"
    assert not payload["failures"], payload["failures"]
    policies = {e["policy"] for e in payload["entrants"]}
    if not smoke:
        assert len(policies) >= FULL_MIN_POLICIES, (
            f"full tournament must rank >= {FULL_MIN_POLICIES} distinct "
            f"policies, got {sorted(policies)}"
        )
        assert len(payload["workloads"]) >= FULL_MIN_WORKLOADS
        assert {"table3", "pid", "static"} <= policies
        assert policies & {"qlearn", "bandit"}
    n_expected = len(payload["entrants"]) * len(payload["workloads"])
    assert len(payload["cells"]) == n_expected
    for cell in payload["cells"]:
        assert _CELL_KEYS <= set(cell), f"cell missing keys: {cell}"
        assert cell["score"] is not None and cell["score"] > 0
        if cell["entrant"] == payload["normalizer"]:
            assert abs(cell["score"] - 1.0) < 1e-9
    assert len(payload["ranking"]) == len(payload["entrants"])
    for row in payload["ranking"]:
        assert _RANK_KEYS <= set(row), f"ranking row missing keys: {row}"
        assert row["geomean_score"] is not None
    scores = [row["geomean_score"] for row in payload["ranking"]]
    assert scores == sorted(scores, reverse=True)
    assert payload["training"]["transitions"] > 0


def render(payload: Dict[str, Any]) -> str:
    def fmt(value: Optional[float]) -> str:
        return f"{value:.3f}" if value is not None else "n/a"

    rows = []
    for rank, row in enumerate(payload["ranking"], 1):
        per_workload = {
            c["workload"]: c
            for c in payload["cells"]
            if c["entrant"] == row["entrant"]
        }
        rows.append((
            f"{rank}",
            row["entrant"],
            fmt(row["geomean_score"]),
            fmt(row["geomean_ipc_ratio"]),
            fmt(row["geomean_bpki_ratio"]),
            " ".join(
                f"{w}={fmt(per_workload[w]['score'])}"
                for w in payload["workloads"]
                if w in per_workload
            ),
        ))
    for failure in payload["failures"]:
        rows.append(("-", failure["cell"], "FAILED",
                     failure["reason"], "", ""))
    return format_table(
        ["#", "entrant", "perf/BW", "dIPC", "dBPKI", "per-workload"],
        rows,
        title=(
            "Throttling-policy tournament — geomean perf-per-bandwidth "
            f"vs {payload['normalizer']} "
            f"({', '.join(payload['workloads'])})"
        ),
    )


def bench_policy_tournament(benchmark, show, tmp_path):
    """pytest entry: the smoke tournament plus schema validation."""
    payload = benchmark.pedantic(
        compute,
        kwargs={"smoke": True, "series_dir": tmp_path / "series"},
        rounds=1, iterations=1,
    )
    show(render(payload))
    validate_payload(payload, smoke=True)
    entrants = {e["entrant"] for e in payload["entrants"]}
    assert entrants == set(SMOKE_ENTRANTS)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="throttling-policy tournament on perf per bandwidth"
    )
    repo_root = Path(__file__).resolve().parent.parent
    parser.add_argument(
        "--out",
        type=Path,
        default=repo_root / "BENCH_policy.json",
        help="output JSON path (default: BENCH_policy.json at repo root)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="2 policies x 2 workloads on the test input (CI)",
    )
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--resume", action="store_true",
                        help="resume the tournament matrix from its "
                             "checkpoint journal")
    parser.add_argument("--checkpoint-dir", default=".repro-checkpoints")
    args = parser.parse_args(argv)

    journal = CheckpointJournal.for_sweep(
        "policy-tournament", args.checkpoint_dir
    )
    if not args.resume:
        journal.clear()
    payload = compute(
        smoke=args.smoke, jobs=args.jobs,
        checkpoint=journal, resume=args.resume,
        series_dir=Path(args.checkpoint_dir) / "policy-tournament-series",
    )
    print(render(payload))
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}", file=sys.stderr)
    try:
        validate_payload(payload, smoke=args.smoke)
    except AssertionError as error:
        print(f"schema validation failed: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
