"""Table 7 — hardware storage cost of the proposal, and the Section
6.3/7.3 cost comparison against other LDS prefetchers.

Paper reference points: 17296 bits = 2.11 KB total (0.206 % of the 1 MB
L2); only 912 bits if the prefetched bits already exist; Markov needs
1 MB, GHB 12 KB, DBP ~3 KB, the pointer cache 1.1 MB.
"""

from _common import CONFIG, run_once

from repro.core.config import SystemConfig
from repro.cost.hardware import baseline_costs, proposal_cost
from repro.experiments.reporting import format_table


def compute():
    paper_config = SystemConfig.paper()
    report = proposal_cost(paper_config)
    lines = [(line.description, line.bits) for line in report.lines]
    lines.append(("total", report.total_bits))
    comparison = sorted(
        baseline_costs(paper_config).items(), key=lambda kv: kv[1]
    )
    return report, lines, comparison


def bench_table7_cost(benchmark, show):
    report, lines, comparison = run_once(benchmark, compute)
    show(
        format_table(
            ["component", "bits"],
            lines,
            title="Table 7 — hardware cost of ECDP + coordinated throttling",
        )
        + f"\n  = {report.total_kilobytes:.2f} KB "
        f"({report.area_overhead_vs_l2(SystemConfig.paper().l2_size) * 100:.3f}% "
        "of the 1 MB L2)\n\n"
        + format_table(
            ["prefetcher", "storage (KB)"],
            [(name, f"{kb:.2f}") for name, kb in comparison],
            title="Section 6.3/7.3 — storage comparison",
        )
    )
    assert report.total_bits == 17296  # Table 7, to the bit
