"""Figure 2 + Table 1 — the original CDP's cost.

Adding greedy CDP to the stream-prefetcher baseline: IPC (normalized) and
BPKI per benchmark, plus CDP's prefetch accuracy (Table 1).

Paper reference points: average IPC -14 %, bandwidth +83.3 %; accuracy
1.4 % on mcf/mst vs 83.3 % on perimeter; big losers mcf, xalancbmk,
bisort, mst.
"""

from _common import BENCHES, CONFIG, run_once

from repro.experiments.metrics import (
    bpki_delta_percent,
    geomean,
    ipc_delta_percent,
)
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_benchmark


def compute():
    rows = []
    ratios = []
    bpki_deltas = []
    for bench in BENCHES:
        base = run_benchmark(bench, "baseline", CONFIG)
        cdp = run_benchmark(bench, "cdp", CONFIG)
        ratios.append(cdp.ipc / base.ipc)
        bpki_deltas.append(bpki_delta_percent(cdp, base))
        rows.append(
            (
                bench,
                f"{cdp.ipc / base.ipc:.2f}",
                f"{ipc_delta_percent(cdp, base):+.1f}%",
                f"{bpki_delta_percent(cdp, base):+.1f}%",
                f"{cdp.accuracy('cdp') * 100:.1f}%",
            )
        )
    rows.append(
        (
            "mean",
            f"{geomean(ratios):.2f}",
            f"{(geomean(ratios) - 1) * 100:+.1f}%",
            f"{sum(bpki_deltas) / len(bpki_deltas):+.1f}%",
            "",
        )
    )
    return rows


def bench_fig02_original_cdp(benchmark, show):
    rows = run_once(benchmark, compute)
    show(
        format_table(
            ["benchmark", "IPC vs baseline", "dIPC", "dBPKI",
             "CDP accuracy (Table 1)"],
            rows,
            title="Figure 2 / Table 1 — original content-directed prefetching",
        )
    )
