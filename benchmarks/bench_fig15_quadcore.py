"""Figure 15 — 4-core case studies.

The paper's four workload case studies: one all-pointer-intensive mix,
two mixed, one mostly non-intensive.

Paper reference points: +9.5 % weighted speedup / +9.7 % hmean speedup,
-15.3 % bus traffic on average; benefits concentrate in the
pointer-intensive mixes.
"""

from _common import CONFIG, run_once

from repro.experiments.metrics import (
    hmean_speedup,
    total_bus_traffic_per_ki,
    weighted_speedup,
)
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_benchmark, run_multicore

MIXES = [
    ("mcf", "astar", "health", "mst"),            # 4 pointer-intensive
    ("xalancbmk", "ammp", "libquantum", "milc"),  # mixed
    ("omnetpp", "pfast", "GemsFDTD", "bwaves"),   # mixed
    ("perlbench", "h264ref", "sjeng", "bwaves"),  # mostly non-intensive
]


def compute():
    rows = []
    ws_gains, hs_gains, bus_deltas = [], [], []
    for mix in MIXES:
        alone = [run_benchmark(b, "baseline", CONFIG) for b in mix]
        shared_base = run_multicore(list(mix), "baseline", CONFIG)
        shared_ours = run_multicore(list(mix), "ecdp+throttle", CONFIG)
        ws = (
            weighted_speedup(shared_ours, alone)
            / weighted_speedup(shared_base, alone)
            - 1
        ) * 100
        hs = (
            hmean_speedup(shared_ours, alone)
            / hmean_speedup(shared_base, alone)
            - 1
        ) * 100
        bus_base = total_bus_traffic_per_ki(shared_base)
        bus = (
            (total_bus_traffic_per_ki(shared_ours) / bus_base - 1) * 100
            if bus_base
            else 0.0
        )
        ws_gains.append(ws)
        hs_gains.append(hs)
        bus_deltas.append(bus)
        rows.append(("+".join(mix), f"{ws:+.1f}%", f"{hs:+.1f}%", f"{bus:+.1f}%"))
    rows.append(
        (
            "mean",
            f"{sum(ws_gains) / 4:+.1f}%",
            f"{sum(hs_gains) / 4:+.1f}%",
            f"{sum(bus_deltas) / 4:+.1f}%",
        )
    )
    return rows, ws_gains


def bench_fig15_quadcore(benchmark, show):
    rows, ws_gains = run_once(benchmark, compute)
    show(
        format_table(
            ["mix", "dWS", "dHS", "dBus"],
            rows,
            title="Figure 15 — 4-core weighted/hmean speedup and bus traffic",
        )
    )
    assert sum(ws_gains) / len(ws_gains) > 0
    # Pointer-intensive mix gains at least as much as the non-intensive one.
    assert ws_gains[0] >= ws_gains[3] - 1.0
