"""Figure 8 — prefetcher accuracy under each mechanism.

Top: CDP accuracy (original CDP, ECDP, ECDP+throttling).  Bottom: stream
prefetcher accuracy (baseline, +CDP, +ECDP, +ECDP+throttling).

Paper reference points: ECDP with throttling raises CDP accuracy 129 %
and stream accuracy 28 % relative to stream+original-CDP; health is the
noted exception on the stream side.
"""

from _common import BENCHES, CONFIG, run_once

from repro.experiments.reporting import format_table, side_by_side
from repro.experiments.runner import run_benchmark

CDP_MECHS = ["cdp", "ecdp", "ecdp+throttle"]
STREAM_MECHS = ["baseline", "cdp", "ecdp", "ecdp+throttle"]


def compute():
    cdp_rows, stream_rows = [], []
    totals = {m: [0, 0] for m in CDP_MECHS}  # [used, issued] across suite
    for bench in BENCHES:
        cdp_cells = [bench]
        for mech in CDP_MECHS:
            result = run_benchmark(bench, mech, CONFIG)
            stats = result.prefetchers["cdp"]
            totals[mech][0] += stats.used
            totals[mech][1] += stats.issued
            cdp_cells.append(
                f"{stats.accuracy * 100:.0f}%" if stats.issued else "-"
            )
        cdp_rows.append(cdp_cells)
        stream_cells = [bench]
        for mech in STREAM_MECHS:
            result = run_benchmark(bench, mech, CONFIG)
            stream_cells.append(f"{result.accuracy('stream') * 100:.0f}%")
        stream_rows.append(stream_cells)
    # Suite-level accuracy = total used / total issued.  A per-benchmark
    # arithmetic mean would treat "ECDP filtered this benchmark to
    # silence" (0 issued) as accuracy 0, which is the opposite of what
    # happened.  '-' cells in the table mark exactly those benchmarks.
    cdp_rows.append(
        ["suite (used/issued)"]
        + [
            f"{totals[m][0] / totals[m][1] * 100:.0f}%" if totals[m][1] else "-"
            for m in CDP_MECHS
        ]
    )
    return cdp_rows, stream_rows, totals


def bench_fig08_accuracy(benchmark, show):
    cdp_rows, stream_rows, totals = run_once(benchmark, compute)
    left = format_table(
        ["benchmark"] + CDP_MECHS, cdp_rows, title="CDP accuracy"
    )
    right = format_table(
        ["benchmark"] + STREAM_MECHS, stream_rows, title="Stream accuracy"
    )
    show("Figure 8 — prefetcher accuracy\n" + side_by_side(left, right))
    # Shape: our techniques raise suite-level CDP accuracy over greedy CDP.
    greedy = totals["cdp"][0] / totals["cdp"][1]
    ours = totals["ecdp+throttle"][0] / totals["ecdp+throttle"][1]
    assert ours > greedy
