"""Figure 10 — the distribution of pointer-group usefulness, before and
after ECDP's hint filtering.

Paper reference points: under original CDP only 27 % of PGs are very
useful (75-100 %) and 46 % are very useless (0-25 %); with ECDP the
very-useful fraction rises to 68.5 % and very-useless falls to 5.2 %.
"""

from _common import BENCHES, CONFIG, run_once

from repro.compiler.hints import HintTable
from repro.compiler.profiler import profile_trace
from repro.experiments.reporting import format_table
from repro.experiments.runner import profile_benchmark, profiler_config
from repro.workloads.registry import get_workload

LABELS = ["0-25%", "25-50%", "50-75%", "75-100%"]


def compute():
    config = profiler_config(CONFIG)
    before_total = [0, 0, 0, 0]
    after_total = [0, 0, 0, 0]
    for bench in BENCHES:
        # Before: greedy CDP PG usefulness, measured on the ref input.
        ref = get_workload(bench).build("ref")
        before = profile_trace(ref.memory, ref.trace(), config)
        for bin_index, count in enumerate(before.usefulness_histogram()):
            before_total[bin_index] += count
        # After: same measurement with the train-profiled hints installed.
        hints = HintTable.from_profile(profile_benchmark(bench, CONFIG))
        ref2 = get_workload(bench).build("ref")
        after = profile_trace(
            ref2.memory, ref2.trace(), config, hint_filter=hints.allows
        )
        for bin_index, count in enumerate(after.usefulness_histogram()):
            after_total[bin_index] += count
    return before_total, after_total


def _percent(counts):
    total = sum(counts) or 1
    return [f"{c / total * 100:.1f}%" for c in counts]


def bench_fig10_pg_usefulness(benchmark, show):
    before, after = run_once(benchmark, compute)
    rows = [
        ["original CDP"] + _percent(before),
        ["ECDP"] + _percent(after),
    ]
    show(
        format_table(
            ["mechanism"] + LABELS,
            rows,
            title="Figure 10 — PG usefulness distribution (all benchmarks)",
        )
    )
    # Shape: ECDP shifts mass from very-useless to very-useful.
    before_frac = before[3] / (sum(before) or 1)
    after_frac = after[3] / (sum(after) or 1)
    assert after_frac > before_frac
    assert after[0] / (sum(after) or 1) < before[0] / (sum(before) or 1)
