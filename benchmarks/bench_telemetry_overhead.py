"""Telemetry overhead microbenchmark — the zero-cost-when-disabled budget.

Telemetry's contract (see :mod:`repro.telemetry.session`) has two
halves, and this benchmark measures both on the kernel microbenchmark's
headline cell (``mst`` / ``no-prefetch``, the olden pointer chase on the
raw kernel) plus the stream baseline:

* **disabled budget**: with ``telemetry=None`` the engines must run
  their pre-telemetry hot paths.  Wall-clock on one machine cannot be
  compared against wall-clock recorded on another, so the check is a
  ratio of ratios: the current fast-vs-reference speedup must be within
  2% of the speedup recorded in ``BENCH_kernel.json`` (both engines
  share the disabled-path changes, so a hot-path regression shows up as
  a shifted ratio).
* **enabled cost**: series-only and series+trace runs are timed against
  the disabled run to report what recording actually costs (informative,
  not asserted — enabled overhead is allowed, it just has to be known).

Entry points::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py
    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py \\
        --smoke --check-budget BENCH_kernel.json   # CI perf-smoke step
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.config import SystemConfig
from repro.experiments.configs import get_mechanism
from repro.experiments.kernel_bench import OPS_ENV, REPEATS_ENV, time_engine
from repro.experiments.reporting import format_table
from repro.experiments.runner import build_core, hint_filter_for, make_dram
from repro.telemetry import Telemetry, TelemetryConfig
from repro.workloads.registry import get_workload

#: measured cells: the kernel headline plus the stream baseline
CELLS = [("mst", "no-prefetch"), ("mst", "baseline")]
INPUT_SET = "train"

#: disabled-overhead budget: current speedup may drift at most this much
#: below the recorded one (2%, the acceptance bar)
BUDGET = 0.02

#: telemetry modes timed for the enabled-cost report
MODES = {
    "disabled": None,
    "series": TelemetryConfig(series=True, trace=False),
    "trace": TelemetryConfig(series=True, trace=True),
}


def _rounds() -> int:
    try:
        return max(1, int(os.environ.get(REPEATS_ENV, "3")))
    except ValueError:
        return 3


def _budget_ops() -> Optional[int]:
    try:
        value = int(os.environ.get(OPS_ENV, "0"))
    except ValueError:
        return None
    return value if value > 0 else None


def time_mode(
    benchmark: str,
    mechanism: str,
    config: SystemConfig,
    mode: Optional[TelemetryConfig],
    rounds: int,
    budget: Optional[int],
) -> float:
    """Best-of-rounds seconds for one cell under one telemetry mode."""
    mech = get_mechanism(mechanism)
    hint_filter = hint_filter_for(mech, benchmark, config, "train")
    best = float("inf")
    for __ in range(rounds):
        instance = get_workload(benchmark).build(INPUT_SET)
        ops = list(instance.trace())
        if budget is not None:
            ops = ops[:budget]
        dram = make_dram(config, n_cores=1)
        telemetry = Telemetry(mode) if mode is not None else None
        stream = telemetry.stream("core0") if telemetry is not None else None
        core = build_core(mech, config, instance, dram, hint_filter,
                          telemetry=stream)
        start = time.perf_counter()
        core.run(ops)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return max(best, 1e-9)


def compute() -> Dict[str, Any]:
    config = SystemConfig.scaled().with_overrides(engine="fast")
    rounds = _rounds()
    budget = _budget_ops()
    cells: List[Dict[str, Any]] = []
    for benchmark, mechanism in CELLS:
        timings = {
            name: time_mode(benchmark, mechanism, config, mode, rounds,
                            budget)
            for name, mode in MODES.items()
        }
        disabled = timings["disabled"]
        cells.append({
            "workload": benchmark,
            "mechanism": mechanism,
            "seconds": timings,
            "overhead_pct": {
                name: (seconds / disabled - 1.0) * 100.0
                for name, seconds in timings.items()
                if name != "disabled"
            },
        })
    return {
        "benchmark": "bench_telemetry_overhead",
        "engine": "fast",
        "input_set": INPUT_SET,
        "op_budget": budget,
        "repeats": rounds,
        "cells": cells,
    }


def check_budget(baseline_path: Path, rounds: int) -> Dict[str, Any]:
    """Ratio-of-ratios disabled-overhead check against BENCH_kernel.json."""
    recorded = json.loads(baseline_path.read_text())
    headline = recorded["headline"]["pointer_chase_kernel_speedup"]
    if not headline:
        raise SystemExit(f"{baseline_path} has no recorded headline speedup")
    config = SystemConfig.scaled()
    budget = _budget_ops()
    __, ref_seconds, ref_result = time_engine(
        "reference", "mst", "no-prefetch", config, input_set=INPUT_SET,
        budget=budget, rounds=rounds,
    )
    __, fast_seconds, fast_result = time_engine(
        "fast", "mst", "no-prefetch", config, input_set=INPUT_SET,
        budget=budget, rounds=rounds,
    )
    current = ref_seconds / fast_seconds
    return {
        "recorded_speedup": headline,
        "current_speedup": current,
        "ratio": current / headline,
        "floor": 1.0 - BUDGET,
        "identical": ref_result == fast_result,
        "ok": ref_result == fast_result and current / headline >= 1.0 - BUDGET,
    }


def render(payload: Dict[str, Any]) -> str:
    rows = []
    for cell in payload["cells"]:
        seconds = cell["seconds"]
        overhead = cell["overhead_pct"]
        rows.append((
            f"{cell['workload']}/{cell['mechanism']}",
            f"{seconds['disabled'] * 1000:.1f}ms",
            f"{seconds['series'] * 1000:.1f}ms",
            f"{overhead['series']:+.1f}%",
            f"{seconds['trace'] * 1000:.1f}ms",
            f"{overhead['trace']:+.1f}%",
        ))
    return format_table(
        ["cell", "disabled", "series", "d-series", "trace", "d-trace"],
        rows,
        title="Telemetry overhead — fast engine, best-of-%d"
              % payload["repeats"],
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="telemetry overhead microbenchmark + disabled budget"
    )
    repo_root = Path(__file__).resolve().parent.parent
    parser.add_argument(
        "--out", type=Path,
        default=repo_root / "BENCH_telemetry.json",
        help="output JSON path (default: BENCH_telemetry.json)",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="fixed op budget (4000 ops, 1 repeat) for CI")
    parser.add_argument(
        "--check-budget", type=Path, default=None, metavar="BENCH_kernel.json",
        help="assert the fast-vs-reference speedup is within 2%% of the "
             "recorded baseline (ratio of ratios, machine-portable)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        os.environ.setdefault(OPS_ENV, "4000")
        os.environ.setdefault(REPEATS_ENV, "1")

    payload = compute()
    print(render(payload))
    if args.check_budget is not None:
        verdict = check_budget(args.check_budget, _rounds())
        payload["budget_check"] = verdict
        print(
            "disabled budget: recorded %.2fx, current %.2fx "
            "(ratio %.3f, floor %.3f, results identical: %s) -> %s"
            % (
                verdict["recorded_speedup"],
                verdict["current_speedup"],
                verdict["ratio"],
                verdict["floor"],
                verdict["identical"],
                "OK" if verdict["ok"] else "BREACH",
            )
        )
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}", file=sys.stderr)
    if args.check_budget is not None and not payload["budget_check"]["ok"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
