"""Tables 2, 3, 4 and 5 — the configuration the whole evaluation runs on.

These are constants, not measurements; the bench prints them so a reader
can diff our implementation's parameters against the paper's tables
directly, and asserts the paper values are encoded exactly.
"""

from _common import run_once

from repro.core.config import SystemConfig
from repro.experiments.reporting import format_table
from repro.prefetch.cdp import CDP_LEVELS
from repro.prefetch.stream import STREAM_LEVELS
from repro.throttle.levels import DEFAULT_THRESHOLDS, LEVEL_NAMES


def compute():
    table2 = [
        (LEVEL_NAMES[i], STREAM_LEVELS[i][0], STREAM_LEVELS[i][1], CDP_LEVELS[i])
        for i in range(4)
    ]
    table3 = [
        (1, "High", "-", "-", "Throttle Up"),
        (2, "Low", "Low", "-", "Throttle Down"),
        (3, "Low", "Medium or High", "Low", "Throttle Up"),
        (4, "Low", "Low or Medium", "High", "Throttle Down"),
        (5, "Low", "High", "High", "Do Nothing"),
    ]
    table4 = [
        (DEFAULT_THRESHOLDS.t_coverage, DEFAULT_THRESHOLDS.a_low,
         DEFAULT_THRESHOLDS.a_high)
    ]
    paper = SystemConfig.paper()
    table5 = [
        ("issue width", paper.issue_width),
        ("ROB entries", paper.rob_size),
        ("L1 D-cache", f"{paper.l1_size // 1024}KB {paper.l1_ways}-way"),
        ("L2 cache", f"{paper.l2_size // 1024}KB {paper.l2_ways}-way, "
                     f"{paper.l2_latency}-cycle, {paper.block_size}B lines, "
                     f"{paper.l2_mshrs} MSHRs"),
        ("memory latency (min)", f"{paper.min_memory_latency:.0f} cycles"),
        ("DRAM banks", paper.dram_banks),
        ("bus", f"{paper.bus_bytes_per_cycle}B wide at "
                f"{paper.bus_frequency_ratio}:1 ratio"),
        ("streams", paper.stream_count),
        ("prefetch queue", paper.prefetch_queue_size),
        ("request buffer / core", paper.request_buffer_per_core),
        ("CDP compare bits", paper.cdp_compare_bits),
        ("feedback interval", f"{paper.interval_evictions} L2 evictions"),
    ]
    return table2, table3, table4, table5


def bench_tables_config(benchmark, show):
    table2, table3, table4, table5 = run_once(benchmark, compute)
    show(
        format_table(
            ["level", "stream distance", "stream degree", "CDP max depth"],
            table2,
            title="Table 2 — prefetcher aggressiveness configurations",
        )
        + "\n\n"
        + format_table(
            ["case", "own coverage", "own accuracy", "rival coverage",
             "decision"],
            table3,
            title="Table 3 — coordinated throttling heuristics",
        )
        + "\n\n"
        + format_table(
            ["T_coverage", "A_low", "A_high"],
            table4,
            title="Table 4 — thresholds",
        )
        + "\n\n"
        + format_table(
            ["parameter", "value"],
            table5,
            title="Table 5 — baseline processor configuration (paper preset)",
        )
    )
    assert table2 == [
        ("Very Conservative", 4, 1, 1),
        ("Conservative", 8, 1, 2),
        ("Moderate", 16, 2, 3),
        ("Aggressive", 32, 4, 4),
    ]
    assert table4 == [(0.2, 0.4, 0.7)]
    assert SystemConfig.paper().min_memory_latency == 450
