"""Figure 4 — beneficial vs harmful pointer groups per benchmark.

The profiling compiler classifies each PG by whether the majority of its
prefetches (including recursive ones) were useful.  The paper's point:
many benchmarks (astar, omnetpp, bisort, mst) have a large harmful
fraction — which is exactly what greedy CDP ignores.
"""

from _common import BENCHES, CONFIG, run_once

from repro.experiments.reporting import format_table
from repro.experiments.runner import profile_benchmark


def compute():
    rows = []
    for bench in BENCHES:
        profile = profile_benchmark(bench, CONFIG)
        total = len(profile)
        beneficial = len(profile.beneficial_keys())
        rows.append(
            (
                bench,
                total,
                beneficial,
                total - beneficial,
                f"{profile.beneficial_fraction() * 100:.0f}%",
            )
        )
    return rows


def bench_fig04_pg_breakdown(benchmark, show):
    rows = run_once(benchmark, compute)
    show(
        format_table(
            ["benchmark", "PGs", "beneficial", "harmful", "beneficial %"],
            rows,
            title="Figure 4 — pointer-group breakdown (train-input profile)",
        )
    )
