"""Figure 7 + Table 6 — the headline result.

IPC and BPKI for the four mechanisms over the stream-prefetcher baseline:
original CDP, ECDP, CDP + coordinated throttling, and the full proposal
(ECDP + coordinated throttling).

Paper reference points (Table 6): the full proposal gains 22.5 % IPC
(16 % w/o health) while cutting BPKI 25 % (27.1 % w/o health); original
CDP loses 14 %; ECDP alone +8.6 %; throttling alone +9.4 %.  The expected
*shape*: ecdp+throttle strictly best on both axes, CDP strictly worst,
and the combination exceeding each part alone.
"""

from _common import BENCHES, CONFIG, run_once

from repro.experiments.reporting import format_table
from repro.experiments.runner import run_benchmark
from repro.experiments.suites import summary_line

MECHANISMS = ["cdp", "ecdp", "cdp+throttle", "ecdp+throttle"]


def compute():
    baselines = {b: run_benchmark(b, "baseline", CONFIG) for b in BENCHES}
    per_mechanism = {
        mech: {b: run_benchmark(b, mech, CONFIG) for b in BENCHES}
        for mech in MECHANISMS
    }
    rows = []
    for bench in BENCHES:
        base = baselines[bench]
        cells = [bench]
        for mech in MECHANISMS:
            result = per_mechanism[mech][bench]
            cells.append(
                f"{(result.ipc / base.ipc - 1) * 100:+.1f}/"
                f"{(result.bpki / base.bpki - 1) * 100 if base.bpki else 0:+.0f}"
            )
        rows.append(cells)
    summaries = {
        mech: summary_line(per_mechanism[mech], baselines)
        for mech in MECHANISMS
    }
    for mech in MECHANISMS:
        s = summaries[mech]
        rows.append(
            [
                f"[{mech}]",
                f"gmean {s['gmean_ipc_pct']:+.1f}%",
                f"(no-health {s['gmean_ipc_pct_no_health']:+.1f}%)",
                f"BPKI {s['mean_bpki_pct']:+.1f}%",
                f"(no-health {s['mean_bpki_pct_no_health']:+.1f}%)",
            ]
        )
    return rows, summaries


def bench_fig07_headline(benchmark, show):
    rows, summaries = run_once(benchmark, compute)
    show(
        format_table(
            ["benchmark"] + [f"{m} dIPC%/dBPKI%" for m in MECHANISMS],
            rows,
            title="Figure 7 / Table 6 — IPC and BPKI vs stream baseline",
        )
    )
    # The paper's headline ordering must hold.
    ours = summaries["ecdp+throttle"]
    assert ours["gmean_ipc_pct"] > summaries["ecdp"]["gmean_ipc_pct"]
    assert ours["gmean_ipc_pct"] > summaries["cdp+throttle"]["gmean_ipc_pct"]
    assert ours["gmean_ipc_pct"] > 0
    assert ours["mean_bpki_pct"] < 0
    assert summaries["cdp"]["gmean_ipc_pct"] < 0
