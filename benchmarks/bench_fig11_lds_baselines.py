"""Figure 11 — comparison to DBP, Markov, and GHB prefetchers.

Paper reference points: our proposal beats DBP by 19 %, Markov by 7.2 %
and GHB by 8.9 % on IPC, with far less hardware than Markov (1 MB) and
GHB (12 KB); it uses less bandwidth than DBP/Markov but more than GHB.
Section 6.3's orthogonality experiment (GHB+ECDP, +throttling) is
included.
"""

from _common import BENCHES, CONFIG, run_once

from repro.experiments.metrics import geomean
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_benchmark

MECHANISMS = ["dbp", "markov", "ghb", "ecdp+throttle", "ghb+ecdp",
              "ghb+ecdp+throttle"]


def compute():
    baselines = {b: run_benchmark(b, "baseline", CONFIG) for b in BENCHES}
    table = {}
    for mech in MECHANISMS:
        ratios, bpki = [], []
        for bench in BENCHES:
            result = run_benchmark(bench, mech, CONFIG)
            base = baselines[bench]
            ratios.append(result.ipc / base.ipc)
            bpki.append(
                (result.bpki / base.bpki - 1) * 100 if base.bpki else 0.0
            )
        table[mech] = (
            (geomean(ratios) - 1) * 100,
            sum(bpki) / len(bpki),
        )
    return table


def bench_fig11_lds_baselines(benchmark, show):
    table = run_once(benchmark, compute)
    rows = [
        (mech, f"{ipc:+.1f}%", f"{bpki:+.1f}%")
        for mech, (ipc, bpki) in table.items()
    ]
    show(
        format_table(
            ["mechanism", "gmean dIPC vs stream baseline", "mean dBPKI"],
            rows,
            title="Figure 11 — LDS/correlation prefetcher comparison",
        )
    )
    ours = table["ecdp+throttle"][0]
    # Shape: ours beats every standalone LDS/correlation baseline.
    assert ours > table["dbp"][0]
    assert ours > table["markov"][0]
    assert ours > table["ghb"][0]
    # Orthogonality: ECDP helps GHB, throttling helps the GHB hybrid.
    assert table["ghb+ecdp"][0] >= table["ghb"][0] - 0.5
    assert table["ghb+ecdp+throttle"][0] >= table["ghb+ecdp"][0] - 0.5
