"""Shared helpers for the figure/table regeneration benches."""

from __future__ import annotations

from repro.core.config import SystemConfig
from repro.workloads.registry import pointer_intensive_names

#: one shared configuration for every bench (scaled; see DESIGN.md Section 7)
CONFIG = SystemConfig.scaled()

BENCHES = pointer_intensive_names()


def run_once(benchmark, func):
    """Run *func* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
