"""Figure 1 — motivation for LDS prefetching.

Top: speedup of the aggressive stream prefetcher over no prefetching, and
the fraction of last-level cache misses it covers.  Bottom: potential
speedup if all LDS misses were ideally converted to hits (the oracle).

Paper reference points: the stream prefetcher helps a handful of
benchmarks strongly but covers <20 % of misses on the eight LDS-bound
ones; ideal LDS prefetching gains 53.7 % on average (37.7 % w/o health).
"""

from _common import BENCHES, CONFIG, run_once

from repro.experiments.metrics import geomean
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_benchmark


def compute():
    rows = []
    ratios_stream, ratios_oracle = [], []
    for bench in BENCHES:
        none = run_benchmark(bench, "no-prefetch", CONFIG)
        base = run_benchmark(bench, "baseline", CONFIG)
        oracle = run_benchmark(bench, "oracle-lds", CONFIG)
        stream_speedup = base.ipc / none.ipc
        oracle_speedup = oracle.ipc / base.ipc
        ratios_stream.append(stream_speedup)
        ratios_oracle.append(oracle_speedup)
        rows.append(
            (
                bench,
                f"{(stream_speedup - 1) * 100:+.1f}%",
                f"{base.coverage('stream') * 100:.0f}%",
                f"{(oracle_speedup - 1) * 100:+.1f}%",
            )
        )
    rows.append(
        (
            "gmean",
            f"{(geomean(ratios_stream) - 1) * 100:+.1f}%",
            "",
            f"{(geomean(ratios_oracle) - 1) * 100:+.1f}%",
        )
    )
    return rows


def bench_fig01_motivation(benchmark, show):
    rows = run_once(benchmark, compute)
    show(
        format_table(
            ["benchmark", "stream speedup", "stream coverage",
             "ideal-LDS speedup over stream"],
            rows,
            title="Figure 1 — stream prefetcher benefit and ideal LDS potential",
        )
    )
