"""Engine kernel microbenchmark — the three-engine speedup ladder.

Measures the simulation kernel itself (trace pre-materialized, only
``core.run`` timed) over olden-style pointer chases and a streaming
workload, each on the raw kernel (``no-prefetch``) and on the
stream-prefetcher baseline.  Every cell runs through the sweep engine
(crash isolation + checkpoint-resume) via
:func:`repro.experiments.kernel_bench.kernel_bench_worker`, which times
all available engines with interleaved best-of rounds and verifies they
returned bit-identical results.

The ladder: ``reference`` (event-faithful scalar) -> ``fast`` (flat
dicts) -> ``batch`` (columnar numpy state).  Without numpy the batch
column is reported as ``null`` and the ladder degrades to the pair.

Two entry points:

* ``pytest benchmarks/bench_perf_kernel.py --benchmark-only`` — smoke
  variant under a fixed op budget (CI's perf-smoke job);
* ``PYTHONPATH=src python benchmarks/bench_perf_kernel.py`` — the full
  measurement, written to ``BENCH_kernel.json`` at the repo root.

Acceptance bars, both on the pointer-chase kernel cell
(``mst`` / ``no-prefetch``): the fast engine must hold >= 2x ops/sec
over reference, and the batch engine >= 2x over fast (>= 4x over
reference).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.config import SystemConfig
from repro.experiments.engine import (
    CheckpointJournal,
    ExecutionEngine,
    Job,
    RetryPolicy,
)
from repro.experiments.kernel_bench import (
    OPS_ENV,
    REPEATS_ENV,
    kernel_bench_worker,
    measured_engines,
)
from repro.experiments.reporting import format_table

#: the measured matrix: workload -> class
WORKLOAD_CLASSES = {
    "mst": "pointer-chase",
    "health": "pointer-chase",
    "libquantum": "streaming",
}
#: raw kernel, then the stream-prefetcher baseline on top of it
MECHANISMS = ["no-prefetch", "baseline"]
INPUT_SET = "train"

#: the acceptance cell: an olden pointer chase on the raw kernel
HEADLINE_CELL = ("mst", "no-prefetch")

_METRIC_KEYS = (
    "ops",
    "repeats",
    "engines",
    "reference_seconds",
    "fast_seconds",
    "batch_seconds",
    "batch_decode_seconds",
    "reference_ops_per_sec",
    "fast_ops_per_sec",
    "batch_ops_per_sec",
    "speedup",
    "batch_speedup",
    "batch_speedup_vs_fast",
    "identical",
)


def _versions() -> Dict[str, Optional[str]]:
    """Interpreter/library versions the measurement depends on."""
    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "python": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "numpy": numpy_version,
    }


def compute(
    jobs: int = 2,
    timeout: Optional[float] = 900.0,
    checkpoint: Optional[CheckpointJournal] = None,
    resume: bool = False,
) -> Dict[str, Any]:
    """Run the matrix through the sweep engine; return the JSON payload."""
    config = SystemConfig.scaled()
    matrix = [
        Job(workload, mechanism, config, input_set=INPUT_SET)
        for workload in WORKLOAD_CLASSES
        for mechanism in MECHANISMS
    ]
    engine = ExecutionEngine(
        jobs=jobs,
        timeout=timeout,
        retry=RetryPolicy(max_attempts=2),
        checkpoint=checkpoint,
        worker=kernel_bench_worker,
    )
    report = engine.run(matrix, resume=resume)

    cells: List[Dict[str, Any]] = []
    failures: List[Dict[str, str]] = []
    for outcome in report:
        job = outcome.job
        cell: Dict[str, Any] = {
            "workload": job.benchmark,
            "class": WORKLOAD_CLASSES[job.benchmark],
            "mechanism": job.mechanism,
        }
        if outcome.ok:
            # fresh results are worker dicts; resumed ones are
            # ResultSnapshots — both expose .get
            result = outcome.result
            cell.update({key: result.get(key) for key in _METRIC_KEYS})
            cells.append(cell)
        else:
            failures.append(
                {"cell": job.label, "reason": outcome.failure.reason}
            )

    def cell_for(workload: str, mechanism: str) -> Optional[Dict[str, Any]]:
        for cell in cells:
            if (cell["workload"], cell["mechanism"]) == (workload, mechanism):
                return cell
        return None

    headline_cell = cell_for(*HEADLINE_CELL)
    kernel_cells = [c for c in cells if c["mechanism"] == "no-prefetch"]
    pointer_cells = [
        c for c in kernel_cells if c["class"] == "pointer-chase"
    ]
    batch_pointer = [
        c for c in pointer_cells if c.get("batch_speedup") is not None
    ]
    headline = {
        "pointer_chase_kernel_speedup": (
            headline_cell["speedup"] if headline_cell else None
        ),
        "min_pointer_chase_kernel_speedup": (
            min(c["speedup"] for c in pointer_cells)
            if pointer_cells
            else None
        ),
        "batch_pointer_chase_kernel_speedup": (
            headline_cell.get("batch_speedup") if headline_cell else None
        ),
        "batch_pointer_chase_speedup_vs_fast": (
            headline_cell.get("batch_speedup_vs_fast")
            if headline_cell
            else None
        ),
        "max_batch_pointer_chase_speedup_vs_fast": (
            max(c["batch_speedup_vs_fast"] for c in batch_pointer)
            if batch_pointer
            else None
        ),
        "all_identical": bool(cells) and all(c["identical"] for c in cells),
    }
    return {
        "benchmark": "bench_perf_kernel",
        "engines": list(measured_engines()),
        "config": "scaled",
        "input_set": INPUT_SET,
        "op_budget": _env_int(OPS_ENV),
        "versions": _versions(),
        "cells": cells,
        "headline": headline,
        "failures": failures,
    }


def _env_int(name: str) -> Optional[int]:
    try:
        value = int(os.environ.get(name, "0"))
    except ValueError:
        return None
    return value if value > 0 else None


def render(payload: Dict[str, Any]) -> str:
    def fmt_ops(value: Optional[float]) -> str:
        return f"{value:,.0f}" if value else "n/a"

    def fmt_ratio(value: Optional[float]) -> str:
        return f"{value:.2f}x" if value else "n/a"

    rows = []
    for cell in payload["cells"]:
        rows.append(
            (
                f"{cell['workload']} ({cell['class']})",
                cell["mechanism"],
                f"{cell['ops']}",
                fmt_ops(cell["reference_ops_per_sec"]),
                fmt_ops(cell["fast_ops_per_sec"]),
                fmt_ops(cell.get("batch_ops_per_sec")),
                fmt_ratio(cell["speedup"]),
                fmt_ratio(cell.get("batch_speedup")),
                "yes" if cell["identical"] else "NO",
            )
        )
    for failure in payload["failures"]:
        rows.append(
            (failure["cell"], "FAILED", failure["reason"],
             "", "", "", "", "", "")
        )
    headline = payload["headline"]
    rows.append(
        (
            "[headline]",
            "pointer-chase kernel",
            "",
            "",
            "",
            "",
            fmt_ratio(headline["pointer_chase_kernel_speedup"]),
            fmt_ratio(headline["batch_pointer_chase_kernel_speedup"]),
            "",
        )
    )
    return format_table(
        ["workload", "mechanism", "ops", "ref ops/s", "fast ops/s",
         "batch ops/s", "fast/ref", "batch/ref", "identical"],
        rows,
        title="Engine kernel microbenchmark — three-engine ladder",
    )


def bench_perf_kernel(benchmark, show):
    """pytest entry: budgeted smoke run; correctness asserts only."""
    os.environ[OPS_ENV] = "4000"
    os.environ[REPEATS_ENV] = "1"
    try:
        payload = benchmark.pedantic(compute, rounds=1, iterations=1)
    finally:
        os.environ.pop(OPS_ENV, None)
        os.environ.pop(REPEATS_ENV, None)
    show(render(payload))
    # correctness must hold at any budget; speed asserts belong to the
    # full run (CI machines are too noisy for a hard ratio here)
    assert not payload["failures"]
    assert payload["headline"]["all_identical"]
    assert all(cell["speedup"] > 0 for cell in payload["cells"])
    if "batch" in payload["engines"]:
        assert all(cell["batch_speedup"] > 0 for cell in payload["cells"])


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="three-engine kernel microbenchmark"
    )
    repo_root = Path(__file__).resolve().parent.parent
    parser.add_argument(
        "--out",
        type=Path,
        default=repo_root / "BENCH_kernel.json",
        help="output JSON path (default: BENCH_kernel.json at repo root)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fixed op budget (4000 ops, 1 repeat) for CI",
    )
    parser.add_argument("--ops", type=int, default=None,
                        help="truncate traces to N ops")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed repetitions per engine (best-of)")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--resume", action="store_true",
                        help="resume from the checkpoint journal")
    parser.add_argument("--checkpoint-dir", default=".repro-checkpoints")
    args = parser.parse_args(argv)

    if args.smoke:
        os.environ.setdefault(OPS_ENV, "4000")
        os.environ.setdefault(REPEATS_ENV, "1")
    if args.ops is not None:
        os.environ[OPS_ENV] = str(args.ops)
    if args.repeats is not None:
        os.environ[REPEATS_ENV] = str(args.repeats)

    journal = CheckpointJournal.for_sweep("perf-kernel", args.checkpoint_dir)
    if not args.resume:
        journal.clear()
    payload = compute(
        jobs=args.jobs, checkpoint=journal, resume=args.resume
    )
    print(render(payload))
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}", file=sys.stderr)
    if payload["failures"] or not payload["headline"]["all_identical"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
