"""Aggressiveness ladders and threshold constants (paper Tables 2 and 4).

Every prefetcher exposes four levels, Very Conservative .. Aggressive.  The
meaning of a level is prefetcher-specific (stream: distance/degree; CDP:
maximum recursion depth) and lives with each prefetcher; this module holds
the shared names and the throttling thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

LEVEL_NAMES = ("Very Conservative", "Conservative", "Moderate", "Aggressive")

#: index of the most aggressive level (the baseline configuration)
MAX_LEVEL = len(LEVEL_NAMES) - 1


@dataclass(frozen=True)
class ThrottleThresholds:
    """Paper Table 4: empirically chosen, deliberately few."""

    t_coverage: float = 0.2
    a_low: float = 0.4
    a_high: float = 0.7

    def coverage_is_high(self, coverage: float) -> bool:
        return coverage >= self.t_coverage

    def accuracy_class(self, accuracy: float) -> str:
        """'low' / 'medium' / 'high' per the two accuracy thresholds."""
        if accuracy >= self.a_high:
            return "high"
        if accuracy >= self.a_low:
            return "medium"
        return "low"


DEFAULT_THRESHOLDS = ThrottleThresholds()
