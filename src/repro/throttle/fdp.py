"""Feedback-Directed Prefetching (Srinath et al., HPCA 2007) — the
per-prefetcher throttling baseline of paper Section 6.5 / Figure 13.

FDP throttles each prefetcher *individually* from three signals about that
prefetcher alone: accuracy (two thresholds -> high/medium/low), lateness
(fraction of useful prefetches that arrived after the demand: one
threshold), and cache pollution (demand misses caused by prefetch-induced
evictions, tracked with a pollution filter: one threshold).  With the
interval length and filter sizing that makes the six tuning constants the
paper contrasts with coordinated throttling's three.

Decision rules (Srinath et al., Table 4, condensed to the cases that are
reachable with our signal classes):

    accuracy high,   late          -> throttle up
    accuracy high,   not late      -> hold
    accuracy medium, late          -> throttle up
    accuracy medium, not late, polluting -> throttle down
    accuracy medium, not late, clean     -> hold
    accuracy low,    polluting    -> throttle down
    accuracy low,    late         -> throttle down
    accuracy low,    otherwise    -> throttle down

The crucial structural difference from coordinated throttling: no term in
any rule mentions the *other* prefetcher, so FDP cannot tell self-inflicted
inaccuracy from losses caused by inter-prefetcher interference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.prefetch.base import Prefetcher
from repro.throttle.feedback import FeedbackCollector


@dataclass(frozen=True)
class FdpThresholds:
    """The six FDP tuning constants (values per Srinath et al.)."""

    a_high: float = 0.75
    a_low: float = 0.40
    t_lateness: float = 0.01
    t_pollution: float = 0.005
    interval_evictions: int = 8192  # sampling interval definition
    pollution_filter_bits: int = 4096  # filter sizing


class FdpThrottle:
    """Independent per-prefetcher feedback throttling."""

    def __init__(
        self,
        prefetchers: Sequence[Prefetcher],
        thresholds: FdpThresholds = FdpThresholds(),
    ) -> None:
        self.prefetchers = list(prefetchers)
        self.thresholds = thresholds
        self.actions: List[str] = []

    def attach(self, collector: FeedbackCollector) -> None:
        collector.on_interval = self.on_interval

    def on_interval(self, collector: FeedbackCollector) -> None:
        thresholds = self.thresholds
        # Pollution is measured per cache, not per prefetcher; each
        # prefetcher sees the shared pollution rate (as FDP would when
        # wrapped around one prefetcher at a time).
        misses = collector.total_misses.value
        pollution_rate = (
            collector.pollution.value / misses if misses else 0.0
        )
        polluting = pollution_rate > thresholds.t_pollution
        for prefetcher in self.prefetchers:
            counters = collector.counters[prefetcher.name]
            accuracy = counters.accuracy()
            used = counters.total_used.value
            lateness = counters.late.value / used if used else 0.0
            late = lateness > thresholds.t_lateness
            if accuracy >= thresholds.a_high:
                action = "up" if late else "hold"
            elif accuracy >= thresholds.a_low:
                if late:
                    action = "up"
                elif polluting:
                    action = "down"
                else:
                    action = "hold"
            else:
                action = "down"
            self.actions.append(f"{prefetcher.name}:{action}")
            if action == "up":
                prefetcher.throttle_up()
            elif action == "down":
                prefetcher.throttle_down()
