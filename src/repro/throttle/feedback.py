"""Run-time feedback collection (paper Section 4.1).

Two counters per prefetcher (*total-prefetched*, *total-used*) plus one
shared *total-misses* counter, sampled in intervals delimited by L2
evictions (8192 at paper scale).  At each interval boundary every counter is
halved-and-accumulated:

    CounterValue = 1/2 * CounterValueAtBeginningOfInterval
                 + 1/2 * CounterValueDuringInterval          (paper Eq. 3)

so recent behaviour dominates but history persists.  Accuracy and coverage
(paper Eq. 1, 2) are computed from the smoothed values and consumed by the
throttling controller in the *following* interval.

The collector also maintains the extra signals FDP needs (lateness and a
pollution filter), so the same plumbing serves both our mechanism and the
baseline it is compared against in Figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class SmoothedCounter:
    """A counter with interval halving per paper Eq. 3."""

    smoothed: float = 0.0
    during: int = 0

    def add(self, n: int = 1) -> None:
        self.during += n

    def roll(self) -> None:
        self.smoothed = 0.5 * self.smoothed + 0.5 * self.during
        self.during = 0

    @property
    def value(self) -> float:
        """Smoothed history plus the current (incomplete) interval.

        At an interval boundary the controller reads this right after
        :meth:`roll` (when ``during`` is 0), so decisions see exactly the
        paper's Eq. 3 value; mid-interval reads also see current counts.
        """
        return self.smoothed + self.during


@dataclass
class PrefetcherCounters:
    """Per-prefetcher feedback state."""

    total_prefetched: SmoothedCounter = field(default_factory=SmoothedCounter)
    total_used: SmoothedCounter = field(default_factory=SmoothedCounter)
    late: SmoothedCounter = field(default_factory=SmoothedCounter)
    # Lifetime (unsmoothed) tallies, for end-of-run metrics.
    lifetime_prefetched: int = 0
    lifetime_used: int = 0
    lifetime_late: int = 0

    def accuracy(self) -> float:
        """Paper Eq. 1 over smoothed counters."""
        prefetched = self.total_prefetched.value
        return self.total_used.value / prefetched if prefetched else 0.0

    def coverage(self, total_misses: float) -> float:
        """Paper Eq. 2 over smoothed counters."""
        used = self.total_used.value
        denominator = used + total_misses
        return used / denominator if denominator else 0.0

    def lifetime_accuracy(self) -> float:
        if not self.lifetime_prefetched:
            return 0.0
        return self.lifetime_used / self.lifetime_prefetched


class PollutionFilter:
    """Bit-vector filter tracking demand blocks displaced by prefetches.

    On the eviction of a demand-fetched block to make room for a prefetch,
    the victim's bit is set; a later demand miss that finds its bit set is
    counted as a pollution miss.  This is the mechanism FDP uses (Srinath
    et al., HPCA 2007); our coordinated throttling does not need it but
    shares the collector.
    """

    def __init__(self, n_bits: int = 4096) -> None:
        if n_bits <= 0 or n_bits & (n_bits - 1):
            raise ValueError("pollution filter size must be a power of two")
        self.n_bits = n_bits
        self._bits = bytearray(n_bits)

    def _index(self, block_addr: int) -> int:
        return (block_addr ^ (block_addr >> 13)) & (self.n_bits - 1)

    def mark_displaced(self, block_addr: int) -> None:
        self._bits[self._index(block_addr)] = 1

    def check_and_clear(self, block_addr: int) -> bool:
        index = self._index(block_addr)
        if self._bits[index]:
            self._bits[index] = 0
            return True
        return False


class FeedbackCollector:
    """Event sink for the core model; interval roll-over dispatcher.

    ``on_interval`` (set by the throttling controller) fires after every
    ``interval_evictions`` L2 evictions, *after* counters are rolled, so
    the controller sees smoothed values.  ``on_interval_telemetry`` (set
    by the telemetry layer, see :mod:`repro.telemetry`) fires after the
    controller with ``(collector, tail)``, so recorded samples see both
    the rolled counters and the levels the controller just chose.
    """

    def __init__(
        self,
        prefetcher_names: List[str],
        interval_evictions: int = 8192,
        pollution_filter_bits: int = 4096,
    ) -> None:
        self.counters: Dict[str, PrefetcherCounters] = {
            name: PrefetcherCounters() for name in prefetcher_names
        }
        self.total_misses = SmoothedCounter()
        self.lifetime_misses = 0
        self.pollution = SmoothedCounter()
        self.lifetime_pollution = 0
        self.interval_evictions = interval_evictions
        self._evictions_this_interval = 0
        self.intervals_completed = 0
        self.tail_flushed = False
        self._filter = PollutionFilter(pollution_filter_bits)
        self.on_interval: Optional[Callable[["FeedbackCollector"], None]] = None
        self.on_interval_telemetry: Optional[
            Callable[["FeedbackCollector", bool], None]
        ] = None

    # -- recording hooks (called by the core model) -------------------------

    def record_issue(self, owner: str, n: int = 1) -> None:
        counter = self.counters[owner]
        counter.total_prefetched.add(n)
        counter.lifetime_prefetched += n

    def record_use(self, owner: str, late: bool = False) -> None:
        counter = self.counters[owner]
        counter.total_used.add()
        counter.lifetime_used += 1
        if late:
            counter.late.add()
            counter.lifetime_late += 1

    def record_demand_miss(self, block_addr: int) -> None:
        self.total_misses.add()
        self.lifetime_misses += 1
        if self._filter.check_and_clear(block_addr):
            self.pollution.add()
            self.lifetime_pollution += 1

    def record_eviction(self, victim_addr: int, by_prefetch: bool,
                        victim_was_demand: bool) -> None:
        if by_prefetch and victim_was_demand:
            self._filter.mark_displaced(victim_addr)
        self._evictions_this_interval += 1
        if self._evictions_this_interval >= self.interval_evictions:
            self._roll_interval()

    # -- interval machinery --------------------------------------------------

    def _roll_counters(self) -> None:
        self._evictions_this_interval = 0
        for counter in self.counters.values():
            counter.total_prefetched.roll()
            counter.total_used.roll()
            counter.late.roll()
        self.total_misses.roll()
        self.pollution.roll()

    def _roll_interval(self) -> None:
        self._roll_counters()
        self.intervals_completed += 1
        if self.on_interval is not None:
            self.on_interval(self)
        if self.on_interval_telemetry is not None:
            self.on_interval_telemetry(self, False)

    def _has_partial_interval(self) -> bool:
        """Anything recorded since the last roll-over?"""
        if self._evictions_this_interval:
            return True
        if self.total_misses.during or self.pollution.during:
            return True
        return any(
            counter.total_prefetched.during
            or counter.total_used.during
            or counter.late.during
            for counter in self.counters.values()
        )

    def flush_partial_interval(self) -> bool:
        """Roll the trailing partial interval at end of run.

        A run rarely ends exactly on an eviction boundary; without this
        flush the tail's prefetches, uses and misses never enter the
        smoothed Eq. 3 counters and the recorded interval series stops
        one sample short.  The flush rolls the counters and notifies the
        telemetry hook with ``tail=True`` — it does *not* invoke the
        throttling controller (there is no following interval for a
        decision to act in) and does not count toward
        ``intervals_completed``.  Idempotent; returns True if a partial
        interval was actually flushed.
        """
        if self.tail_flushed or not self._has_partial_interval():
            return False
        self._roll_counters()
        self.tail_flushed = True
        if self.on_interval_telemetry is not None:
            self.on_interval_telemetry(self, True)
        return True

    # -- derived metrics -----------------------------------------------------

    def accuracy(self, owner: str) -> float:
        return self.counters[owner].accuracy()

    def coverage(self, owner: str) -> float:
        return self.counters[owner].coverage(self.total_misses.value)

    def lifetime_coverage(self, owner: str) -> float:
        used = self.counters[owner].lifetime_used
        denominator = used + self.lifetime_misses
        return used / denominator if denominator else 0.0
