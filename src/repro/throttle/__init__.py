"""Prefetcher throttling: feedback collection, coordinated heuristics,
and the FDP / Gendler baselines."""

from repro.throttle.coordinated import (
    CoordinatedThrottle,
    NoThrottle,
    ThrottleDecision,
    decide_case,
)
from repro.throttle.fdp import FdpThresholds, FdpThrottle
from repro.throttle.feedback import (
    FeedbackCollector,
    PollutionFilter,
    PrefetcherCounters,
    SmoothedCounter,
)
from repro.throttle.gendler import GendlerSelector, PrefetchAccuracyBuffer
from repro.throttle.levels import (
    DEFAULT_THRESHOLDS,
    LEVEL_NAMES,
    MAX_LEVEL,
    ThrottleThresholds,
)

__all__ = [
    "CoordinatedThrottle",
    "DEFAULT_THRESHOLDS",
    "FdpThresholds",
    "FdpThrottle",
    "FeedbackCollector",
    "GendlerSelector",
    "LEVEL_NAMES",
    "MAX_LEVEL",
    "NoThrottle",
    "PollutionFilter",
    "PrefetchAccuracyBuffer",
    "PrefetcherCounters",
    "SmoothedCounter",
    "ThrottleDecision",
    "ThrottleThresholds",
    "decide_case",
]
