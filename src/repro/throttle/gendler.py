"""Gendler et al.'s PAB-based multi-prefetcher mechanism (paper Section 7.4).

The scheme keeps a Prefetch Accuracy Buffer: the outcome of the last N
prefetched addresses per prefetcher.  Periodically it turns *off* all
prefetchers except the single most accurate one — on/off selection, not
graded throttling, and driven by accuracy alone (no coverage term).

The paper reports this loses 11 % average performance on their benchmarks
precisely because a low-coverage-but-accurate prefetcher can win the
selection while the prefetcher actually covering misses is disabled.  Our
implementation drives prefetcher ``enabled`` flags, which the core model
honours before issuing any requests.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Sequence

from repro.prefetch.base import Prefetcher
from repro.throttle.feedback import FeedbackCollector


class PrefetchAccuracyBuffer:
    """Sliding-window accuracy over the last *window* prefetch outcomes."""

    def __init__(self, window: int = 256) -> None:
        self.window = window
        self._outcomes: Deque[bool] = deque(maxlen=window)

    def record(self, used: bool) -> None:
        self._outcomes.append(used)

    @property
    def accuracy(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    def __len__(self) -> int:
        return len(self._outcomes)


class GendlerSelector:
    """Enable only the most PAB-accurate prefetcher each interval."""

    def __init__(self, prefetchers: Sequence[Prefetcher], window: int = 256):
        self.prefetchers = list(prefetchers)
        self.pabs: Dict[str, PrefetchAccuracyBuffer] = {
            p.name: PrefetchAccuracyBuffer(window) for p in self.prefetchers
        }
        self.enabled: Dict[str, bool] = {p.name: True for p in self.prefetchers}
        self.selections: List[str] = []

    def attach(self, collector: FeedbackCollector) -> None:
        collector.on_interval = self.on_interval

    # The core model calls these as prefetch outcomes resolve.
    def record_issue(self, owner: str) -> None:
        # An issue is pessimistically recorded unused; a use flips one
        # False to True (cheap approximation of per-address tracking).
        self.pabs[owner].record(False)

    def record_use(self, owner: str) -> None:
        outcomes = self.pabs[owner]._outcomes
        for index in range(len(outcomes) - 1, -1, -1):
            if not outcomes[index]:
                outcomes[index] = True
                break

    def is_enabled(self, owner: str) -> bool:
        return self.enabled.get(owner, True)

    def on_interval(self, collector: FeedbackCollector) -> None:
        if not self.prefetchers:
            return
        best = max(self.prefetchers, key=lambda p: self.pabs[p.name].accuracy)
        for prefetcher in self.prefetchers:
            self.enabled[prefetcher.name] = prefetcher.name == best.name
        self.selections.append(best.name)
