"""Coordinated prefetcher throttling (paper Section 4.2, Table 3).

At each feedback interval every prefetcher makes its own decision — the
*deciding* prefetcher — from its coverage and accuracy *and* the coverage of
the best *rival* prefetcher:

    Case  Cov    Acc           Rival Cov   Decision
    1     High   -             -           Throttle Up
    2     Low    Low           -           Throttle Down
    3     Low    Med or High   Low         Throttle Up
    4     Low    Low or Med    High        Throttle Down
    5     Low    High          High        Do Nothing

The heuristics are prefetcher-symmetric and prefetcher-agnostic, so the same
controller coordinates any set of two *or more* prefetchers (the paper notes
the N-ary generalization as ongoing work; we support it and test it).

This module is the **frozen legacy reference** for the pluggable policy
subsystem: production runs go through ``repro.policy`` (where
``Table3Policy`` + ``PolicyThrottle`` replay these exact heuristics), and
``tests/differential/test_policy.py`` asserts bit-identical snapshots and
throttle trajectories against ``CoordinatedThrottle`` on every engine.
Keep the decision logic here unchanged — it is the ground truth that
differential suite compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.prefetch.base import Prefetcher
from repro.throttle.feedback import FeedbackCollector
from repro.throttle.levels import DEFAULT_THRESHOLDS, ThrottleThresholds


@dataclass
class ThrottleDecision:
    """One interval's decision for one prefetcher (for diagnostics)."""

    owner: str
    case: int
    action: str  # "up" | "down" | "hold"
    coverage: float
    accuracy: float
    rival_coverage: float


def decide_case(
    coverage_high: bool, accuracy_class: str, rival_coverage_high: bool
) -> ThrottleDecision:
    """Pure implementation of paper Table 3 (owner fields filled by caller)."""
    if coverage_high:
        return ThrottleDecision("", 1, "up", 0, 0, 0)
    if accuracy_class == "low":
        return ThrottleDecision("", 2, "down", 0, 0, 0)
    if not rival_coverage_high:
        return ThrottleDecision("", 3, "up", 0, 0, 0)
    if accuracy_class == "medium":
        return ThrottleDecision("", 4, "down", 0, 0, 0)
    return ThrottleDecision("", 5, "hold", 0, 0, 0)


class CoordinatedThrottle:
    """The paper's mechanism: installs itself on a FeedbackCollector."""

    def __init__(
        self,
        prefetchers: Sequence[Prefetcher],
        thresholds: ThrottleThresholds = DEFAULT_THRESHOLDS,
    ) -> None:
        if len(prefetchers) < 2:
            raise ValueError(
                "coordinated throttling manages two or more prefetchers"
            )
        self.prefetchers = list(prefetchers)
        self.thresholds = thresholds
        self.decisions: List[ThrottleDecision] = []

    def attach(self, collector: FeedbackCollector) -> None:
        collector.on_interval = self.on_interval

    def on_interval(self, collector: FeedbackCollector) -> None:
        """Apply Table 3 to every prefetcher simultaneously.

        Decisions are computed from the same snapshot before any level
        changes, so ordering among prefetchers cannot matter.
        """
        thresholds = self.thresholds
        snapshot: Dict[str, tuple] = {}
        for prefetcher in self.prefetchers:
            name = prefetcher.name
            snapshot[name] = (
                collector.coverage(name),
                collector.accuracy(name),
            )
        for prefetcher in self.prefetchers:
            name = prefetcher.name
            coverage, accuracy = snapshot[name]
            rival_coverage = max(
                (cov for other, (cov, __) in snapshot.items() if other != name),
                default=0.0,
            )
            decision = decide_case(
                thresholds.coverage_is_high(coverage),
                thresholds.accuracy_class(accuracy),
                thresholds.coverage_is_high(rival_coverage),
            )
            decision.owner = name
            decision.coverage = coverage
            decision.accuracy = accuracy
            decision.rival_coverage = rival_coverage
            self.decisions.append(decision)
            if decision.action == "up":
                prefetcher.throttle_up()
            elif decision.action == "down":
                prefetcher.throttle_down()


class NoThrottle:
    """Null controller: prefetchers stay at their configured level."""

    def attach(self, collector: FeedbackCollector) -> None:
        collector.on_interval = None
