"""Kernel microbenchmark worker: the three-engine speedup ladder.

One job cell = one (workload, mechanism, input set).  The worker runs the
cell under *every* available engine in the same process — pre-materializing
the trace so only :meth:`Core.run` is timed — and returns JSON-safe
metrics (ops/sec per engine, the speedup ladder, and whether all engines
produced bit-identical :class:`~repro.core.stats.CoreResult`\\ s).
Because the return value is a plain dict, the sweep engine's checkpoint
journal can snapshot it unchanged, which gives the microbenchmark
checkpoint-resume for free.

Two measurement rules keep the ladder honest on noisy shared machines:

* **Interleaved rounds.**  Engines take turns within each repetition
  (A, B, C, A, B, C, ...) instead of running all of one engine's
  repeats back to back, so a slow drift in machine speed lands on every
  engine equally.
* **Best-of (min over repeats).**  The minimum elapsed time per engine
  is the run least disturbed by the scheduler; ratios of minima compare
  like with like.

The batch engine is timed on a pre-built :class:`TraceArrays` — the
columnar decode is part of trace materialization, not simulation — but
the decode cost is measured too and reported as ``batch_decode_seconds``
so the end-to-end story stays visible.  Without numpy the batch column
is skipped (reported as ``null``) and the ladder degrades to the
fast-vs-reference pair.

Lives in the library (not under ``benchmarks/``) because sweep-engine
workers must be importable by qualified name from child processes.

Two environment knobs let CI pin the run to a budget without changing
the job matrix (child processes inherit them through the pool):

* ``REPRO_KERNEL_OPS`` — truncate every trace to at most N ops;
* ``REPRO_KERNEL_REPEATS`` — timed repetitions per engine (best-of).
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.core.stats import CoreResult
from repro.experiments.configs import get_mechanism
from repro.experiments.engine.job import Job
from repro.experiments.runner import build_core, hint_filter_for, make_dram
from repro.workloads.registry import get_workload

OPS_ENV = "REPRO_KERNEL_OPS"
REPEATS_ENV = "REPRO_KERNEL_REPEATS"

#: default timed repetitions per engine (best-of, to shed scheduler noise)
DEFAULT_REPEATS = 3


def have_batch_engine() -> bool:
    """Whether the optional numpy dependency (the [perf] extra) exists."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def measured_engines() -> Tuple[str, ...]:
    """The engines this environment can actually time."""
    if have_batch_engine():
        return ("reference", "fast", "batch")
    return ("reference", "fast")


def op_budget() -> Optional[int]:
    """Trace truncation from the environment; None = full trace."""
    try:
        value = int(os.environ.get(OPS_ENV, "0"))
    except ValueError:
        return None
    return value if value > 0 else None


def repeats() -> int:
    try:
        value = int(os.environ.get(REPEATS_ENV, str(DEFAULT_REPEATS)))
    except ValueError:
        return DEFAULT_REPEATS
    return max(1, value)


def _materialize(instance, budget: Optional[int], engine: str):
    """The trace exactly as ``core.run`` wants it, plus decode seconds.

    For the batch engine the list of ops is decoded into a columnar
    :class:`TraceArrays` outside the timed region; the decode cost is
    returned so callers can report it separately.
    """
    ops = list(instance.trace())
    if budget is not None:
        ops = ops[:budget]
    if engine != "batch":
        return ops, len(ops), None
    from repro.core.tracefile import TraceArrays

    start = time.perf_counter()
    arrays = TraceArrays.from_ops(ops)
    return arrays, len(ops), time.perf_counter() - start


def time_engine(
    engine: str,
    benchmark: str,
    mechanism: str,
    config: SystemConfig,
    input_set: str = "train",
    profile_input: str = "train",
    budget: Optional[int] = None,
    rounds: int = DEFAULT_REPEATS,
) -> Tuple[int, float, CoreResult]:
    """(ops, best seconds, final CoreResult) for one engine on one cell.

    The workload instance (and therefore the trace and simulated memory
    contents) is rebuilt per round — workload generation is
    deterministic, so every round and every engine sees identical input.
    Prefer :func:`time_engines` when comparing engines: it interleaves
    rounds so machine-speed drift cannot favour one side.
    """
    mech = get_mechanism(mechanism)
    cfg = config.with_overrides(engine=engine)
    hint_filter = hint_filter_for(mech, benchmark, cfg, profile_input)
    best = float("inf")
    result: Optional[CoreResult] = None
    n_ops = 0
    for __ in range(max(1, rounds)):
        instance = get_workload(benchmark).build(input_set)
        ops, n_ops, __decode = _materialize(instance, budget, engine)
        dram = make_dram(cfg, n_cores=1)
        core = build_core(mech, cfg, instance, dram, hint_filter)
        start = time.perf_counter()
        result = core.run(ops)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return n_ops, max(best, 1e-9), result


def time_engines(
    engines: Sequence[str],
    benchmark: str,
    mechanism: str,
    config: SystemConfig,
    input_set: str = "train",
    profile_input: str = "train",
    budget: Optional[int] = None,
    rounds: int = DEFAULT_REPEATS,
) -> Dict[str, Dict[str, Any]]:
    """Best-of timings for several engines, rounds interleaved.

    Returns ``{engine: {"ops", "seconds", "decode_seconds", "result"}}``
    where ``seconds`` is the minimum over *rounds* interleaved timed
    runs and ``decode_seconds`` is the best columnar-decode time (None
    for the scalar engines).
    """
    mech = get_mechanism(mechanism)
    configs = {e: config.with_overrides(engine=e) for e in engines}
    filters = {
        e: hint_filter_for(mech, benchmark, configs[e], profile_input)
        for e in engines
    }
    out: Dict[str, Dict[str, Any]] = {
        e: {"ops": 0, "seconds": float("inf"), "decode_seconds": None,
            "result": None}
        for e in engines
    }
    for __ in range(max(1, rounds)):
        for engine in engines:
            cfg = configs[engine]
            instance = get_workload(benchmark).build(input_set)
            ops, n_ops, decode = _materialize(instance, budget, engine)
            entry = out[engine]
            entry["ops"] = n_ops
            if decode is not None and (
                entry["decode_seconds"] is None
                or decode < entry["decode_seconds"]
            ):
                entry["decode_seconds"] = decode
            dram = make_dram(cfg, n_cores=1)
            core = build_core(mech, cfg, instance, dram, filters[engine])
            start = time.perf_counter()
            entry["result"] = core.run(ops)
            elapsed = time.perf_counter() - start
            if elapsed < entry["seconds"]:
                entry["seconds"] = elapsed
    for entry in out.values():
        entry["seconds"] = max(entry["seconds"], 1e-9)
    return out


def kernel_bench_worker(job: Job) -> Dict[str, Any]:
    """Sweep-engine worker: measure every available engine on *job*'s cell."""
    budget = op_budget()
    rounds = repeats()
    engines = measured_engines()
    timings = time_engines(
        engines,
        job.benchmark,
        job.mechanism,
        job.config,
        input_set=job.input_set,
        profile_input=job.profile_input,
        budget=budget,
        rounds=rounds,
    )
    reference = timings["reference"]
    fast = timings["fast"]
    n_ops = reference["ops"]
    results = [timings[e]["result"] for e in engines]
    payload: Dict[str, Any] = {
        "ops": n_ops,
        "repeats": rounds,
        "engines": list(engines),
        "reference_seconds": reference["seconds"],
        "fast_seconds": fast["seconds"],
        "reference_ops_per_sec": n_ops / reference["seconds"],
        "fast_ops_per_sec": n_ops / fast["seconds"],
        "speedup": reference["seconds"] / fast["seconds"],
        "identical": all(r == results[0] for r in results[1:]),
    }
    batch = timings.get("batch")
    if batch is not None:
        payload.update({
            "batch_seconds": batch["seconds"],
            "batch_decode_seconds": batch["decode_seconds"],
            "batch_ops_per_sec": n_ops / batch["seconds"],
            "batch_speedup": reference["seconds"] / batch["seconds"],
            "batch_speedup_vs_fast": fast["seconds"] / batch["seconds"],
        })
    else:
        payload.update({
            "batch_seconds": None,
            "batch_decode_seconds": None,
            "batch_ops_per_sec": None,
            "batch_speedup": None,
            "batch_speedup_vs_fast": None,
        })
    return payload
