"""Kernel microbenchmark worker: fast engine vs reference engine.

One job cell = one (workload, mechanism, input set).  The worker runs the
cell under *both* engines in the same process — pre-materializing the
trace so only :meth:`Core.run` is timed — and returns JSON-safe metrics
(ops/sec per engine, speedup, and whether the two engines produced
bit-identical :class:`~repro.core.stats.CoreResult`\\ s).  Because the
return value is a plain dict, the sweep engine's checkpoint journal can
snapshot it unchanged, which gives the microbenchmark checkpoint-resume
for free.

Lives in the library (not under ``benchmarks/``) because sweep-engine
workers must be importable by qualified name from child processes.

Two environment knobs let CI pin the run to a budget without changing
the job matrix (child processes inherit them through the pool):

* ``REPRO_KERNEL_OPS`` — truncate every trace to at most N ops;
* ``REPRO_KERNEL_REPEATS`` — timed repetitions per engine (best-of).
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional, Tuple

from repro.core.config import SystemConfig
from repro.core.stats import CoreResult
from repro.experiments.configs import get_mechanism
from repro.experiments.engine.job import Job
from repro.experiments.runner import build_core, hint_filter_for, make_dram
from repro.workloads.registry import get_workload

OPS_ENV = "REPRO_KERNEL_OPS"
REPEATS_ENV = "REPRO_KERNEL_REPEATS"

#: default timed repetitions per engine (best-of, to shed scheduler noise)
DEFAULT_REPEATS = 3


def op_budget() -> Optional[int]:
    """Trace truncation from the environment; None = full trace."""
    try:
        value = int(os.environ.get(OPS_ENV, "0"))
    except ValueError:
        return None
    return value if value > 0 else None


def repeats() -> int:
    try:
        value = int(os.environ.get(REPEATS_ENV, str(DEFAULT_REPEATS)))
    except ValueError:
        return DEFAULT_REPEATS
    return max(1, value)


def time_engine(
    engine: str,
    benchmark: str,
    mechanism: str,
    config: SystemConfig,
    input_set: str = "train",
    profile_input: str = "train",
    budget: Optional[int] = None,
    rounds: int = DEFAULT_REPEATS,
) -> Tuple[int, float, CoreResult]:
    """(ops, best seconds, final CoreResult) for one engine on one cell.

    The workload instance (and therefore the trace and simulated memory
    contents) is rebuilt per round — workload generation is
    deterministic, so every round and both engines see identical input.
    """
    mech = get_mechanism(mechanism)
    cfg = config.with_overrides(engine=engine)
    hint_filter = hint_filter_for(mech, benchmark, cfg, profile_input)
    best = float("inf")
    result: Optional[CoreResult] = None
    n_ops = 0
    for __ in range(max(1, rounds)):
        instance = get_workload(benchmark).build(input_set)
        ops = list(instance.trace())
        if budget is not None:
            ops = ops[:budget]
        dram = make_dram(cfg, n_cores=1)
        core = build_core(mech, cfg, instance, dram, hint_filter)
        start = time.perf_counter()
        result = core.run(ops)
        elapsed = time.perf_counter() - start
        n_ops = len(ops)
        if elapsed < best:
            best = elapsed
    return n_ops, max(best, 1e-9), result


def kernel_bench_worker(job: Job) -> Dict[str, Any]:
    """Sweep-engine worker: measure both engines on *job*'s cell."""
    budget = op_budget()
    rounds = repeats()
    n_ops, ref_seconds, ref_result = time_engine(
        "reference",
        job.benchmark,
        job.mechanism,
        job.config,
        input_set=job.input_set,
        profile_input=job.profile_input,
        budget=budget,
        rounds=rounds,
    )
    __, fast_seconds, fast_result = time_engine(
        "fast",
        job.benchmark,
        job.mechanism,
        job.config,
        input_set=job.input_set,
        profile_input=job.profile_input,
        budget=budget,
        rounds=rounds,
    )
    return {
        "ops": n_ops,
        "repeats": rounds,
        "reference_seconds": ref_seconds,
        "fast_seconds": fast_seconds,
        "reference_ops_per_sec": n_ops / ref_seconds,
        "fast_ops_per_sec": n_ops / fast_seconds,
        "speedup": ref_seconds / fast_seconds,
        "identical": ref_result == fast_result,
    }
