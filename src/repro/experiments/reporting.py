"""Plain-text rendering of the paper's tables and figures.

Every bench target prints through these helpers so the harness output reads
like the paper's evaluation section: one table or bar series per figure,
same row/column structure, with our measured numbers in place of theirs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_bars(
    labels: Sequence[str],
    values: Sequence[float],
    title: Optional[str] = None,
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart (one bar per label)."""
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    peak = max((abs(v) for v in values), default=1.0) or 1.0
    label_width = max((len(label) for label in labels), default=0)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(abs(value) / peak * width))
        sign = "-" if value < 0 else ""
        lines.append(
            f"{label.ljust(label_width)}  {sign}{bar} {value:.2f}{unit}"
        )
    return "\n".join(lines)


def pct(value: float, decimals: int = 1) -> str:
    """Format a ratio-delta as a signed percentage string."""
    return f"{value:+.{decimals}f}%"


def _cell(value: object) -> str:
    """Render one table cell.

    Floats get the standard precision; ``None`` (a missing metric) prints
    as a dash; a :class:`~repro.experiments.engine.FailedResult` renders
    through its own ``__str__`` as ``FAILED(reason)``, so tables built
    from a partially-failed sweep degrade instead of crashing.
    """
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def side_by_side(left: str, right: str, gap: int = 4) -> str:
    """Join two text blocks horizontally (figure top/bottom pairs)."""
    left_lines = left.splitlines()
    right_lines = right.splitlines()
    height = max(len(left_lines), len(right_lines))
    left_width = max((len(line) for line in left_lines), default=0)
    out = []
    for index in range(height):
        l_line = left_lines[index] if index < len(left_lines) else ""
        r_line = right_lines[index] if index < len(right_lines) else ""
        out.append(l_line.ljust(left_width + gap) + r_line)
    return "\n".join(out)
