"""Mechanism presets: every prefetching configuration the paper evaluates.

A :class:`Mechanism` names which prefetchers run, how CDP is filtered, and
which throttling controller (if any) manages them.  The presets cover every
bar in the paper's figures, from the stream-only baseline through the full
proposal (ECDP + coordinated throttling) and all the comparison points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.config import SystemConfig
from repro.errors import UnknownNameError

__all__ = ["Mechanism", "MECHANISMS", "SystemConfig"]


@dataclass(frozen=True)
class Mechanism:
    """One prefetching system configuration."""

    name: str
    stream: bool = True
    cdp: bool = False
    hints: str = "none"  # none | ecdp | grp | loadfilter
    throttle: str = "none"  # none | coordinated | fdp | gendler
    correlation: str = "none"  # none | markov | ghb | dbp
    hw_filter: bool = False
    oracle_lds: bool = False

    @property
    def needs_profile(self) -> bool:
        return self.hints != "none"

    @property
    def prefetcher_count(self) -> int:
        count = int(self.stream) + int(self.cdp)
        count += int(self.correlation != "none")
        return count


MECHANISMS: Dict[str, Mechanism] = {
    mech.name: mech
    for mech in [
        # Baselines and motivation (Figures 1, 2)
        Mechanism("no-prefetch", stream=False),
        Mechanism("baseline"),  # aggressive stream prefetcher (Table 5)
        Mechanism("oracle-lds", oracle_lds=True),
        # The paper's four main configurations (Figure 7)
        Mechanism("cdp", cdp=True),
        Mechanism("ecdp", cdp=True, hints="ecdp"),
        Mechanism("cdp+throttle", cdp=True, throttle="coordinated"),
        Mechanism("ecdp+throttle", cdp=True, hints="ecdp", throttle="coordinated"),
        # LDS/correlation prefetcher comparisons (Figure 11)
        Mechanism("dbp", correlation="dbp"),
        Mechanism("markov", correlation="markov"),
        Mechanism("ghb", stream=False, correlation="ghb"),
        Mechanism("ghb+ecdp", stream=False, correlation="ghb", cdp=True, hints="ecdp"),
        Mechanism(
            "ghb+ecdp+throttle",
            stream=False,
            correlation="ghb",
            cdp=True,
            hints="ecdp",
            throttle="coordinated",
        ),
        # Hardware prefetch filtering (Figure 12)
        Mechanism("hwfilter", cdp=True, hw_filter=True),
        Mechanism("hwfilter+throttle", cdp=True, hw_filter=True, throttle="coordinated"),
        # Feedback-directed prefetching (Figure 13)
        Mechanism("ecdp+fdp", cdp=True, hints="ecdp", throttle="fdp"),
        # Gendler et al. PAB selector (Section 7.4)
        Mechanism("gendler", cdp=True, hints="ecdp", throttle="gendler"),
        # Related-work coarse-grained hint baselines (Sections 7.1, 7.2)
        Mechanism("grp", cdp=True, hints="grp"),
        Mechanism("loadfilter", cdp=True, hints="loadfilter"),
        # Further Section 7.3 LDS prefetchers (library extensions)
        Mechanism("pointer-cache", correlation="pointer-cache"),
        Mechanism("avd", correlation="avd"),
        Mechanism("stride", correlation="stride"),
        Mechanism("nextline", stream=False, correlation="nextline"),
        # N-ary coordinated throttling (Section 4.2's sketched extension):
        # stream + per-PC stride + ECDP under one controller.
        Mechanism(
            "tri-hybrid",
            cdp=True,
            hints="ecdp",
            correlation="stride",
            throttle="coordinated",
        ),
    ]
}


def get_mechanism(name: str) -> Mechanism:
    try:
        return MECHANISMS[name]
    except KeyError:
        raise UnknownNameError(
            f"unknown mechanism {name!r}; known: {sorted(MECHANISMS)}"
        ) from None
