"""Experiment harness: mechanism presets, runners, metrics, reporting."""

from repro.experiments.configs import MECHANISMS, Mechanism, get_mechanism
from repro.experiments.export import (
    result_record,
    sweep_records,
    write_csv,
    write_json,
)
from repro.experiments.metrics import (
    bpki_delta_percent,
    geomean,
    gmean_speedup,
    hmean_speedup,
    ipc_delta_percent,
    mean_bpki_delta,
    total_bus_traffic_per_ki,
    weighted_speedup,
)
from repro.experiments.reporting import format_bars, format_table, pct, side_by_side
from repro.experiments.runner import (
    build_core,
    clear_caches,
    hint_filter_for,
    make_dram,
    profile_benchmark,
    profiler_config,
    run_benchmark,
    run_multicore,
)
from repro.experiments.suites import (
    OUTLIER,
    accuracy_rows,
    coverage_rows,
    delta_rows,
    summary_line,
    sweep,
)

__all__ = [
    "MECHANISMS",
    "Mechanism",
    "OUTLIER",
    "accuracy_rows",
    "bpki_delta_percent",
    "build_core",
    "clear_caches",
    "coverage_rows",
    "delta_rows",
    "format_bars",
    "format_table",
    "geomean",
    "get_mechanism",
    "gmean_speedup",
    "hint_filter_for",
    "hmean_speedup",
    "ipc_delta_percent",
    "make_dram",
    "mean_bpki_delta",
    "pct",
    "profile_benchmark",
    "profiler_config",
    "result_record",
    "run_benchmark",
    "run_multicore",
    "side_by_side",
    "summary_line",
    "sweep",
    "sweep_records",
    "total_bus_traffic_per_ki",
    "weighted_speedup",
    "write_csv",
    "write_json",
]
