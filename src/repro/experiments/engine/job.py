"""Job model: what to run, how it went, and deterministic job identity.

A :class:`Job` is one (benchmark, mechanism, config, input set) cell of an
evaluation matrix.  Its :meth:`Job.key` is a content hash over every field
— two sweeps that ask for the same cell under the same configuration
produce the same key, which is what lets the checkpoint journal recognise
already-completed work across process restarts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.config import SystemConfig

#: scalar CoreResult attributes preserved in checkpoint snapshots
_SCALAR_METRICS = (
    "ipc",
    "bpki",
    "retired_instructions",
    "cycles",
    "l1_hits",
    "l1_misses",
    "l2_hits",
    "l2_demand_misses",
    "bus_transfers",
    "intervals_completed",
)

#: the Job fields that define its identity — the content hash the
#: checkpoint journal and the service's result cache are keyed by.
#: Everything here changes what the simulation *computes*.
IDENTITY_FIELDS = (
    "benchmark",
    "mechanism",
    "input_set",
    "profile_input",
    "config",
)

#: Job fields deliberately excluded from identity: they change how a run
#: is *observed or scheduled*, never its simulated outcome.  A telemetry
#: sweep can resume from a non-telemetry journal (and vice versa), and a
#: service submission with a different telemetry destination dedupes
#: against the cached result.  The identity regression test enforces
#: that IDENTITY_FIELDS + NON_IDENTITY_FIELDS covers every Job field, so
#: adding a field forces an explicit decision about which side it is on.
NON_IDENTITY_FIELDS = ("telemetry_dir",)


def canonical_config(config) -> object:
    """A JSON-encodable form of a job's config, stable across runs."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return dataclasses.asdict(config)
    if isinstance(config, dict):
        return dict(config)
    return {"repr": repr(config)}


def identity_payload(job: "Job") -> Dict[str, Any]:
    """The exact dict a job's content hash is computed over.

    Shared by :meth:`Job.key` and the service's submission
    normalization, so "same job" means the same thing to the checkpoint
    journal, the resume path, and the result cache.
    """
    payload: Dict[str, Any] = {}
    for name in IDENTITY_FIELDS:
        value = getattr(job, name)
        payload[name] = canonical_config(value) if name == "config" else value
    return payload


@dataclass(frozen=True)
class Job:
    """One unit of work for the execution engine."""

    benchmark: str
    mechanism: str
    config: SystemConfig = field(default_factory=SystemConfig.scaled)
    input_set: str = "ref"
    profile_input: str = "train"
    #: directory for per-interval telemetry series files (None = no
    #: telemetry).  Deliberately excluded from :meth:`key`: recording
    #: telemetry does not change the simulation, so a telemetry sweep can
    #: resume from a non-telemetry journal and vice versa.
    telemetry_dir: Optional[str] = None

    @property
    def label(self) -> str:
        return f"{self.benchmark}/{self.mechanism}"

    def key(self) -> str:
        """Deterministic content hash identifying this job across runs.

        Computed over :data:`IDENTITY_FIELDS` only (see
        :func:`identity_payload`); fields in :data:`NON_IDENTITY_FIELDS`
        never affect the key.
        """
        payload = json.dumps(
            identity_payload(self), sort_keys=True, default=repr
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class JobFailure:
    """Why a job ultimately failed (after any retries)."""

    error_type: str
    message: str
    transient: bool = False
    #: True when the job was quarantined for repeatedly crashing its
    #: worker; poisoned records are excluded from resume retries
    poison: bool = False

    @property
    def reason(self) -> str:
        return f"{self.error_type}: {self.message}" if self.message else self.error_type


@dataclass
class JobResult:
    """Outcome of one job: a result, or a recorded failure."""

    job: Job
    status: str  # "ok" | "failed"
    result: Any = None
    failure: Optional[JobFailure] = None
    attempts: int = 1
    duration: float = 0.0
    #: total seconds the retry policy's backoff delayed this job — the
    #: schedule FAILED export cells surface alongside the attempt count
    backoff_total: float = 0.0
    #: attempts that ended in worker loss (crash or watchdog kill);
    #: reaching the quarantine budget poisons the job
    crashes: int = 0
    #: True when this outcome was replayed from a checkpoint journal
    resumed: bool = False
    #: which executor backend ran the job ("local", "subprocess",
    #: "remote"); None for results rehydrated from pre-backend journals
    executor: Optional[str] = None
    #: host the successful attempt ran on (remote backends; None local)
    host: Optional[str] = None
    #: seconds the job sat queued beyond scheduled retry backoff
    queue_seconds: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class FailedResult:
    """Placeholder that stands in for a CoreResult when its job failed.

    Renders as ``FAILED(<error type>)`` so figure tables degrade to
    explicit failure cells instead of crashing on a missing result.
    """

    ok = False

    def __init__(self, failure: JobFailure):
        self.failure = failure

    @property
    def reason(self) -> str:
        return self.failure.reason

    def __str__(self) -> str:
        return f"FAILED({self.failure.error_type})"

    def __repr__(self) -> str:
        return f"FailedResult({self.failure.reason!r})"


def is_failed(result: Any) -> bool:
    """True for FailedResult placeholders (and missing results)."""
    return result is None or getattr(result, "ok", True) is False


class ResultSnapshot:
    """Metrics of a checkpointed run, re-hydrated from the journal.

    Exposes the same reporting surface as ``CoreResult`` (``ipc``,
    ``bpki``, ``accuracy(owner)``, ...) but holds only the scalar metrics
    the journal preserved, not event-level detail.
    """

    ok = True
    resumed = True

    def __init__(self, metrics: Dict[str, Any]):
        self._metrics = dict(metrics or {})

    def __getattr__(self, name: str) -> Any:
        if name in _SCALAR_METRICS:
            return self._metrics.get(name, 0)
        raise AttributeError(name)

    def accuracy(self, owner: str) -> float:
        return float(self._metrics.get(f"{owner}_accuracy", 0.0))

    def coverage(self, owner: str) -> float:
        return float(self._metrics.get(f"{owner}_coverage", 0.0))

    def get(self, name: str, default: Any = None) -> Any:
        return self._metrics.get(name, default)

    def __repr__(self) -> str:
        return f"ResultSnapshot({self._metrics!r})"


def snapshot_metrics(result: Any) -> Dict[str, Any]:
    """Flatten a worker's result into JSON-safe metrics for the journal."""
    if result is None:
        return {}
    if isinstance(result, ResultSnapshot):
        return dict(result._metrics)
    if isinstance(result, dict):
        return {
            key: value
            for key, value in result.items()
            if isinstance(key, str)
            and isinstance(value, (int, float, str, bool, type(None)))
        }
    metrics: Dict[str, Any] = {}
    for name in _SCALAR_METRICS:
        value = getattr(result, name, None)
        if isinstance(value, (int, float)):
            metrics[name] = value
    for owner in getattr(result, "prefetchers", None) or ():
        try:
            metrics[f"{owner}_accuracy"] = result.accuracy(owner)
            metrics[f"{owner}_coverage"] = result.coverage(owner)
        except Exception:  # a result type with a partial surface
            continue
    return metrics
