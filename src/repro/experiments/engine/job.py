"""Job model: what to run, how it went, and deterministic job identity.

A :class:`Job` is one (benchmark, mechanism, config, input set) cell of an
evaluation matrix.  Its :meth:`Job.key` is a content hash over every field
— two sweeps that ask for the same cell under the same configuration
produce the same key, which is what lets the checkpoint journal recognise
already-completed work across process restarts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.config import SystemConfig

#: scalar CoreResult attributes preserved in checkpoint snapshots
_SCALAR_METRICS = (
    "ipc",
    "bpki",
    "retired_instructions",
    "cycles",
    "l1_hits",
    "l1_misses",
    "l2_hits",
    "l2_demand_misses",
    "bus_transfers",
    "intervals_completed",
)


@dataclass(frozen=True)
class Job:
    """One unit of work for the execution engine."""

    benchmark: str
    mechanism: str
    config: SystemConfig = field(default_factory=SystemConfig.scaled)
    input_set: str = "ref"
    profile_input: str = "train"
    #: directory for per-interval telemetry series files (None = no
    #: telemetry).  Deliberately excluded from :meth:`key`: recording
    #: telemetry does not change the simulation, so a telemetry sweep can
    #: resume from a non-telemetry journal and vice versa.
    telemetry_dir: Optional[str] = None

    @property
    def label(self) -> str:
        return f"{self.benchmark}/{self.mechanism}"

    def key(self) -> str:
        """Deterministic content hash identifying this job across runs."""
        if dataclasses.is_dataclass(self.config) and not isinstance(
            self.config, type
        ):
            config = dataclasses.asdict(self.config)
        elif isinstance(self.config, dict):
            config = dict(self.config)
        else:
            config = {"repr": repr(self.config)}
        payload = json.dumps(
            {
                "benchmark": self.benchmark,
                "mechanism": self.mechanism,
                "input_set": self.input_set,
                "profile_input": self.profile_input,
                "config": config,
            },
            sort_keys=True,
            default=repr,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class JobFailure:
    """Why a job ultimately failed (after any retries)."""

    error_type: str
    message: str
    transient: bool = False
    #: True when the job was quarantined for repeatedly crashing its
    #: worker; poisoned records are excluded from resume retries
    poison: bool = False

    @property
    def reason(self) -> str:
        return f"{self.error_type}: {self.message}" if self.message else self.error_type


@dataclass
class JobResult:
    """Outcome of one job: a result, or a recorded failure."""

    job: Job
    status: str  # "ok" | "failed"
    result: Any = None
    failure: Optional[JobFailure] = None
    attempts: int = 1
    duration: float = 0.0
    #: total seconds the retry policy's backoff delayed this job — the
    #: schedule FAILED export cells surface alongside the attempt count
    backoff_total: float = 0.0
    #: attempts that ended in worker loss (crash or watchdog kill);
    #: reaching the quarantine budget poisons the job
    crashes: int = 0
    #: True when this outcome was replayed from a checkpoint journal
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class FailedResult:
    """Placeholder that stands in for a CoreResult when its job failed.

    Renders as ``FAILED(<error type>)`` so figure tables degrade to
    explicit failure cells instead of crashing on a missing result.
    """

    ok = False

    def __init__(self, failure: JobFailure):
        self.failure = failure

    @property
    def reason(self) -> str:
        return self.failure.reason

    def __str__(self) -> str:
        return f"FAILED({self.failure.error_type})"

    def __repr__(self) -> str:
        return f"FailedResult({self.failure.reason!r})"


def is_failed(result: Any) -> bool:
    """True for FailedResult placeholders (and missing results)."""
    return result is None or getattr(result, "ok", True) is False


class ResultSnapshot:
    """Metrics of a checkpointed run, re-hydrated from the journal.

    Exposes the same reporting surface as ``CoreResult`` (``ipc``,
    ``bpki``, ``accuracy(owner)``, ...) but holds only the scalar metrics
    the journal preserved, not event-level detail.
    """

    ok = True
    resumed = True

    def __init__(self, metrics: Dict[str, Any]):
        self._metrics = dict(metrics or {})

    def __getattr__(self, name: str) -> Any:
        if name in _SCALAR_METRICS:
            return self._metrics.get(name, 0)
        raise AttributeError(name)

    def accuracy(self, owner: str) -> float:
        return float(self._metrics.get(f"{owner}_accuracy", 0.0))

    def coverage(self, owner: str) -> float:
        return float(self._metrics.get(f"{owner}_coverage", 0.0))

    def get(self, name: str, default: Any = None) -> Any:
        return self._metrics.get(name, default)

    def __repr__(self) -> str:
        return f"ResultSnapshot({self._metrics!r})"


def snapshot_metrics(result: Any) -> Dict[str, Any]:
    """Flatten a worker's result into JSON-safe metrics for the journal."""
    if result is None:
        return {}
    if isinstance(result, ResultSnapshot):
        return dict(result._metrics)
    if isinstance(result, dict):
        return {
            key: value
            for key, value in result.items()
            if isinstance(key, str)
            and isinstance(value, (int, float, str, bool, type(None)))
        }
    metrics: Dict[str, Any] = {}
    for name in _SCALAR_METRICS:
        value = getattr(result, name, None)
        if isinstance(value, (int, float)):
            metrics[name] = value
    for owner in getattr(result, "prefetchers", None) or ():
        try:
            metrics[f"{owner}_accuracy"] = result.accuracy(owner)
            metrics[f"{owner}_coverage"] = result.coverage(owner)
        except Exception:  # a result type with a partial surface
            continue
    return metrics
