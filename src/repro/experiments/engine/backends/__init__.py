"""Pluggable executor backends: where sweep jobs physically run.

The engine's scheduling policy is backend-independent; these modules
supply the transport:

* :class:`LocalBackend` — forked worker processes on this machine (the
  default; bit-identical to the pre-backend engine);
* :class:`SubprocessBackend` — isolated ``repro worker --serve-stdio``
  interpreters over pipes, the transport template;
* :class:`RemoteBackend` — the same stdio workers on other machines,
  from a ``--hosts`` TOML/JSON inventory, with health-checked sticky
  work-stealing dispatch.

All backends feed one shared CRC checkpoint journal, so the
content-hashed job key dedups across machines and a killed fan-out
resumes from any backend mix.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.errors import UsageError
from repro.experiments.engine.backends.base import (
    AttemptHandle,
    ExecutorBackend,
    resolve_worker,
    worker_reference,
)
from repro.experiments.engine.backends.hosts import (
    HostSpec,
    hosts_from_dict,
    load_hosts,
)
from repro.experiments.engine.backends.local import LocalBackend
from repro.experiments.engine.backends.remote import RemoteBackend
from repro.experiments.engine.backends.stdio import (
    StdioTransport,
    SubprocessBackend,
)

#: registry of backend names (the ``--backend`` vocabulary)
BACKEND_NAMES = ("local", "subprocess", "remote")


def create_backend(
    name: str,
    slots: Optional[int] = None,
    hosts: Union[None, str, Sequence[HostSpec]] = None,
    start_method: Optional[str] = None,
) -> ExecutorBackend:
    """Build a backend by registry name.

    *hosts* is required for ``remote``: an inventory file path or a
    pre-parsed list of :class:`HostSpec`.  *slots* defaults to the
    engine's ``--jobs`` at bind time (remote capacity always comes from
    the inventory instead).
    """
    if name == "local":
        if hosts:
            raise UsageError("--hosts only applies to --backend remote")
        return LocalBackend(slots=slots, start_method=start_method)
    if name == "subprocess":
        if hosts:
            raise UsageError("--hosts only applies to --backend remote")
        return SubprocessBackend(slots=slots)
    if name == "remote":
        if not hosts:
            raise UsageError(
                "--backend remote needs --hosts FILE (a TOML/JSON host "
                "inventory)"
            )
        specs = (
            load_hosts(hosts) if isinstance(hosts, (str, Path)) else hosts
        )
        return RemoteBackend(list(specs))
    raise UsageError(
        f"unknown backend {name!r}; valid backends: "
        f"{', '.join(BACKEND_NAMES)}"
    )


__all__ = [
    "AttemptHandle",
    "BACKEND_NAMES",
    "ExecutorBackend",
    "HostSpec",
    "LocalBackend",
    "RemoteBackend",
    "StdioTransport",
    "SubprocessBackend",
    "create_backend",
    "hosts_from_dict",
    "load_hosts",
    "resolve_worker",
    "worker_reference",
]
