"""The remote backend: sweep fan-out across a host inventory.

Each host in the ``--hosts`` inventory runs ``repro worker
--serve-stdio`` under its transport command (ssh by default), speaking
the same protocol as the subprocess backend — one persistent worker
session per occupied slot, up to the host's ``capacity``.

Dispatch is *sticky with work-stealing*: a job's content-hashed key
picks a preferred host (stable across runs and host-list orderings), so
repeated sweeps land cells on the same machines — warm page caches, warm
trace files.  When the preferred host is full or unhealthy, the least
loaded healthy host steals the job (emitting a ``steal`` engine event),
so stickiness never idles capacity.

Health is observed, not assumed: every new session is ping-checked
before it takes a job; a host that fails to connect — or dies mid-job —
is marked lost and sits out ``recheck_seconds`` before dispatch tries it
again.  Capacity shrinks accordingly, the engine's retry/backoff policy
re-routes the affected jobs, and the shared checkpoint journal keeps the
whole fan-out resumable from any surviving mix of backends.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.errors import BackendConnectError
from repro.experiments.engine.backends.hosts import HostSpec
from repro.experiments.engine.backends.stdio import (
    DEFAULT_PING_TIMEOUT,
    StdioHandle,
    StdioPoolBackend,
    StdioTransport,
    child_environment,
)
from repro.experiments.engine.job import Job

#: how long a lost host sits out before dispatch re-probes it
DEFAULT_RECHECK_SECONDS = 30.0


class RemoteBackend(StdioPoolBackend):
    """Stdio workers on other machines, from a host inventory."""

    name = "remote"

    def __init__(
        self,
        hosts: Sequence[HostSpec],
        connect_timeout: float = DEFAULT_PING_TIMEOUT,
        recheck_seconds: float = DEFAULT_RECHECK_SECONDS,
    ):
        if not hosts:
            raise BackendConnectError("remote backend needs at least one host")
        super().__init__(slots=sum(spec.capacity for spec in hosts))
        self.hosts: List[HostSpec] = sorted(hosts, key=lambda s: s.name)
        self.connect_timeout = connect_timeout
        self.recheck_seconds = recheck_seconds
        #: host name -> monotonic time until which it is considered lost
        self._lost_until: Dict[str, float] = {}

    # -- health ------------------------------------------------------------

    def _healthy(self, spec: HostSpec) -> bool:
        return self._lost_until.get(spec.name, 0.0) <= time.monotonic()

    def _mark_lost(self, spec: HostSpec, why: str) -> None:
        self._lost_until[spec.name] = time.monotonic() + self.recheck_seconds
        self._emit(
            "host-down",
            spec.name,
            reason=why,
            retry_in=round(self.recheck_seconds, 3),
        )
        # sessions on a lost host are dead weight; drop them all
        for transport in [
            t for t in self._transports if t.host == spec.name
        ]:
            self._retire(transport)

    def capacity(self) -> int:
        return sum(
            spec.capacity for spec in self.hosts if self._healthy(spec)
        )

    def describe(self) -> dict:
        now = time.monotonic()
        return {
            "backend": self.name,
            "slots": self.slots,
            "hosts": [
                dict(
                    spec.to_dict(),
                    healthy=self._lost_until.get(spec.name, 0.0) <= now,
                )
                for spec in self.hosts
            ],
        }

    # -- dispatch ----------------------------------------------------------

    def preferred_host(self, job: Job) -> Optional[HostSpec]:
        """The sticky choice: stable hash of the job key over all hosts.

        Computed over the full inventory (not just the currently-healthy
        subset) so a host's brief outage does not permanently reshuffle
        every other job's placement.
        """
        if not self.hosts:
            return None
        index = int(job.key(), 16) % len(self.hosts)
        return self.hosts[index]

    def _busy_count(self, name: str) -> int:
        return sum(
            1
            for t in self._transports
            if t.host == name and t.busy is not None
        )

    def _free_slots(self, spec: HostSpec) -> int:
        return spec.capacity - self._busy_count(spec.name)

    def _acquire(self, job: Job) -> StdioTransport:
        preferred = self.preferred_host(job)
        candidates = [
            spec
            for spec in self.hosts
            if self._healthy(spec) and self._free_slots(spec) > 0
        ]
        # preferred first; thereafter least-loaded steals, names breaking
        # ties so the order is deterministic
        candidates.sort(
            key=lambda spec: (
                spec is not preferred,
                -self._free_slots(spec),
                spec.name,
            )
        )
        if not candidates:
            raise BackendConnectError(
                "no healthy host with free capacity "
                f"({len(self.hosts)} in inventory)"
            )
        for spec in candidates:
            transport = self._session_for(spec)
            if transport is None:
                continue  # connect failed; host marked lost, try the next
            if preferred is not None and spec.name != preferred.name:
                self._emit(
                    "steal",
                    job.label,
                    **{"from": preferred.name, "to": spec.name},
                )
            return transport
        raise BackendConnectError(
            "every candidate host failed its connection health-check"
        )

    def _session_for(self, spec: HostSpec) -> Optional[StdioTransport]:
        for transport in self._transports:
            if (
                transport.host == spec.name
                and transport.busy is None
                and transport.alive
            ):
                return transport
        env = None
        if spec.is_local:
            extra = list(self._extra_paths)
            if spec.pythonpath:
                extra.append(spec.pythonpath)
            env = child_environment(extra)
        try:
            transport = StdioTransport(
                spec.worker_argv(), env=env, host=spec.name
            )
            transport.ping(self.connect_timeout)
        except BackendConnectError as error:
            self._mark_lost(spec, str(error))
            return None
        self._transports.append(transport)
        return transport

    # -- fault delivery ----------------------------------------------------

    def lose_host(self, handle: StdioHandle) -> None:
        """A mid-job host death: kill the session *and* the host."""
        host = handle.host
        super().cancel(handle)
        for spec in self.hosts:
            if spec.name == host:
                self._mark_lost(spec, "lost mid-job")
                break
