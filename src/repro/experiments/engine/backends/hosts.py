"""Host inventory for the remote backend: ``--hosts FILE`` parsing.

An inventory maps host names to connection specs.  TOML (Python 3.11+,
via stdlib ``tomllib``) or JSON — same schema::

    # sweep-hosts.toml
    [hosts.node1]
    capacity = 8                     # concurrent jobs (default 1)
    tags = ["fast", "numa"]          # free-form labels for reports
    # command = "ssh node1"          # transport argv (default: ssh <name>)
    # python = "python3"             # remote interpreter (default python3)

    [hosts.node2]
    capacity = 4

    // sweep-hosts.json
    {"hosts": {"node1": {"capacity": 8}, "node2": {"capacity": 4}}}

``command`` may be a string (shlex-split) or an argv list; an *empty*
command runs the worker directly on this machine — the loopback form the
test suite uses to exercise the remote dispatch path without ssh.  The
final worker argv is ``<command> <python> -m repro worker --serve-stdio``.
"""

from __future__ import annotations

import json
import shlex
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import HostsFileError

PathLike = Union[str, Path]

_HOST_FIELDS = frozenset(
    {"command", "python", "capacity", "tags", "pythonpath"}
)


@dataclass(frozen=True)
class HostSpec:
    """One remote host: how to reach it and how much it can run."""

    name: str
    #: transport argv prefix ("ssh <name>" by default; () = run locally)
    command: Tuple[str, ...] = ()
    #: interpreter to exec on the far side
    python: str = "python3"
    #: concurrent jobs this host takes
    capacity: int = 1
    #: free-form labels surfaced in describe()/reports
    tags: Tuple[str, ...] = ()
    #: optional PYTHONPATH exported to the remote worker (loopback tests
    #: point it at this checkout; clusters usually install repro instead)
    pythonpath: Optional[str] = None

    def worker_argv(self) -> List[str]:
        """The full argv that starts a stdio worker on this host."""
        argv = list(self.command)
        if self.pythonpath:
            if argv:  # remote: export through the login shell's env
                argv += ["env", f"PYTHONPATH={self.pythonpath}"]
            # local loopback handles PYTHONPATH via the spawn environment
        argv += [self.python, "-m", "repro", "worker", "--serve-stdio"]
        return argv

    @property
    def is_local(self) -> bool:
        return not self.command

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "capacity": self.capacity,
            "tags": list(self.tags),
            "command": list(self.command) or None,
        }


def _host_from_entry(name: str, entry: object) -> HostSpec:
    if not isinstance(entry, dict):
        raise HostsFileError(
            f"host {name!r}: spec must be an object, got {entry!r}"
        )
    unknown = set(entry) - _HOST_FIELDS
    if unknown:
        raise HostsFileError(
            f"host {name!r}: unknown field(s) "
            f"{', '.join(sorted(unknown))}; "
            f"valid fields: {', '.join(sorted(_HOST_FIELDS))}"
        )
    command = entry.get("command", f"ssh {name}")
    if isinstance(command, str):
        argv = tuple(shlex.split(command))
    elif isinstance(command, (list, tuple)) and all(
        isinstance(part, str) for part in command
    ):
        argv = tuple(command)
    else:
        raise HostsFileError(
            f"host {name!r}: command must be a string or list of strings"
        )
    capacity = entry.get("capacity", 1)
    if not isinstance(capacity, int) or isinstance(capacity, bool) \
            or capacity < 1:
        raise HostsFileError(
            f"host {name!r}: capacity must be a positive integer, "
            f"got {capacity!r}"
        )
    tags = entry.get("tags", ())
    if not isinstance(tags, (list, tuple)) or not all(
        isinstance(tag, str) for tag in tags
    ):
        raise HostsFileError(
            f"host {name!r}: tags must be a list of strings"
        )
    python = entry.get("python", "python3")
    if not isinstance(python, str) or not python:
        raise HostsFileError(
            f"host {name!r}: python must be a non-empty string"
        )
    pythonpath = entry.get("pythonpath")
    if pythonpath is not None and not isinstance(pythonpath, str):
        raise HostsFileError(
            f"host {name!r}: pythonpath must be a string"
        )
    return HostSpec(
        name=name,
        command=argv,
        python=python,
        capacity=capacity,
        tags=tuple(tags),
        pythonpath=pythonpath,
    )


def hosts_from_dict(payload: object) -> List[HostSpec]:
    """Parse an already-decoded inventory mapping."""
    if not isinstance(payload, dict) or "hosts" not in payload:
        raise HostsFileError(
            'hosts inventory must be {"hosts": {<name>: {...}, ...}}'
        )
    hosts = payload["hosts"]
    if not isinstance(hosts, dict) or not hosts:
        raise HostsFileError(
            '"hosts" must be a non-empty mapping of host name -> spec'
        )
    specs = [
        _host_from_entry(str(name), entry) for name, entry in hosts.items()
    ]
    # deterministic dispatch wants a stable order whatever the file said
    return sorted(specs, key=lambda spec: spec.name)


def load_hosts(path: PathLike) -> List[HostSpec]:
    """Load a TOML or JSON ``--hosts`` inventory file."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise HostsFileError(
            f"cannot read hosts file {path}: {error}"
        ) from error
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError as error:  # Python < 3.11
            raise HostsFileError(
                f"{path}: TOML hosts files need Python 3.11+ (no tomllib "
                "on this interpreter); use the JSON form instead"
            ) from error
        try:
            payload = tomllib.loads(raw.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as error:
            raise HostsFileError(
                f"{path}: not valid TOML: {error}"
            ) from error
    else:
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise HostsFileError(
                f"{path}: not valid JSON: {error} (TOML inventories "
                "need a .toml suffix)"
            ) from error
    return hosts_from_dict(payload)
