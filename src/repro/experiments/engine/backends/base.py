"""The executor-backend protocol: where job attempts physically run.

The :class:`~repro.experiments.engine.executor.ExecutionEngine` owns all
*policy* — retry/backoff, watchdog deadlines, quarantine, journaling,
fault resolution — while a backend owns only *transport*: start this
attempt somewhere, stream its heartbeats back, deliver exactly one
outcome message (or be observed dying).  The split is what makes the
engine's resilience guarantees backend-independent: the chaos suite
proves convergence once, and every backend inherits it.

A backend implements five verbs:

* :meth:`ExecutorBackend.submit` — start one attempt, return an
  :class:`AttemptHandle`;
* :meth:`ExecutorBackend.poll` — wait up to a tick, return the handles
  that produced an outcome message (updating heartbeat times on the
  rest);
* :meth:`ExecutorBackend.cancel` — kill one attempt (watchdog/timeout
  enforcement, drain);
* :meth:`ExecutorBackend.capacity` — how many attempts may be in flight
  right now (remote backends shrink this as hosts are lost);
* :meth:`ExecutorBackend.describe` — a JSON-safe self-description for
  logs and reports.

Outcome messages are exactly the worker-shim wire shape the engine has
always consumed: ``("ok", result)`` or ``("error", {"type", "message",
"transient"})`` — so the engine's settle path did not change when
backends were introduced.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import BackendError
from repro.experiments.engine.job import Job


@dataclass
class AttemptHandle:
    """One in-flight job attempt, as the engine tracks it.

    Backends subclass (or just instantiate) this and stash whatever
    transport state they need; the engine reads only the fields below.
    """

    job: Job
    attempt: int
    #: monotonic launch time (deadline and duration are measured from it)
    started: float = 0.0
    #: monotonic time of the last heartbeat (0.0 = none seen yet)
    last_beat: float = 0.0
    #: where the attempt runs — hostname for remote backends, None local
    host: Optional[str] = None
    #: backend-private transport state (pipe, session, request id, ...)
    transport: object = field(default=None, repr=False)


#: an outcome message in the worker-shim wire shape
Outcome = Tuple[str, object]


class ExecutorBackend:
    """Transport abstraction: run job attempts *somewhere*."""

    #: registry name ("local", "subprocess", "remote"); provenance columns
    #: and the ``dispatch`` engine event carry it
    name = "backend"

    def __init__(self, slots: Optional[int] = None):
        #: max concurrent attempts; None until :meth:`bind` resolves it
        self.slots = None if slots is None else max(1, int(slots))
        self._emit: Callable[..., None] = lambda *a, **k: None

    # -- lifecycle ---------------------------------------------------------

    def bind(self, worker, emit, slots: int) -> None:
        """Attach engine context before the first submit.

        *worker* is the job callable (backends that cross a process
        boundary must resolve it to an importable reference — see
        :func:`worker_reference`); *emit* is the engine's event hook;
        *slots* is the engine's ``--jobs`` value, used only when the
        backend was built without an explicit capacity.
        """
        self._emit = emit
        if self.slots is None:
            self.slots = max(1, int(slots))

    def close(self) -> None:
        """Release transport resources (worker pools, connections)."""

    # -- the five verbs ----------------------------------------------------

    def submit(
        self,
        job: Job,
        attempt: int,
        fault=None,
        heartbeat: Optional[float] = None,
    ) -> AttemptHandle:
        """Start one attempt; raises :class:`BackendError` on transport
        failure (the engine settles that as a transient job failure)."""
        raise NotImplementedError

    def poll(
        self, handles: Sequence[AttemptHandle], timeout: float
    ) -> List[Tuple[AttemptHandle, Outcome]]:
        """Wait up to *timeout* for activity; return settled attempts.

        Handles that only heartbeat get their ``last_beat`` refreshed and
        are not returned; a silently-dead worker is returned with a
        synthesized ``WorkerCrashError`` outcome.
        """
        raise NotImplementedError

    def cancel(self, handle: AttemptHandle) -> None:
        """Kill one in-flight attempt (idempotent, never raises)."""
        raise NotImplementedError

    def capacity(self) -> int:
        """How many attempts may be in flight right now."""
        return self.slots or 1

    def describe(self) -> dict:
        """JSON-safe description (name, slots, hosts, ...)."""
        return {"backend": self.name, "slots": self.slots}

    def lose_host(self, handle: AttemptHandle) -> None:
        """Deliver an injected host loss for *handle*'s host.

        Default: indistinguishable from cancelling the attempt.  Remote
        backends also mark the host unhealthy so dispatch routes around
        it, exactly as a real mid-job host death would.
        """
        self.cancel(handle)


# -- worker references -------------------------------------------------------
#
# The local backend passes the worker callable to forked children by
# memory; any backend that crosses an exec boundary must instead name it
# ("module:qualname") and re-import it on the far side.


def worker_reference(worker) -> Tuple[str, Optional[str]]:
    """``("module:qualname", extra_sys_path)`` for an importable worker.

    *extra_sys_path* is the directory that must be on ``sys.path`` for
    the module to import (the worker module's package root) — needed when
    the worker lives in a test module rather than an installed package.
    Raises :class:`BackendError` for lambdas, closures, and other
    callables a fresh interpreter cannot re-import by name.
    """
    module = getattr(worker, "__module__", None)
    qualname = getattr(worker, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise BackendError(
            f"worker {worker!r} is not importable by name; distributed "
            "backends need a module-level function (not a lambda/closure)"
        )
    try:
        resolved = resolve_worker(f"{module}:{qualname}")
    except Exception as error:
        raise BackendError(
            f"worker {module}:{qualname} does not re-import: {error}"
        ) from error
    if resolved is not worker:
        raise BackendError(
            f"worker {module}:{qualname} re-imports as a different object; "
            "distributed backends need a stable module-level function"
        )
    extra = None
    mod = importlib.import_module(module)
    origin = getattr(mod, "__file__", None)
    if origin:
        root = Path(origin).resolve()
        for _ in range(module.count(".") + 1):
            root = root.parent
        extra = str(root)
    return f"{module}:{qualname}", extra


def resolve_worker(reference: Optional[str]):
    """The callable named by a ``"module:qualname"`` reference.

    ``None`` resolves to the engine's default worker, so remote hosts
    never need the caller's code for ordinary sweeps.
    """
    if reference is None:
        from repro.experiments.engine.worker import default_worker

        return default_worker
    module_name, _, qualname = str(reference).partition(":")
    if not module_name or not qualname:
        raise BackendError(f"malformed worker reference {reference!r}")
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise BackendError(f"worker reference {reference!r} is not callable")
    return obj
