"""Line-delimited JSON transport to ``repro worker --serve-stdio``.

This module is the transport template every out-of-process backend
shares: a :class:`StdioTransport` owns one persistent worker process
(spawned from an argv — plain ``python`` for the subprocess backend,
``ssh host python`` for the remote one) and speaks the protocol
documented in :mod:`repro.experiments.engine.worker`:

* requests down stdin: ``{"op": "run"|"ping"|"shutdown", "id": N, ...}``
* responses up stdout: ``{"id": N, "event":
  "heartbeat"|"outcome"|"pong"|...}``

Jobs cross the boundary as *submissions* (the service's wire format), so
the far side recomputes the content-hashed job key and the parent
verifies it — version skew between dispatching and executing hosts
surfaces as an explicit failure instead of a silently-wrong journal
record.  Worker callables cross as ``"module:qualname"`` references.

One job is in flight per transport at a time; a transport whose child
dies is retired and respawned lazily, and EOF on the child's stdout maps
to the same ``WorkerCrashError`` a fork-pool worker death produces.
"""

from __future__ import annotations

import json
import os
import select
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import BackendConnectError, BackendError
from repro.experiments.engine.backends.base import (
    AttemptHandle,
    ExecutorBackend,
    Outcome,
    worker_reference,
)
from repro.experiments.engine.job import Job, ResultSnapshot

#: how long ``ping`` waits for ``pong`` before declaring a host unreachable
DEFAULT_PING_TIMEOUT = 10.0

_READ_CHUNK = 65536


def child_environment(extra_paths: Sequence[str] = ()) -> Dict[str, str]:
    """The spawned worker's environment: inherit, extend ``PYTHONPATH``.

    Prepends the parent's ``repro`` package root plus *extra_paths* (the
    worker module's root, for test-defined workers), so ``python -m
    repro`` and the worker reference both import in a fresh interpreter
    regardless of how the parent found them.
    """
    import repro

    env = dict(os.environ)
    roots: List[str] = []
    origin = getattr(repro, "__file__", None)
    if origin:
        roots.append(str(Path(origin).resolve().parent.parent))
    for path in extra_paths:
        if path and path not in roots:
            roots.append(str(path))
    existing = env.get("PYTHONPATH", "")
    for part in existing.split(os.pathsep):
        if part and part not in roots:
            roots.append(part)
    env["PYTHONPATH"] = os.pathsep.join(roots)
    return env


def worker_argv() -> List[str]:
    """The argv that turns this interpreter into a stdio job server."""
    return [sys.executable, "-m", "repro", "worker", "--serve-stdio"]


class StdioTransport:
    """One persistent worker process and its protocol state."""

    def __init__(
        self,
        argv: Sequence[str],
        env: Optional[Dict[str, str]] = None,
        host: Optional[str] = None,
    ):
        self.argv = list(argv)
        self.host = host
        self.busy: Optional[AttemptHandle] = None
        self._buffer = b""
        self._next_id = 0
        try:
            self.process = subprocess.Popen(
                self.argv,
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                env=env,
                bufsize=0,
            )
        except OSError as error:
            raise BackendConnectError(
                f"cannot spawn worker {' '.join(self.argv)}: {error}"
            ) from error
        os.set_blocking(self.process.stdout.fileno(), False)

    # -- plumbing ----------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def fileno(self) -> int:
        return self.process.stdout.fileno()

    def next_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def send(self, payload: dict) -> None:
        data = (
            json.dumps(payload, sort_keys=True, default=repr) + "\n"
        ).encode("utf-8")
        try:
            self.process.stdin.write(data)
            self.process.stdin.flush()
        except (OSError, ValueError) as error:
            raise BackendConnectError(
                f"worker pipe broken ({self.describe()}): {error}"
            ) from error

    def read_messages(self) -> Tuple[List[dict], bool]:
        """(complete protocol messages available now, saw-EOF flag)."""
        eof = False
        while True:
            try:
                chunk = os.read(self.fileno(), _READ_CHUNK)
            except BlockingIOError:
                break
            except (OSError, ValueError):
                eof = True
                break
            if not chunk:
                eof = True
                break
            self._buffer += chunk
        messages: List[dict] = []
        while b"\n" in self._buffer:
            line, self._buffer = self._buffer.split(b"\n", 1)
            line = line.strip()
            if not line:
                continue
            try:
                parsed = json.loads(line)
            except ValueError:
                continue  # garbage on the protocol stream; skip the line
            if isinstance(parsed, dict):
                messages.append(parsed)
        return messages, eof

    def ping(self, timeout: float = DEFAULT_PING_TIMEOUT) -> dict:
        """Round-trip a health check; raises on an unresponsive worker."""
        rid = self.next_id()
        self.send({"op": "ping", "id": rid})
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise BackendConnectError(
                    f"worker did not answer ping within {timeout:g}s "
                    f"({self.describe()})"
                )
            select.select([self.fileno()], [], [], remaining)
            messages, eof = self.read_messages()
            for message in messages:
                if message.get("event") == "pong" and message.get("id") == rid:
                    return message
            if eof:
                raise BackendConnectError(
                    f"worker exited during health check ({self.describe()})"
                )

    def shutdown(self) -> None:
        """Best-effort polite stop, then kill."""
        try:
            self.send({"op": "shutdown", "id": self.next_id()})
            self.process.wait(1.0)
        except Exception:
            pass
        self.kill()

    def kill(self) -> None:
        try:
            if self.alive:
                self.process.terminate()
                try:
                    self.process.wait(0.5)
                except subprocess.TimeoutExpired:
                    self.process.kill()
                    self.process.wait(5)
        except (OSError, ValueError):
            pass
        for stream in (self.process.stdin, self.process.stdout):
            try:
                stream.close()
            except Exception:
                pass

    def describe(self) -> str:
        where = f" on {self.host}" if self.host else ""
        return f"pid {self.process.pid}{where}"


@dataclass
class StdioHandle(AttemptHandle):
    """An attempt in flight on one stdio transport."""

    request_id: int = 0
    session: StdioTransport = field(default=None, repr=False)


class StdioPoolBackend(ExecutorBackend):
    """Shared submit/poll/cancel over a pool of stdio transports.

    Subclasses decide where transports come from (:meth:`_acquire`);
    everything protocol-shaped lives here, so the subprocess and remote
    backends cannot drift apart.
    """

    def __init__(self, slots: Optional[int] = None):
        super().__init__(slots)
        self._transports: List[StdioTransport] = []
        self._worker_ref: Optional[str] = None
        self._worker_is_default = True
        self._extra_paths: List[str] = []

    def bind(self, worker, emit, slots: int) -> None:
        super().bind(worker, emit, slots)
        from repro.experiments.engine.worker import default_worker

        self._worker_is_default = worker is default_worker
        if not self._worker_is_default:
            # fails fast (BackendError) for lambdas/closures a fresh
            # interpreter could never re-import
            self._worker_ref, extra = worker_reference(worker)
            self._note_worker_path(extra)

    def _note_worker_path(self, extra: Optional[str]) -> None:
        """Record an extra sys.path root spawned workers will need."""
        self._extra_paths = [extra] if extra else []

    def _acquire(self, job: Job) -> StdioTransport:
        """A free transport to run *job* on (spawn or reuse)."""
        raise NotImplementedError

    def _retire(self, transport: StdioTransport) -> None:
        transport.kill()
        if transport in self._transports:
            self._transports.remove(transport)

    # -- protocol ----------------------------------------------------------

    def submit(
        self,
        job: Job,
        attempt: int,
        fault=None,
        heartbeat: Optional[float] = None,
    ) -> StdioHandle:
        from repro.service.protocol import submission_from_job

        transport = self._acquire(job)
        rid = transport.next_id()
        request = {
            "op": "run",
            "id": rid,
            "job": submission_from_job(job),
            "worker": self._worker_ref,
            "fault": fault.to_dict() if fault is not None else None,
            "heartbeat": heartbeat,
            "telemetry_dir": job.telemetry_dir,
        }
        try:
            transport.send(request)
        except BackendError:
            self._retire(transport)
            raise
        handle = StdioHandle(
            job=job,
            attempt=attempt,
            started=time.monotonic(),
            host=transport.host,
            request_id=rid,
            session=transport,
        )
        transport.busy = handle
        return handle

    def poll(
        self, handles: Sequence[StdioHandle], timeout: float
    ) -> List[Tuple[StdioHandle, Outcome]]:
        if not handles:
            if timeout > 0:
                time.sleep(timeout)
            return []
        readable = [
            handle.session.fileno()
            for handle in handles
            if handle.session is not None and handle.session.alive
        ]
        if readable and timeout > 0:
            try:
                select.select(readable, [], [], timeout)
            except (OSError, ValueError):
                pass  # a raced-dead fd; the per-handle scan sorts it out
        settled: List[Tuple[StdioHandle, Outcome]] = []
        for handle in handles:
            outcome = self._poll_one(handle)
            if outcome is not None:
                settled.append((handle, outcome))
        return settled

    def cancel(self, handle: StdioHandle) -> None:
        transport = handle.session
        if transport is None:
            return
        # the job runs *in* the worker process: killing the attempt is
        # killing the transport (a fresh one respawns for the next job)
        transport.busy = None
        handle.session = None
        self._retire(transport)

    def close(self) -> None:
        for transport in list(self._transports):
            transport.shutdown()
        self._transports.clear()

    # -- outcome decoding --------------------------------------------------

    def _poll_one(self, handle: StdioHandle) -> Optional[Outcome]:
        transport = handle.session
        if transport is None:
            return None
        messages, eof = transport.read_messages()
        outcome: Optional[Outcome] = None
        for message in messages:
            if message.get("id") != handle.request_id:
                continue  # a stale beat from a cancelled predecessor
            event = message.get("event")
            if event == "heartbeat":
                handle.last_beat = time.monotonic()
            elif event == "outcome" and outcome is None:
                outcome = self._decode_outcome(handle, message)
            elif event == "error" and outcome is None:
                outcome = (
                    "error",
                    {
                        "type": "BackendError",
                        "message": (
                            f"worker rejected request: "
                            f"{message.get('error')}"
                        ),
                        "transient": False,
                    },
                )
        if outcome is not None:
            transport.busy = None
            handle.session = None
            return outcome
        if eof or not transport.alive:
            exitcode = transport.process.poll()
            transport.busy = None
            handle.session = None
            self._retire(transport)
            return (
                "error",
                {
                    "type": "WorkerCrashError",
                    "message": (
                        "worker died without a result "
                        f"(exit code {exitcode})"
                    ),
                    "transient": True,
                },
            )
        return None

    @staticmethod
    def _decode_outcome(handle: StdioHandle, message: dict) -> Outcome:
        if message.get("status") == "ok":
            key = message.get("key")
            if key is not None and key != handle.job.key():
                return (
                    "error",
                    {
                        "type": "BackendError",
                        "message": (
                            f"identity skew: executing host computed job "
                            f"key {key} for {handle.job.label} (expected "
                            f"{handle.job.key()}); check that every host "
                            "runs the same repro version"
                        ),
                        "transient": False,
                    },
                )
            return ("ok", ResultSnapshot(message.get("metrics") or {}))
        error = message.get("error")
        if not isinstance(error, dict):
            error = {
                "type": "JobError",
                "message": f"malformed outcome: {message!r}",
                "transient": False,
            }
        return ("error", error)


class SubprocessBackend(StdioPoolBackend):
    """Isolated ``repro worker --serve-stdio`` children on this machine.

    The transport template: everything the remote backend does over ssh,
    this backend does over plain pipes — same wire protocol, same worker
    entry point, same failure shapes — which is what makes it the CI
    stand-in for a cluster.
    """

    name = "subprocess"

    def describe(self) -> dict:
        return {
            "backend": self.name,
            "slots": self.slots,
            "python": sys.executable,
        }

    def _acquire(self, job: Job) -> StdioTransport:
        for transport in self._transports:
            if transport.busy is None and transport.alive:
                return transport
        live = [t for t in self._transports if t.alive]
        if len(live) >= (self.slots or 1):
            raise BackendError(
                "no free subprocess worker (submit past capacity)"
            )
        transport = StdioTransport(
            worker_argv(),
            env=child_environment(self._extra_paths),
            host=None,
        )
        self._transports.append(transport)
        return transport
