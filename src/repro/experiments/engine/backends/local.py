"""The local backend: today's fork pool behind the backend protocol.

One worker *process per attempt*, connected to the parent by a one-way
pipe, multiplexed together with every process sentinel — exactly the
plumbing the engine used before backends existed, moved here verbatim so
the default path stays bit-identical.  Because children are forked, the
worker callable travels by memory copy: lambdas and closures work, no
import dance required.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_ready
from typing import List, Optional, Sequence, Tuple

from repro.errors import BackendError
from repro.experiments.engine.backends.base import (
    AttemptHandle,
    ExecutorBackend,
    Outcome,
)
from repro.experiments.engine.job import Job


@dataclass
class LocalHandle(AttemptHandle):
    """One forked worker process and its result pipe."""

    process: object = field(default=None, repr=False)
    conn: object = field(default=None, repr=False)


class LocalBackend(ExecutorBackend):
    """Crash-isolated worker processes on this machine (the default)."""

    name = "local"

    def __init__(
        self, slots: Optional[int] = None, start_method: Optional[str] = None
    ):
        super().__init__(slots)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.start_method = start_method
        self._ctx = multiprocessing.get_context(start_method)
        self._worker = None

    def bind(self, worker, emit, slots: int) -> None:
        super().bind(worker, emit, slots)
        self._worker = worker

    def describe(self) -> dict:
        return {
            "backend": self.name,
            "slots": self.slots,
            "start_method": self.start_method,
        }

    # -- protocol ----------------------------------------------------------

    def submit(
        self,
        job: Job,
        attempt: int,
        fault=None,
        heartbeat: Optional[float] = None,
    ) -> LocalHandle:
        from repro.experiments.engine.worker import worker_shim

        if self._worker is None:
            raise BackendError("local backend used before bind()")
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_shim,
            args=(send_conn, self._worker, job, fault, heartbeat),
            daemon=True,
        )
        process.start()
        send_conn.close()  # child holds the only writer now
        return LocalHandle(
            job=job,
            attempt=attempt,
            started=time.monotonic(),
            process=process,
            conn=recv_conn,
        )

    def poll(
        self, handles: Sequence[LocalHandle], timeout: float
    ) -> List[Tuple[LocalHandle, Outcome]]:
        if not handles:
            if timeout > 0:
                time.sleep(timeout)
            return []
        waitables = [handle.conn for handle in handles]
        waitables += [handle.process.sentinel for handle in handles]
        _wait_ready(waitables, timeout=max(0.0, timeout))
        settled: List[Tuple[LocalHandle, Outcome]] = []
        for handle in handles:
            outcome = self._poll_one(handle)
            if outcome is not None:
                settled.append((handle, outcome))
        return settled

    def cancel(self, handle: LocalHandle) -> None:
        self._kill(handle.process)
        self._close(handle.conn)

    # -- plumbing (moved from the pre-backend executor) --------------------

    def _poll_one(self, handle: LocalHandle) -> Optional[Outcome]:
        """The attempt's outcome message, or None if still running."""
        outcome = None
        pipe_broken = False
        while True:  # drain heartbeats queued ahead of the outcome
            try:
                if not handle.conn.poll():
                    break
            except (OSError, ValueError):
                break
            try:
                message = handle.conn.recv()
            except (EOFError, OSError):  # died mid-send
                pipe_broken = True
                break
            if (
                isinstance(message, tuple)
                and message
                and message[0] == "heartbeat"
            ):
                handle.last_beat = time.monotonic()
                continue
            outcome = message
            break
        if outcome is not None:
            handle.process.join(5)
            if handle.process.is_alive():
                self._kill(handle.process)
            self._close(handle.conn)
            return outcome
        if pipe_broken:
            handle.process.join(5)
            if handle.process.is_alive():
                self._kill(handle.process)
            self._close(handle.conn)
            return self._crash_outcome(handle)
        if not handle.process.is_alive():
            handle.process.join()
            self._close(handle.conn)
            return self._crash_outcome(handle)
        return None

    @staticmethod
    def _crash_outcome(handle: LocalHandle) -> Outcome:
        exitcode = handle.process.exitcode
        return (
            "error",
            {
                "type": "WorkerCrashError",
                "message": (
                    f"worker died without a result (exit code {exitcode})"
                ),
                "transient": True,
            },
        )

    @staticmethod
    def _kill(process) -> None:
        try:
            if process.is_alive():
                process.terminate()
                process.join(0.5)
            if process.is_alive():
                process.kill()
                process.join(5)
        except (OSError, ValueError, AttributeError):
            pass

    @staticmethod
    def _close(conn) -> None:
        try:
            conn.close()
        except Exception:
            pass
