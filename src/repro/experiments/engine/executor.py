"""Sweep executor: crash isolation, timeouts, retries, resume — anywhere.

Scheduling *policy* lives here; the *transport* that physically runs an
attempt is a pluggable :class:`~repro.experiments.engine.backends.
ExecutorBackend` — the default :class:`~repro.experiments.engine.
backends.LocalBackend` forks a worker process per attempt (today's
behavior, bit-identical), the ``subprocess`` backend spawns isolated
``repro worker --serve-stdio`` interpreters, and the ``remote`` backend
drives the same workers on other machines over ssh.  Whatever carries
the attempt, every failure shape lands in the same settle path:

* the worker reports — ``("ok", result)`` or ``("error", info)``;
* the worker dies silently (segfault, ``os._exit``, OOM kill, dead ssh
  connection) → :class:`WorkerCrashError`;
* the worker exceeds its wall-clock deadline → cancelled →
  :class:`JobTimeoutError`;
* under a :class:`~repro.experiments.engine.supervise.WatchdogPolicy`,
  the worker stops heartbeating — wedged, not merely slow — and is
  cancelled past the no-progress deadline → :class:`WorkerStalledError`;
* the backend itself fails — a dispatch that reaches no worker
  (:class:`BackendConnectError`), a host lost mid-job
  (:class:`HostLostError`), an acknowledgement eaten by a partition
  (:class:`PartitionedAckError`) — all transient, all retried.

Transient failures re-enter the queue with exponential backoff until the
retry budget is spent; a job whose attempts keep *killing the worker* is
quarantined by the :class:`~repro.experiments.engine.retry.
QuarantinePolicy` (journaled FAILED-poison, excluded from resume
retries).  Every terminal outcome is appended to the checkpoint journal
before the next job is scheduled, so at any kill point the journal
describes exactly the completed prefix of the sweep — and because job
identity is content-hashed, one journal can be shared by any mix of
backends across any number of resumes.  A failed journal write (disk
full) degrades to a warning, never an aborted sweep.

The executor is also the chaos harness: a
:class:`~repro.experiments.engine.faults.FaultPlan` injects worker,
journal, *and backend* faults at deterministic (job, attempt)
coordinates, and a :class:`~repro.experiments.engine.supervise.
GracefulDrain` turns SIGTERM/SIGINT into a checkpointed stop (finish
in-flight work, journal it, return an ``interrupted`` report).
"""

from __future__ import annotations

import random
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import CheckpointError, SweepInterrupted
from repro.experiments.engine.backends import (
    ExecutorBackend,
    create_backend,
)
from repro.experiments.engine.backends.local import LocalBackend
from repro.experiments.engine.checkpoint import (
    CheckpointJournal,
    JournalSalvage,
)
from repro.experiments.engine.faults import FaultPlan, journal_mutator
from repro.experiments.engine.job import (
    Job,
    JobFailure,
    JobResult,
    ResultSnapshot,
)
from repro.experiments.engine.retry import QuarantinePolicy, RetryPolicy
from repro.experiments.engine.supervise import GracefulDrain, WatchdogPolicy
from repro.experiments.engine.worker import default_worker

#: upper bound on one scheduler tick, so deadlines are checked promptly
_MAX_TICK = 0.2

#: failure types that count as "this job killed its worker"
_WORKER_LOSS_TYPES = ("WorkerCrashError", "WorkerStalledError")


@dataclass
class _Attempt:
    """A job waiting to run (possibly a delayed retry)."""

    job: Job
    attempt: int = 1
    not_before: float = 0.0
    #: cumulative backoff seconds this job has waited across retries
    backoff_total: float = 0.0
    #: worker deaths this job has caused (journal-seeded across resumes)
    crashes: int = 0
    #: when this attempt entered the queue (monotonic)
    enqueued: float = 0.0
    #: seconds spent queued beyond scheduled backoff, across attempts
    queue_total: float = 0.0


@dataclass
class _Running:
    """A live attempt: its backend handle plus scheduling state."""

    entry: _Attempt
    handle: object
    deadline: Optional[float]
    #: a resolved backend fault to deliver on this attempt (chaos)
    backend_fault: object = None


@dataclass
class SweepReport:
    """Everything a sweep produced, failures included."""

    results: Dict[str, JobResult] = field(default_factory=dict)
    #: job keys in first-submission order (stable reporting order)
    order: List[str] = field(default_factory=list)
    #: True when a drain request stopped the sweep before every job ran
    interrupted: bool = False
    #: journal-write failures tolerated during the sweep (disk full, ...)
    journal_errors: int = 0
    #: what the resume load salvaged from the journal (None: no resume)
    salvage: Optional[JournalSalvage] = None

    def __iter__(self):
        # an interrupted sweep has order entries that never settled
        return (
            self.results[key] for key in self.order if key in self.results
        )

    @property
    def ok(self) -> List[JobResult]:
        return [r for r in self if r.ok]

    @property
    def failures(self) -> List[JobResult]:
        return [r for r in self if not r.ok]

    @property
    def resumed(self) -> List[JobResult]:
        return [r for r in self if r.resumed]

    @property
    def quarantined(self) -> List[JobResult]:
        """Jobs poisoned for repeatedly killing their worker."""
        return [
            r
            for r in self.failures
            if r.failure is not None and r.failure.poison
        ]

    @property
    def unfinished(self) -> List[str]:
        """Job keys submitted but never settled (interrupted sweep)."""
        return [key for key in self.order if key not in self.results]

    @property
    def exit_code(self) -> int:
        """0 all ok; 1 some failed (partial sweep); 130 interrupted."""
        if self.interrupted:
            return 130
        return 1 if self.failures else 0

    def by_cell(self) -> Dict[Tuple[str, str], JobResult]:
        """(benchmark, mechanism) -> outcome, for table assembly."""
        return {(r.job.benchmark, r.job.mechanism): r for r in self}


class ExecutionEngine:
    """Run a list of jobs to completion, whatever the jobs do."""

    def __init__(
        self,
        jobs: int = 1,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        checkpoint: Optional[CheckpointJournal] = None,
        worker: Optional[Callable[[Job], object]] = None,
        start_method: Optional[str] = None,
        seed: int = 0x5EED,
        watchdog: Optional[WatchdogPolicy] = None,
        quarantine: Optional[QuarantinePolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        tracer=None,
        backend: Union[None, str, ExecutorBackend] = None,
    ):
        self.jobs = max(1, int(jobs))
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self.checkpoint = checkpoint
        self.worker = worker or default_worker
        self.watchdog = watchdog
        self.quarantine = quarantine or QuarantinePolicy()
        self.fault_plan = fault_plan
        #: anything with EventTracer's ``emit`` surface; engine events
        #: (retry/quarantine/watchdog/journal/dispatch) land here
        self.tracer = tracer
        if backend is None:
            backend = LocalBackend(start_method=start_method)
        elif isinstance(backend, str):
            backend = create_backend(backend, start_method=start_method)
        self.backend: ExecutorBackend = backend
        self.backend.bind(self.worker, self._emit, self.jobs)
        self._rng = random.Random(seed)
        self._t0 = 0.0

    # -- public ------------------------------------------------------------

    def close(self) -> None:
        """Release the backend's transport resources (worker pools)."""
        self.backend.close()

    def run(
        self,
        jobs: Iterable[Job],
        resume: bool = False,
        progress: Optional[Callable[[JobResult], None]] = None,
        drain: Optional[GracefulDrain] = None,
        retry_poisoned: bool = False,
    ) -> SweepReport:
        """Execute every job; never raises for anything a job did.

        With ``resume=True`` and a checkpoint journal, jobs whose key has
        a successful journal record are replayed as resumed results and
        not re-executed; failed records are retried from scratch — except
        poisoned ones (quarantined worker-killers), which replay as
        failures unless ``retry_poisoned`` re-admits them with a fresh
        crash budget.  A *drain* request stops launching and returns an
        ``interrupted`` report once in-flight jobs settle.
        """
        self._t0 = time.monotonic()
        report = SweepReport()
        prior: Dict[str, dict] = {}
        if resume and self.checkpoint is not None:
            prior, report.salvage = self.checkpoint.load_with_stats()
            if not report.salvage.clean:
                self._emit(
                    "journal-salvage",
                    str(self.checkpoint.path),
                    **{
                        "records": report.salvage.records,
                        "corrupt": report.salvage.corrupt,
                        "crc_mismatch": report.salvage.crc_mismatch,
                    },
                )
        pending: "deque[_Attempt]" = deque()
        seen = set()
        now = time.monotonic()
        for job in jobs:
            key = job.key()
            if key in seen:
                continue  # the same cell submitted twice is one job
            seen.add(key)
            report.order.append(key)
            record = prior.get(key)
            outcome = self._replay(job, record, retry_poisoned)
            if outcome is not None:
                report.results[key] = outcome
                if progress is not None:
                    progress(outcome)
            else:
                crashes = 0
                if record is not None and not retry_poisoned:
                    crashes = int(record.get("crashes", 0) or 0)
                pending.append(_Attempt(job, crashes=crashes, enqueued=now))
        running: List[_Running] = []
        try:
            while pending or running:
                draining = drain is not None and drain.requested
                if not draining:
                    self._launch(pending, running, report, progress)
                elif not running:
                    report.interrupted = True
                    self._emit("drain", None, abandoned=len(pending))
                    break
                self._reap(pending, running, report, progress)
        finally:
            for live in running:  # interrupted: leave no orphans behind
                self.backend.cancel(live.handle)
        return report

    def _replay(
        self, job: Job, record: Optional[dict], retry_poisoned: bool
    ) -> Optional[JobResult]:
        """A resumed JobResult for *record*, or None to (re-)execute."""
        if record is None:
            return None
        if record.get("status") == "ok":
            return JobResult(
                job,
                "ok",
                result=ResultSnapshot(record.get("metrics") or {}),
                attempts=int(record.get("attempts", 1)),
                duration=float(record.get("duration", 0.0)),
                backoff_total=float(record.get("backoff_seconds", 0.0)),
                crashes=int(record.get("crashes", 0) or 0),
                resumed=True,
                executor=record.get("executor"),
                host=record.get("host"),
                queue_seconds=record.get("queue_seconds"),
            )
        error = record.get("error") or {}
        if error.get("poison") and not retry_poisoned:
            # quarantined: replay the failure, do not burn another worker
            return JobResult(
                job,
                "failed",
                failure=JobFailure(
                    error_type=str(error.get("type", "PoisonJobError")),
                    message=str(error.get("message", "")),
                    transient=False,
                    poison=True,
                ),
                attempts=int(record.get("attempts", 1)),
                duration=float(record.get("duration", 0.0)),
                backoff_total=float(record.get("backoff_seconds", 0.0)),
                crashes=int(record.get("crashes", 0) or 0),
                resumed=True,
            )
        return None

    # -- scheduling --------------------------------------------------------

    def _launch(self, pending, running, report, progress) -> None:
        for _ in range(len(pending)):
            if len(running) >= self.backend.capacity():
                return
            now = time.monotonic()
            entry = pending.popleft()
            if entry.not_before > now:
                pending.append(entry)  # still backing off; try the next
                continue
            worker_fault = None
            backend_fault = None
            if self.fault_plan is not None:
                worker_fault = self.fault_plan.worker_fault(
                    entry.job, entry.attempt
                )
                backend_fault = self.fault_plan.backend_fault(
                    entry.job, entry.attempt
                )
                for fault in (worker_fault, backend_fault):
                    if fault is not None:
                        self._emit(
                            "fault",
                            entry.job.label,
                            kind=fault.kind,
                            attempt=entry.attempt,
                        )
            entry.queue_total += max(
                0.0, now - max(entry.enqueued, entry.not_before)
            )
            if (
                backend_fault is not None
                and backend_fault.kind == "connect-fail"
            ):
                # the dispatch never reaches a worker
                self._settle(
                    entry,
                    (
                        "error",
                        {
                            "type": "BackendConnectError",
                            "message": "injected: backend connect failed",
                            "transient": True,
                        },
                    ),
                    duration=0.0,
                    host=None,
                    pending=pending,
                    report=report,
                    progress=progress,
                )
                continue
            heartbeat = (
                self.watchdog.interval if self.watchdog is not None else None
            )
            try:
                handle = self.backend.submit(
                    entry.job,
                    entry.attempt,
                    fault=worker_fault,
                    heartbeat=heartbeat,
                )
            except Exception as error:
                # a transport failure is a job failure shape the retry
                # policy already understands — never an aborted sweep
                self._settle(
                    entry,
                    (
                        "error",
                        {
                            "type": type(error).__name__,
                            "message": str(error),
                            "transient": bool(
                                getattr(error, "transient", True)
                            ),
                        },
                    ),
                    duration=0.0,
                    host=None,
                    pending=pending,
                    report=report,
                    progress=progress,
                )
                continue
            self._emit(
                "dispatch",
                entry.job.label,
                backend=self.backend.name,
                host=handle.host,
                attempt=entry.attempt,
            )
            deadline = (
                handle.started + self.timeout if self.timeout else None
            )
            running.append(
                _Running(entry, handle, deadline, backend_fault)
            )

    def _reap(self, pending, running, report, progress) -> None:
        if not running:
            if pending:
                wake = min(entry.not_before for entry in pending)
                delay = wake - time.monotonic()
                if delay > 0:  # everything is backing off
                    time.sleep(min(delay, _MAX_TICK))
                elif self.backend.capacity() <= 0:
                    # nowhere to launch (every host lost): idle a tick
                    # while health cooldowns run down
                    time.sleep(_MAX_TICK / 4)
            return
        settled: List[Tuple[_Running, tuple]] = []
        polling: List[_Running] = []
        for live in running:
            if (
                live.backend_fault is not None
                and live.backend_fault.kind == "host-loss"
            ):
                # the host dies mid-job: kill the attempt through the
                # backend (remote backends also mark the host lost)
                self.backend.lose_host(live.handle)
                self._emit(
                    "host-lost",
                    live.entry.job.label,
                    host=live.handle.host,
                    attempt=live.entry.attempt,
                )
                settled.append(
                    (
                        live,
                        (
                            "error",
                            {
                                "type": "HostLostError",
                                "message": (
                                    "injected: host lost mid-job"
                                ),
                                "transient": True,
                            },
                        ),
                    )
                )
            else:
                polling.append(live)
        by_handle = {id(live.handle): live for live in polling}
        outcomes = self.backend.poll(
            [live.handle for live in polling],
            timeout=self._tick(pending, running) if not settled else 0.0,
        )
        for handle, outcome in outcomes:
            live = by_handle.pop(id(handle), None)
            if live is None:
                continue
            if (
                live.backend_fault is not None
                and live.backend_fault.kind == "partitioned-ack"
            ):
                # the result arrived but its acknowledgement is lost:
                # the engine must behave as if it never saw it
                self._emit(
                    "partitioned-ack",
                    live.entry.job.label,
                    attempt=live.entry.attempt,
                )
                outcome = (
                    "error",
                    {
                        "type": "PartitionedAckError",
                        "message": (
                            "injected: result acknowledgement lost"
                        ),
                        "transient": True,
                    },
                )
            settled.append((live, outcome))
        now = time.monotonic()
        for live in by_handle.values():  # still in flight: enforce policy
            outcome = self._overdue(live, now)
            if outcome is not None:
                settled.append((live, outcome))
        settled_set = {id(live) for live, _ in settled}
        running[:] = [
            live for live in running if id(live) not in settled_set
        ]
        for live, outcome in settled:
            duration = time.monotonic() - (live.handle.started or now)
            self._settle(
                live.entry,
                outcome,
                duration=duration,
                host=live.handle.host,
                pending=pending,
                report=report,
                progress=progress,
            )

    def _overdue(self, live: _Running, now: float):
        """A watchdog/timeout outcome for an in-flight attempt, or None."""
        handle = live.handle
        if self.watchdog is not None:
            last_progress = max(handle.started, handle.last_beat)
            stalled_for = now - last_progress
            if stalled_for >= self.watchdog.no_progress_timeout:
                self.backend.cancel(handle)
                self._emit(
                    "watchdog",
                    live.entry.job.label,
                    stalled_for=round(stalled_for, 3),
                    attempt=live.entry.attempt,
                )
                return (
                    "error",
                    {
                        "type": "WorkerStalledError",
                        "message": (
                            f"no heartbeat for {stalled_for:.1f}s "
                            "(no-progress deadline "
                            f"{self.watchdog.no_progress_timeout:g}s)"
                        ),
                        "transient": True,
                    },
                )
        if live.deadline is not None and now >= live.deadline:
            self.backend.cancel(handle)
            return (
                "error",
                {
                    "type": "JobTimeoutError",
                    "message": f"timed out after {self.timeout:g}s",
                    "transient": True,
                },
            )
        return None

    def _tick(self, pending, running) -> float:
        now = time.monotonic()
        tick = _MAX_TICK
        for live in running:
            if live.deadline is not None:
                tick = min(tick, live.deadline - now)
            if self.watchdog is not None:
                stall_at = (
                    max(live.handle.started, live.handle.last_beat)
                    + self.watchdog.no_progress_timeout
                )
                tick = min(tick, stall_at - now)
        for entry in pending:
            if entry.not_before:
                tick = min(tick, entry.not_before - now)
        return max(0.01, tick)

    # -- outcome handling --------------------------------------------------

    def _settle(
        self, entry, outcome, duration, host, pending, report, progress
    ) -> None:
        kind, payload = outcome
        if kind == "ok":
            result = JobResult(
                entry.job, "ok", result=payload,
                attempts=entry.attempt, duration=duration,
                backoff_total=entry.backoff_total, crashes=entry.crashes,
                executor=self.backend.name, host=host,
                queue_seconds=round(entry.queue_total, 6),
            )
        else:
            failure = JobFailure(
                error_type=str(payload.get("type", "Exception")),
                message=str(payload.get("message", "")),
                transient=bool(payload.get("transient", False)),
            )
            if failure.error_type in _WORKER_LOSS_TYPES:
                entry.crashes += 1
            if self.quarantine.is_poison(entry.crashes):
                failure = JobFailure(
                    error_type="PoisonJobError",
                    message=(
                        f"quarantined: killed its worker {entry.crashes} "
                        f"time(s), last as {failure.error_type}: "
                        f"{failure.message}"
                    ),
                    transient=False,
                    poison=True,
                )
                self._emit(
                    "quarantine",
                    entry.job.label,
                    crashes=entry.crashes,
                    attempts=entry.attempt,
                )
            elif self.retry.should_retry(entry.attempt, failure.transient):
                delay = self.retry.delay(entry.attempt, self._rng)
                self._emit(
                    "retry",
                    entry.job.label,
                    attempt=entry.attempt,
                    delay=round(delay, 3),
                    error=failure.error_type,
                )
                now = time.monotonic()
                pending.append(
                    _Attempt(
                        entry.job,
                        entry.attempt + 1,
                        now + delay,
                        entry.backoff_total + delay,
                        entry.crashes,
                        enqueued=now,
                        queue_total=entry.queue_total,
                    )
                )
                return  # not terminal yet: no record, no report entry
            result = JobResult(
                entry.job, "failed", failure=failure,
                attempts=entry.attempt, duration=duration,
                backoff_total=entry.backoff_total, crashes=entry.crashes,
                executor=self.backend.name, host=host,
                queue_seconds=round(entry.queue_total, 6),
            )
        report.results[entry.job.key()] = result
        self._record(result, entry, report)
        if progress is not None:
            progress(result)
        if self.fault_plan is not None and self.fault_plan.abort_after(
            entry.job, entry.attempt
        ):
            self._emit("abort", entry.job.label, attempt=entry.attempt)
            raise SweepInterrupted(
                f"fault injection: abort after {entry.job.label} "
                "(journal holds the completed prefix; --resume continues)"
            )

    def _record(self, result: JobResult, entry, report) -> None:
        """Journal one terminal outcome; a failed write degrades."""
        if self.checkpoint is None:
            return
        mutate = None
        if self.fault_plan is not None:
            spec = self.fault_plan.journal_fault(entry.job, entry.attempt)
            if spec is not None:
                self._emit(
                    "fault",
                    entry.job.label,
                    kind=spec.kind,
                    attempt=entry.attempt,
                )
                mutate = journal_mutator(spec)
        try:
            self.checkpoint.record(result, mutate=mutate)
        except CheckpointError as error:
            # a full disk must not abort a week of sweep: the result
            # stays in the report, the cell re-runs on resume
            report.journal_errors += 1
            self._emit(
                "journal-error", entry.job.label, error=str(error)
            )
            warnings.warn(
                f"checkpoint write failed for {entry.job.label} "
                f"({error}); continuing — this cell will re-run on resume"
            )

    def _emit(self, event: str, name: Optional[str], **args) -> None:
        """Mirror an engine event into the attached tracer (if any)."""
        if self.tracer is None:
            return
        try:
            self.tracer.emit(
                round(time.monotonic() - self._t0, 6),
                event,
                name,
                None,
                None,
                args or None,
            )
        except Exception:
            pass  # telemetry must never take down a sweep
