"""Process-pool executor: crash isolation, timeouts, retries, resume.

Each job attempt runs in its own worker process connected to the parent
by a one-way pipe.  The parent multiplexes over every live pipe *and*
every process sentinel, so all three failure shapes are observed
directly:

* the worker reports — ``("ok", result)`` or ``("error", info)``;
* the worker dies silently (segfault, ``os._exit``, OOM kill) — its
  sentinel fires with no message queued → :class:`WorkerCrashError`;
* the worker wedges — its deadline passes → SIGTERM, then SIGKILL →
  :class:`JobTimeoutError`.

Transient failures re-enter the queue with exponential backoff until the
retry budget is spent; every terminal outcome is appended to the
checkpoint journal before the next job is scheduled, so at any kill
point the journal describes exactly the completed prefix of the sweep.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_ready
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.experiments.engine.checkpoint import CheckpointJournal
from repro.experiments.engine.job import (
    Job,
    JobFailure,
    JobResult,
    ResultSnapshot,
)
from repro.experiments.engine.retry import RetryPolicy
from repro.experiments.engine.worker import default_worker, worker_shim

#: upper bound on one scheduler tick, so deadlines are checked promptly
_MAX_TICK = 0.2


@dataclass
class _Attempt:
    """A job waiting to run (possibly a delayed retry)."""

    job: Job
    attempt: int = 1
    not_before: float = 0.0


@dataclass
class _Running:
    """A live worker process and the attempt it is executing."""

    entry: _Attempt
    process: object
    conn: object
    deadline: Optional[float]
    started: float


@dataclass
class SweepReport:
    """Everything a sweep produced, failures included."""

    results: Dict[str, JobResult] = field(default_factory=dict)
    #: job keys in first-submission order (stable reporting order)
    order: List[str] = field(default_factory=list)

    def __iter__(self):
        return (self.results[key] for key in self.order)

    @property
    def ok(self) -> List[JobResult]:
        return [r for r in self if r.ok]

    @property
    def failures(self) -> List[JobResult]:
        return [r for r in self if not r.ok]

    @property
    def resumed(self) -> List[JobResult]:
        return [r for r in self if r.resumed]

    @property
    def exit_code(self) -> int:
        """0 if every job succeeded, 1 if any failed (partial sweep)."""
        return 1 if self.failures else 0

    def by_cell(self) -> Dict[Tuple[str, str], JobResult]:
        """(benchmark, mechanism) -> outcome, for table assembly."""
        return {(r.job.benchmark, r.job.mechanism): r for r in self}


class ExecutionEngine:
    """Run a list of jobs to completion, whatever the jobs do."""

    def __init__(
        self,
        jobs: int = 1,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        checkpoint: Optional[CheckpointJournal] = None,
        worker: Optional[Callable[[Job], object]] = None,
        start_method: Optional[str] = None,
        seed: int = 0x5EED,
    ):
        self.jobs = max(1, int(jobs))
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self.checkpoint = checkpoint
        self.worker = worker or default_worker
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._rng = random.Random(seed)

    # -- public ------------------------------------------------------------

    def run(
        self,
        jobs: Iterable[Job],
        resume: bool = False,
        progress: Optional[Callable[[JobResult], None]] = None,
    ) -> SweepReport:
        """Execute every job; never raises for anything a job did.

        With ``resume=True`` and a checkpoint journal, jobs whose key has
        a successful journal record are replayed as resumed results and
        not re-executed; failed records are retried from scratch.
        """
        report = SweepReport()
        prior = (
            self.checkpoint.load() if (resume and self.checkpoint) else {}
        )
        pending: "deque[_Attempt]" = deque()
        seen = set()
        for job in jobs:
            key = job.key()
            if key in seen:
                continue  # the same cell submitted twice is one job
            seen.add(key)
            report.order.append(key)
            record = prior.get(key)
            if record is not None and record.get("status") == "ok":
                outcome = JobResult(
                    job,
                    "ok",
                    result=ResultSnapshot(record.get("metrics") or {}),
                    attempts=int(record.get("attempts", 1)),
                    duration=float(record.get("duration", 0.0)),
                    resumed=True,
                )
                report.results[key] = outcome
                if progress is not None:
                    progress(outcome)
            else:
                pending.append(_Attempt(job))
        running: List[_Running] = []
        try:
            while pending or running:
                self._launch(pending, running)
                self._reap(pending, running, report, progress)
        finally:
            for live in running:  # interrupted: leave no orphans behind
                self._kill(live.process)
                self._close(live.conn)
        return report

    # -- scheduling --------------------------------------------------------

    def _launch(self, pending, running) -> None:
        now = time.monotonic()
        for _ in range(len(pending)):
            if len(running) >= self.jobs:
                return
            entry = pending.popleft()
            if entry.not_before > now:
                pending.append(entry)  # still backing off; try the next
                continue
            recv_conn, send_conn = self._ctx.Pipe(duplex=False)
            process = self._ctx.Process(
                target=worker_shim,
                args=(send_conn, self.worker, entry.job),
                daemon=True,
            )
            process.start()
            send_conn.close()  # child holds the only writer now
            started = time.monotonic()
            deadline = started + self.timeout if self.timeout else None
            running.append(
                _Running(entry, process, recv_conn, deadline, started)
            )

    def _reap(self, pending, running, report, progress) -> None:
        if not running:
            if pending:  # everything is backing off; sleep to the nearest
                wake = min(entry.not_before for entry in pending)
                delay = wake - time.monotonic()
                if delay > 0:
                    time.sleep(min(delay, _MAX_TICK))
            return
        handles = [live.conn for live in running]
        handles += [live.process.sentinel for live in running]
        _wait_ready(handles, timeout=self._tick(pending, running))
        now = time.monotonic()
        still_running: List[_Running] = []
        for live in running:
            outcome = self._poll(live, now)
            if outcome is None:
                still_running.append(live)
            else:
                self._settle(live, outcome, pending, report, progress)
        running[:] = still_running

    def _tick(self, pending, running) -> float:
        now = time.monotonic()
        tick = _MAX_TICK
        for live in running:
            if live.deadline is not None:
                tick = min(tick, live.deadline - now)
        for entry in pending:
            if entry.not_before:
                tick = min(tick, entry.not_before - now)
        return max(0.01, tick)

    # -- outcome handling --------------------------------------------------

    def _poll(self, live: _Running, now: float):
        """The attempt's outcome message, or None if still running."""
        try:
            has_message = live.conn.poll()
        except (OSError, ValueError):
            has_message = False
        if has_message:
            try:
                message = live.conn.recv()
            except (EOFError, OSError):  # died mid-send
                message = None
            live.process.join(5)
            if live.process.is_alive():
                self._kill(live.process)
            if message is not None:
                return message
            return self._crash_outcome(live)
        if not live.process.is_alive():
            live.process.join()
            return self._crash_outcome(live)
        if live.deadline is not None and now >= live.deadline:
            self._kill(live.process)
            return (
                "error",
                {
                    "type": "JobTimeoutError",
                    "message": f"timed out after {self.timeout:g}s",
                    "transient": True,
                },
            )
        return None

    def _crash_outcome(self, live: _Running):
        exitcode = live.process.exitcode
        return (
            "error",
            {
                "type": "WorkerCrashError",
                "message": (
                    f"worker died without a result (exit code {exitcode})"
                ),
                "transient": True,
            },
        )

    def _settle(self, live, outcome, pending, report, progress) -> None:
        self._close(live.conn)
        entry = live.entry
        duration = time.monotonic() - live.started
        kind, payload = outcome
        if kind == "ok":
            result = JobResult(
                entry.job, "ok", result=payload,
                attempts=entry.attempt, duration=duration,
            )
        else:
            failure = JobFailure(
                error_type=str(payload.get("type", "Exception")),
                message=str(payload.get("message", "")),
                transient=bool(payload.get("transient", False)),
            )
            if self.retry.should_retry(entry.attempt, failure.transient):
                pending.append(
                    _Attempt(
                        entry.job,
                        entry.attempt + 1,
                        time.monotonic()
                        + self.retry.delay(entry.attempt, self._rng),
                    )
                )
                return  # not terminal yet: no record, no report entry
            result = JobResult(
                entry.job, "failed", failure=failure,
                attempts=entry.attempt, duration=duration,
            )
        report.results[entry.job.key()] = result
        if self.checkpoint is not None:
            self.checkpoint.record(result)
        if progress is not None:
            progress(result)

    # -- process plumbing --------------------------------------------------

    @staticmethod
    def _kill(process) -> None:
        try:
            if process.is_alive():
                process.terminate()
                process.join(0.5)
            if process.is_alive():
                process.kill()
                process.join(5)
        except (OSError, ValueError, AttributeError):
            pass

    @staticmethod
    def _close(conn) -> None:
        try:
            conn.close()
        except Exception:
            pass
