"""Process-pool executor: crash isolation, timeouts, retries, resume.

Each job attempt runs in its own worker process connected to the parent
by a one-way pipe.  The parent multiplexes over every live pipe *and*
every process sentinel, so all failure shapes are observed directly:

* the worker reports — ``("ok", result)`` or ``("error", info)``;
* the worker dies silently (segfault, ``os._exit``, OOM kill) — its
  sentinel fires with no message queued → :class:`WorkerCrashError`;
* the worker exceeds its wall-clock deadline → SIGTERM, then SIGKILL →
  :class:`JobTimeoutError`;
* under a :class:`~repro.experiments.engine.supervise.WatchdogPolicy`,
  the worker stops heartbeating — wedged, not merely slow — and is
  killed past the no-progress deadline → :class:`WorkerStalledError`.

Transient failures re-enter the queue with exponential backoff until the
retry budget is spent; a job whose attempts keep *killing the worker* is
quarantined by the :class:`~repro.experiments.engine.retry.
QuarantinePolicy` (journaled FAILED-poison, excluded from resume
retries).  Every terminal outcome is appended to the checkpoint journal
before the next job is scheduled, so at any kill point the journal
describes exactly the completed prefix of the sweep; a failed journal
write (disk full) degrades to a warning, never an aborted sweep.

The executor is also the chaos harness: a
:class:`~repro.experiments.engine.faults.FaultPlan` injects worker and
journal faults at deterministic (job, attempt) coordinates, and a
:class:`~repro.experiments.engine.supervise.GracefulDrain` turns
SIGTERM/SIGINT into a checkpointed stop (finish in-flight work, journal
it, return an ``interrupted`` report).
"""

from __future__ import annotations

import multiprocessing
import random
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_ready
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import CheckpointError, SweepInterrupted
from repro.experiments.engine.checkpoint import (
    CheckpointJournal,
    JournalSalvage,
)
from repro.experiments.engine.faults import FaultPlan, journal_mutator
from repro.experiments.engine.job import (
    Job,
    JobFailure,
    JobResult,
    ResultSnapshot,
)
from repro.experiments.engine.retry import QuarantinePolicy, RetryPolicy
from repro.experiments.engine.supervise import GracefulDrain, WatchdogPolicy
from repro.experiments.engine.worker import default_worker, worker_shim

#: upper bound on one scheduler tick, so deadlines are checked promptly
_MAX_TICK = 0.2

#: failure types that count as "this job killed its worker"
_WORKER_LOSS_TYPES = ("WorkerCrashError", "WorkerStalledError")


@dataclass
class _Attempt:
    """A job waiting to run (possibly a delayed retry)."""

    job: Job
    attempt: int = 1
    not_before: float = 0.0
    #: cumulative backoff seconds this job has waited across retries
    backoff_total: float = 0.0
    #: worker deaths this job has caused (journal-seeded across resumes)
    crashes: int = 0


@dataclass
class _Running:
    """A live worker process and the attempt it is executing."""

    entry: _Attempt
    process: object
    conn: object
    deadline: Optional[float]
    started: float
    #: monotonic time of the last heartbeat (0.0 = none seen yet)
    last_beat: float = 0.0


@dataclass
class SweepReport:
    """Everything a sweep produced, failures included."""

    results: Dict[str, JobResult] = field(default_factory=dict)
    #: job keys in first-submission order (stable reporting order)
    order: List[str] = field(default_factory=list)
    #: True when a drain request stopped the sweep before every job ran
    interrupted: bool = False
    #: journal-write failures tolerated during the sweep (disk full, ...)
    journal_errors: int = 0
    #: what the resume load salvaged from the journal (None: no resume)
    salvage: Optional[JournalSalvage] = None

    def __iter__(self):
        # an interrupted sweep has order entries that never settled
        return (
            self.results[key] for key in self.order if key in self.results
        )

    @property
    def ok(self) -> List[JobResult]:
        return [r for r in self if r.ok]

    @property
    def failures(self) -> List[JobResult]:
        return [r for r in self if not r.ok]

    @property
    def resumed(self) -> List[JobResult]:
        return [r for r in self if r.resumed]

    @property
    def quarantined(self) -> List[JobResult]:
        """Jobs poisoned for repeatedly killing their worker."""
        return [
            r
            for r in self.failures
            if r.failure is not None and r.failure.poison
        ]

    @property
    def unfinished(self) -> List[str]:
        """Job keys submitted but never settled (interrupted sweep)."""
        return [key for key in self.order if key not in self.results]

    @property
    def exit_code(self) -> int:
        """0 all ok; 1 some failed (partial sweep); 130 interrupted."""
        if self.interrupted:
            return 130
        return 1 if self.failures else 0

    def by_cell(self) -> Dict[Tuple[str, str], JobResult]:
        """(benchmark, mechanism) -> outcome, for table assembly."""
        return {(r.job.benchmark, r.job.mechanism): r for r in self}


class ExecutionEngine:
    """Run a list of jobs to completion, whatever the jobs do."""

    def __init__(
        self,
        jobs: int = 1,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        checkpoint: Optional[CheckpointJournal] = None,
        worker: Optional[Callable[[Job], object]] = None,
        start_method: Optional[str] = None,
        seed: int = 0x5EED,
        watchdog: Optional[WatchdogPolicy] = None,
        quarantine: Optional[QuarantinePolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        tracer=None,
    ):
        self.jobs = max(1, int(jobs))
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self.checkpoint = checkpoint
        self.worker = worker or default_worker
        self.watchdog = watchdog
        self.quarantine = quarantine or QuarantinePolicy()
        self.fault_plan = fault_plan
        #: anything with EventTracer's ``emit`` surface; engine events
        #: (retry/quarantine/watchdog/journal) land here when attached
        self.tracer = tracer
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._rng = random.Random(seed)
        self._t0 = 0.0

    # -- public ------------------------------------------------------------

    def run(
        self,
        jobs: Iterable[Job],
        resume: bool = False,
        progress: Optional[Callable[[JobResult], None]] = None,
        drain: Optional[GracefulDrain] = None,
        retry_poisoned: bool = False,
    ) -> SweepReport:
        """Execute every job; never raises for anything a job did.

        With ``resume=True`` and a checkpoint journal, jobs whose key has
        a successful journal record are replayed as resumed results and
        not re-executed; failed records are retried from scratch — except
        poisoned ones (quarantined worker-killers), which replay as
        failures unless ``retry_poisoned`` re-admits them with a fresh
        crash budget.  A *drain* request stops launching and returns an
        ``interrupted`` report once in-flight jobs settle.
        """
        self._t0 = time.monotonic()
        report = SweepReport()
        prior: Dict[str, dict] = {}
        if resume and self.checkpoint is not None:
            prior, report.salvage = self.checkpoint.load_with_stats()
            if not report.salvage.clean:
                self._emit(
                    "journal-salvage",
                    str(self.checkpoint.path),
                    **{
                        "records": report.salvage.records,
                        "corrupt": report.salvage.corrupt,
                        "crc_mismatch": report.salvage.crc_mismatch,
                    },
                )
        pending: "deque[_Attempt]" = deque()
        seen = set()
        for job in jobs:
            key = job.key()
            if key in seen:
                continue  # the same cell submitted twice is one job
            seen.add(key)
            report.order.append(key)
            record = prior.get(key)
            outcome = self._replay(job, record, retry_poisoned)
            if outcome is not None:
                report.results[key] = outcome
                if progress is not None:
                    progress(outcome)
            else:
                crashes = 0
                if record is not None and not retry_poisoned:
                    crashes = int(record.get("crashes", 0) or 0)
                pending.append(_Attempt(job, crashes=crashes))
        running: List[_Running] = []
        try:
            while pending or running:
                draining = drain is not None and drain.requested
                if not draining:
                    self._launch(pending, running)
                elif not running:
                    report.interrupted = True
                    self._emit("drain", None, abandoned=len(pending))
                    break
                self._reap(pending, running, report, progress)
        finally:
            for live in running:  # interrupted: leave no orphans behind
                self._kill(live.process)
                self._close(live.conn)
        return report

    def _replay(
        self, job: Job, record: Optional[dict], retry_poisoned: bool
    ) -> Optional[JobResult]:
        """A resumed JobResult for *record*, or None to (re-)execute."""
        if record is None:
            return None
        if record.get("status") == "ok":
            return JobResult(
                job,
                "ok",
                result=ResultSnapshot(record.get("metrics") or {}),
                attempts=int(record.get("attempts", 1)),
                duration=float(record.get("duration", 0.0)),
                backoff_total=float(record.get("backoff_seconds", 0.0)),
                crashes=int(record.get("crashes", 0) or 0),
                resumed=True,
            )
        error = record.get("error") or {}
        if error.get("poison") and not retry_poisoned:
            # quarantined: replay the failure, do not burn another worker
            return JobResult(
                job,
                "failed",
                failure=JobFailure(
                    error_type=str(error.get("type", "PoisonJobError")),
                    message=str(error.get("message", "")),
                    transient=False,
                    poison=True,
                ),
                attempts=int(record.get("attempts", 1)),
                duration=float(record.get("duration", 0.0)),
                backoff_total=float(record.get("backoff_seconds", 0.0)),
                crashes=int(record.get("crashes", 0) or 0),
                resumed=True,
            )
        return None

    # -- scheduling --------------------------------------------------------

    def _launch(self, pending, running) -> None:
        now = time.monotonic()
        for _ in range(len(pending)):
            if len(running) >= self.jobs:
                return
            entry = pending.popleft()
            if entry.not_before > now:
                pending.append(entry)  # still backing off; try the next
                continue
            fault = None
            if self.fault_plan is not None:
                fault = self.fault_plan.worker_fault(
                    entry.job, entry.attempt
                )
                if fault is not None:
                    self._emit(
                        "fault",
                        entry.job.label,
                        kind=fault.kind,
                        attempt=entry.attempt,
                    )
            heartbeat = (
                self.watchdog.interval if self.watchdog is not None else None
            )
            recv_conn, send_conn = self._ctx.Pipe(duplex=False)
            process = self._ctx.Process(
                target=worker_shim,
                args=(send_conn, self.worker, entry.job, fault, heartbeat),
                daemon=True,
            )
            process.start()
            send_conn.close()  # child holds the only writer now
            started = time.monotonic()
            deadline = started + self.timeout if self.timeout else None
            running.append(
                _Running(entry, process, recv_conn, deadline, started)
            )

    def _reap(self, pending, running, report, progress) -> None:
        if not running:
            if pending:  # everything is backing off; sleep to the nearest
                wake = min(entry.not_before for entry in pending)
                delay = wake - time.monotonic()
                if delay > 0:
                    time.sleep(min(delay, _MAX_TICK))
            return
        handles = [live.conn for live in running]
        handles += [live.process.sentinel for live in running]
        _wait_ready(handles, timeout=self._tick(pending, running))
        now = time.monotonic()
        still_running: List[_Running] = []
        for live in running:
            outcome = self._poll(live, now)
            if outcome is None:
                still_running.append(live)
            else:
                self._settle(live, outcome, pending, report, progress)
        running[:] = still_running

    def _tick(self, pending, running) -> float:
        now = time.monotonic()
        tick = _MAX_TICK
        for live in running:
            if live.deadline is not None:
                tick = min(tick, live.deadline - now)
            if self.watchdog is not None:
                stall_at = (
                    max(live.started, live.last_beat)
                    + self.watchdog.no_progress_timeout
                )
                tick = min(tick, stall_at - now)
        for entry in pending:
            if entry.not_before:
                tick = min(tick, entry.not_before - now)
        return max(0.01, tick)

    # -- outcome handling --------------------------------------------------

    def _poll(self, live: _Running, now: float):
        """The attempt's outcome message, or None if still running."""
        outcome = None
        pipe_broken = False
        while True:  # drain heartbeats queued ahead of the outcome
            try:
                if not live.conn.poll():
                    break
            except (OSError, ValueError):
                break
            try:
                message = live.conn.recv()
            except (EOFError, OSError):  # died mid-send
                pipe_broken = True
                break
            if (
                isinstance(message, tuple)
                and message
                and message[0] == "heartbeat"
            ):
                live.last_beat = time.monotonic()
                continue
            outcome = message
            break
        if outcome is not None:
            live.process.join(5)
            if live.process.is_alive():
                self._kill(live.process)
            return outcome
        if pipe_broken:
            live.process.join(5)
            if live.process.is_alive():
                self._kill(live.process)
            return self._crash_outcome(live)
        if not live.process.is_alive():
            live.process.join()
            return self._crash_outcome(live)
        if self.watchdog is not None:
            last_progress = max(live.started, live.last_beat)
            stalled_for = now - last_progress
            if stalled_for >= self.watchdog.no_progress_timeout:
                self._kill(live.process)
                self._emit(
                    "watchdog",
                    live.entry.job.label,
                    stalled_for=round(stalled_for, 3),
                    attempt=live.entry.attempt,
                )
                return (
                    "error",
                    {
                        "type": "WorkerStalledError",
                        "message": (
                            f"no heartbeat for {stalled_for:.1f}s "
                            "(no-progress deadline "
                            f"{self.watchdog.no_progress_timeout:g}s)"
                        ),
                        "transient": True,
                    },
                )
        if live.deadline is not None and now >= live.deadline:
            self._kill(live.process)
            return (
                "error",
                {
                    "type": "JobTimeoutError",
                    "message": f"timed out after {self.timeout:g}s",
                    "transient": True,
                },
            )
        return None

    def _crash_outcome(self, live: _Running):
        exitcode = live.process.exitcode
        return (
            "error",
            {
                "type": "WorkerCrashError",
                "message": (
                    f"worker died without a result (exit code {exitcode})"
                ),
                "transient": True,
            },
        )

    def _settle(self, live, outcome, pending, report, progress) -> None:
        self._close(live.conn)
        entry = live.entry
        duration = time.monotonic() - live.started
        kind, payload = outcome
        if kind == "ok":
            result = JobResult(
                entry.job, "ok", result=payload,
                attempts=entry.attempt, duration=duration,
                backoff_total=entry.backoff_total, crashes=entry.crashes,
            )
        else:
            failure = JobFailure(
                error_type=str(payload.get("type", "Exception")),
                message=str(payload.get("message", "")),
                transient=bool(payload.get("transient", False)),
            )
            if failure.error_type in _WORKER_LOSS_TYPES:
                entry.crashes += 1
            if self.quarantine.is_poison(entry.crashes):
                failure = JobFailure(
                    error_type="PoisonJobError",
                    message=(
                        f"quarantined: killed its worker {entry.crashes} "
                        f"time(s), last as {failure.error_type}: "
                        f"{failure.message}"
                    ),
                    transient=False,
                    poison=True,
                )
                self._emit(
                    "quarantine",
                    entry.job.label,
                    crashes=entry.crashes,
                    attempts=entry.attempt,
                )
            elif self.retry.should_retry(entry.attempt, failure.transient):
                delay = self.retry.delay(entry.attempt, self._rng)
                self._emit(
                    "retry",
                    entry.job.label,
                    attempt=entry.attempt,
                    delay=round(delay, 3),
                    error=failure.error_type,
                )
                pending.append(
                    _Attempt(
                        entry.job,
                        entry.attempt + 1,
                        time.monotonic() + delay,
                        entry.backoff_total + delay,
                        entry.crashes,
                    )
                )
                return  # not terminal yet: no record, no report entry
            result = JobResult(
                entry.job, "failed", failure=failure,
                attempts=entry.attempt, duration=duration,
                backoff_total=entry.backoff_total, crashes=entry.crashes,
            )
        report.results[entry.job.key()] = result
        self._record(result, entry, report)
        if progress is not None:
            progress(result)
        if self.fault_plan is not None and self.fault_plan.abort_after(
            entry.job, entry.attempt
        ):
            self._emit("abort", entry.job.label, attempt=entry.attempt)
            raise SweepInterrupted(
                f"fault injection: abort after {entry.job.label} "
                "(journal holds the completed prefix; --resume continues)"
            )

    def _record(self, result: JobResult, entry, report) -> None:
        """Journal one terminal outcome; a failed write degrades."""
        if self.checkpoint is None:
            return
        mutate = None
        if self.fault_plan is not None:
            spec = self.fault_plan.journal_fault(entry.job, entry.attempt)
            if spec is not None:
                self._emit(
                    "fault",
                    entry.job.label,
                    kind=spec.kind,
                    attempt=entry.attempt,
                )
                mutate = journal_mutator(spec)
        try:
            self.checkpoint.record(result, mutate=mutate)
        except CheckpointError as error:
            # a full disk must not abort a week of sweep: the result
            # stays in the report, the cell re-runs on resume
            report.journal_errors += 1
            self._emit(
                "journal-error", entry.job.label, error=str(error)
            )
            warnings.warn(
                f"checkpoint write failed for {entry.job.label} "
                f"({error}); continuing — this cell will re-run on resume"
            )

    def _emit(self, event: str, name: Optional[str], **args) -> None:
        """Mirror an engine event into the attached tracer (if any)."""
        if self.tracer is None:
            return
        try:
            self.tracer.emit(
                round(time.monotonic() - self._t0, 6),
                event,
                name,
                None,
                None,
                args or None,
            )
        except Exception:
            pass  # telemetry must never take down a sweep

    # -- process plumbing --------------------------------------------------

    @staticmethod
    def _kill(process) -> None:
        try:
            if process.is_alive():
                process.terminate()
                process.join(0.5)
            if process.is_alive():
                process.kill()
                process.join(5)
        except (OSError, ValueError, AttributeError):
            pass

    @staticmethod
    def _close(conn) -> None:
        try:
            conn.close()
        except Exception:
            pass
