"""Worker-process entry points.

These run on the child side of the engine's process pool, so everything
here must be importable by qualified name (picklable).  The shim is the
crash barrier: whatever the simulation does — raise, return something
unpicklable, even ``os._exit`` — the parent either receives a structured
``("ok", result)`` / ``("error", info)`` message or observes the process
sentinel and records a worker crash.  Nothing a job does can take down
the sweep.

When the executor runs under a watchdog, the shim also starts a daemon
heartbeat thread (``("heartbeat", {...})`` messages over the same pipe,
serialized by a lock) so the parent can tell a slow worker from a wedged
one; and when a fault plan targets this launch, the shim *is* the
delivery mechanism — the injected crash/hang/slow-start happens inside
the real worker process, exercising exactly the code paths a genuine
failure would.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import sys
import threading
import time
from typing import Any, Dict, Optional

from repro.errors import is_transient
from repro.experiments.engine.faults import (
    FaultSpec,
    Unpicklable,
    apply_worker_fault,
)
from repro.experiments.engine.job import Job, snapshot_metrics
from repro.experiments.engine.supervise import start_heartbeat


def default_worker(job: Job) -> Any:
    """Run one (benchmark, mechanism) simulation; the engine's default.

    When the job carries a ``telemetry_dir``, the run records the
    per-interval series and persists it beside the sweep's checkpoint
    journal (one ``<benchmark>-<mechanism>-<input_set>.series.jsonl``
    per cell — the path is deterministic via
    :func:`repro.telemetry.series_path`, so exporters can recompute it).
    """
    from repro.experiments.runner import run_benchmark

    if hasattr(job.config, "validate"):
        job.config.validate()
    telemetry = None
    if job.telemetry_dir:
        from repro.telemetry import Telemetry, TelemetryConfig

        telemetry = Telemetry(TelemetryConfig(series=True, trace=False))
    result = run_benchmark(
        job.benchmark,
        job.mechanism,
        job.config,
        input_set=job.input_set,
        profile_input=job.profile_input,
        telemetry=telemetry,
    )
    if telemetry is not None:
        from pathlib import Path

        from repro.telemetry import series_path, write_series_jsonl

        Path(job.telemetry_dir).mkdir(parents=True, exist_ok=True)
        path = series_path(
            job.telemetry_dir, job.benchmark, job.mechanism, job.input_set
        )
        write_series_jsonl(telemetry, path)
    return result


def error_info(error: BaseException) -> Dict[str, Any]:
    """JSON-safe description of an exception (never raises)."""
    try:
        message = str(error)
    except Exception:
        message = "<unprintable exception>"
    return {
        "type": type(error).__name__,
        "message": message,
        "transient": is_transient(error),
    }


def worker_shim(
    conn,
    worker,
    job: Job,
    fault=None,
    heartbeat_interval: Optional[float] = None,
) -> None:
    """Child-process main: run *worker* on *job*, report over *conn*.

    *fault* is an injected :class:`~repro.experiments.engine.faults.
    FaultSpec` for this launch (None in production);
    *heartbeat_interval* > 0 starts the watchdog heartbeat thread.
    """
    lock = threading.Lock()
    stop_heartbeat = threading.Event()
    if heartbeat_interval:
        stop_heartbeat = start_heartbeat(conn, lock, heartbeat_interval)
    try:
        try:
            if fault is not None:
                apply_worker_fault(fault, stop_heartbeat)
            result = worker(job)
            if fault is not None and fault.kind == "unpicklable":
                result = Unpicklable()
        except BaseException as error:  # the barrier: report, don't escape
            _send(conn, ("error", error_info(error)), lock, stop_heartbeat)
            return
        try:
            with lock:
                stop_heartbeat.set()  # no beats may trail the result
                conn.send(("ok", result))
        except Exception as error:  # unpicklable / oversized result
            _send(
                conn,
                (
                    "error",
                    {
                        "type": "JobError",
                        "message": f"result not transferable: {error}",
                        "transient": False,
                    },
                ),
                lock,
                stop_heartbeat,
            )
    finally:
        stop_heartbeat.set()
        try:
            conn.close()
        except Exception:
            pass


def _send(conn, message, lock=None, stop_heartbeat=None) -> None:
    """Best-effort send; a dead parent pipe is not worth crashing over."""
    try:
        if lock is None:
            conn.send(message)
            return
        with lock:
            if stop_heartbeat is not None:
                stop_heartbeat.set()
            conn.send(message)
    except Exception:
        pass


# -- stdio serving (subprocess/remote backends) ------------------------------
#
# `repro worker --serve-stdio` turns this process into a persistent job
# server speaking line-delimited JSON on stdin/stdout: the child end of
# the subprocess backend's pipes, and (through ssh) of the remote
# backend's connections.  One request shape per line:
#
#     {"op": "ping", "id": N}
#     {"op": "run",  "id": N, "job": <submission>, "worker": "mod:qual",
#      "fault": <spec|null>, "heartbeat": <seconds|null>,
#      "telemetry_dir": <dir|null>}
#     {"op": "shutdown", "id": N}
#
# and responses `{"id": N, "event": "pong"|"heartbeat"|"outcome"|...}`.
# EOF on stdin ends the loop, so workers can never outlive the transport
# that spawned them.  Job identity crosses the wire as a *submission*
# (preset + config overrides, exactly the service's format) and the
# outcome echoes the recomputed job key — the parent rejects a mismatch,
# which catches version skew between dispatching and executing hosts.


def serve_stdio(stdin=None, stdout=None) -> int:
    """Serve jobs over stdin/stdout until EOF or a shutdown request."""
    in_stream = stdin if stdin is not None else sys.stdin
    proto_out = stdout if stdout is not None else sys.stdout
    if stdout is None:
        # stray prints from simulation code must not corrupt the
        # protocol stream — they go to stderr with everything else
        sys.stdout = sys.stderr
    lock = threading.Lock()

    def write_line(payload: Dict[str, Any]) -> bool:
        try:
            proto_out.write(
                json.dumps(payload, sort_keys=True, default=repr) + "\n"
            )
            proto_out.flush()
            return True
        except Exception:
            return False  # parent went away; the loop will see EOF

    def send(payload: Dict[str, Any]) -> bool:
        with lock:
            return write_line(payload)

    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except ValueError as error:
            send({"event": "error", "error": f"bad request line: {error}"})
            continue
        if not isinstance(request, dict):
            send({"event": "error", "error": "request must be a JSON object"})
            continue
        op = request.get("op")
        rid = request.get("id")
        if op == "ping":
            send(
                {
                    "event": "pong",
                    "id": rid,
                    "pid": os.getpid(),
                    "host": socket.gethostname(),
                    "python": platform.python_version(),
                }
            )
        elif op == "shutdown":
            send({"event": "bye", "id": rid})
            return 0
        elif op == "run":
            _serve_one(request, write_line, lock)
        else:
            send({"event": "error", "id": rid, "error": f"unknown op {op!r}"})
    return 0


def _serve_one(request: Dict[str, Any], write_line, lock) -> None:
    """Run one stdio job request; mirrors :func:`worker_shim` exactly.

    The same fault-delivery, heartbeat-locking, and untransferable-result
    semantics as the fork-pool shim, so an attempt behaves identically
    whichever transport carried it.
    """
    rid = request.get("id")
    stop = threading.Event()

    def emit(payload: Dict[str, Any], final: bool = False) -> bool:
        with lock:
            if final:
                stop.set()  # no beats may trail the outcome
            elif stop.is_set():
                return False
            return write_line(payload)

    started = time.monotonic()
    try:
        from repro.experiments.engine.backends.base import resolve_worker
        from repro.service.protocol import job_from_submission

        job = job_from_submission(
            request["job"], telemetry_dir=request.get("telemetry_dir")
        )
        worker = resolve_worker(request.get("worker"))
        fault = None
        if request.get("fault") is not None:
            fault = FaultSpec.from_dict(request["fault"])
        interval = request.get("heartbeat")
        if interval:

            def beat_loop() -> None:
                seq = 0
                while not stop.wait(float(interval)):
                    seq += 1
                    if not emit(
                        {"id": rid, "event": "heartbeat", "seq": seq}
                    ):
                        return

            threading.Thread(
                target=beat_loop, name="repro-heartbeat", daemon=True
            ).start()
        if fault is not None:
            apply_worker_fault(fault, stop)
        result = worker(job)
        if fault is not None and fault.kind == "unpicklable":
            # same terminal failure the fork shim reports when pickling
            # the poisoned result fails
            emit(
                {
                    "id": rid,
                    "event": "outcome",
                    "status": "error",
                    "error": {
                        "type": "JobError",
                        "message": (
                            "result not transferable: "
                            "injected: result not picklable"
                        ),
                        "transient": False,
                    },
                },
                final=True,
            )
            return
        emit(
            {
                "id": rid,
                "event": "outcome",
                "status": "ok",
                "key": job.key(),
                "metrics": snapshot_metrics(result),
                "duration": round(time.monotonic() - started, 6),
            },
            final=True,
        )
    except BaseException as error:  # the barrier: report, don't escape
        emit(
            {
                "id": rid,
                "event": "outcome",
                "status": "error",
                "error": error_info(error),
            },
            final=True,
        )
    finally:
        stop.set()
