"""Worker-process entry points.

These run on the child side of the engine's process pool, so everything
here must be importable by qualified name (picklable).  The shim is the
crash barrier: whatever the simulation does — raise, return something
unpicklable, even ``os._exit`` — the parent either receives a structured
``("ok", result)`` / ``("error", info)`` message or observes the process
sentinel and records a worker crash.  Nothing a job does can take down
the sweep.

When the executor runs under a watchdog, the shim also starts a daemon
heartbeat thread (``("heartbeat", {...})`` messages over the same pipe,
serialized by a lock) so the parent can tell a slow worker from a wedged
one; and when a fault plan targets this launch, the shim *is* the
delivery mechanism — the injected crash/hang/slow-start happens inside
the real worker process, exercising exactly the code paths a genuine
failure would.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from repro.errors import is_transient
from repro.experiments.engine.faults import (
    Unpicklable,
    apply_worker_fault,
)
from repro.experiments.engine.job import Job
from repro.experiments.engine.supervise import start_heartbeat


def default_worker(job: Job) -> Any:
    """Run one (benchmark, mechanism) simulation; the engine's default.

    When the job carries a ``telemetry_dir``, the run records the
    per-interval series and persists it beside the sweep's checkpoint
    journal (one ``<benchmark>-<mechanism>-<input_set>.series.jsonl``
    per cell — the path is deterministic via
    :func:`repro.telemetry.series_path`, so exporters can recompute it).
    """
    from repro.experiments.runner import run_benchmark

    if hasattr(job.config, "validate"):
        job.config.validate()
    telemetry = None
    if job.telemetry_dir:
        from repro.telemetry import Telemetry, TelemetryConfig

        telemetry = Telemetry(TelemetryConfig(series=True, trace=False))
    result = run_benchmark(
        job.benchmark,
        job.mechanism,
        job.config,
        input_set=job.input_set,
        profile_input=job.profile_input,
        telemetry=telemetry,
    )
    if telemetry is not None:
        from pathlib import Path

        from repro.telemetry import series_path, write_series_jsonl

        Path(job.telemetry_dir).mkdir(parents=True, exist_ok=True)
        path = series_path(
            job.telemetry_dir, job.benchmark, job.mechanism, job.input_set
        )
        write_series_jsonl(telemetry, path)
    return result


def error_info(error: BaseException) -> Dict[str, Any]:
    """JSON-safe description of an exception (never raises)."""
    try:
        message = str(error)
    except Exception:
        message = "<unprintable exception>"
    return {
        "type": type(error).__name__,
        "message": message,
        "transient": is_transient(error),
    }


def worker_shim(
    conn,
    worker,
    job: Job,
    fault=None,
    heartbeat_interval: Optional[float] = None,
) -> None:
    """Child-process main: run *worker* on *job*, report over *conn*.

    *fault* is an injected :class:`~repro.experiments.engine.faults.
    FaultSpec` for this launch (None in production);
    *heartbeat_interval* > 0 starts the watchdog heartbeat thread.
    """
    lock = threading.Lock()
    stop_heartbeat = threading.Event()
    if heartbeat_interval:
        stop_heartbeat = start_heartbeat(conn, lock, heartbeat_interval)
    try:
        try:
            if fault is not None:
                apply_worker_fault(fault, stop_heartbeat)
            result = worker(job)
            if fault is not None and fault.kind == "unpicklable":
                result = Unpicklable()
        except BaseException as error:  # the barrier: report, don't escape
            _send(conn, ("error", error_info(error)), lock, stop_heartbeat)
            return
        try:
            with lock:
                stop_heartbeat.set()  # no beats may trail the result
                conn.send(("ok", result))
        except Exception as error:  # unpicklable / oversized result
            _send(
                conn,
                (
                    "error",
                    {
                        "type": "JobError",
                        "message": f"result not transferable: {error}",
                        "transient": False,
                    },
                ),
                lock,
                stop_heartbeat,
            )
    finally:
        stop_heartbeat.set()
        try:
            conn.close()
        except Exception:
            pass


def _send(conn, message, lock=None, stop_heartbeat=None) -> None:
    """Best-effort send; a dead parent pipe is not worth crashing over."""
    try:
        if lock is None:
            conn.send(message)
            return
        with lock:
            if stop_heartbeat is not None:
                stop_heartbeat.set()
            conn.send(message)
    except Exception:
        pass
