"""Worker supervision: heartbeat watchdog and graceful signal drain.

Two supervision concerns the plain timeout cannot express:

* **Hung vs slow.**  A wall-clock timeout must be sized for the slowest
  legitimate job, so a worker that wedges in its first second still
  burns the whole budget.  With a :class:`WatchdogPolicy`, workers
  heartbeat over their result pipe (a daemon thread started by the
  shim); the executor kills a worker whose *last heartbeat* is older
  than ``no_progress_timeout`` — minutes-long jobs run undisturbed as
  long as they stay alive, a wedged one dies within seconds as a
  transient :class:`~repro.errors.WorkerStalledError`.

* **Graceful shutdown.**  :class:`GracefulDrain` converts the first
  SIGTERM/SIGINT into a drain request: the executor stops launching,
  lets in-flight workers settle (journaling each outcome), and returns
  an ``interrupted`` report — so a preempted sweep leaves a journal
  describing exactly the completed prefix and ``--resume`` continues
  from there.  A second signal escalates to the ordinary
  ``KeyboardInterrupt`` abort for users who really mean *now*.
"""

from __future__ import annotations

import signal
import threading
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class WatchdogPolicy:
    """When to consider a worker hung rather than slow."""

    #: kill a worker whose last heartbeat is older than this (seconds)
    no_progress_timeout: float = 10.0
    #: how often the worker's heartbeat thread beats; defaults to a
    #: quarter of the stall deadline so a kill needs ~4 missed beats
    heartbeat_interval: Optional[float] = None

    def __post_init__(self):
        if self.no_progress_timeout <= 0:
            raise ValueError(
                "no_progress_timeout must be positive, got "
                f"{self.no_progress_timeout}"
            )

    @property
    def interval(self) -> float:
        if self.heartbeat_interval is not None:
            return self.heartbeat_interval
        return max(0.01, self.no_progress_timeout / 4.0)


def start_heartbeat(conn, lock, interval: float):
    """Start the worker-side heartbeat thread; returns its stop event.

    Beats ``("heartbeat", {"seq": n})`` over *conn* every *interval*
    seconds until the stop event is set or the pipe dies.  Sends share
    *lock* with the shim's result send, because ``Connection.send`` is
    not thread-safe.  The thread is a daemon: a worker that finishes (or
    ``os._exit``\\ s) never waits on it.
    """
    stop = threading.Event()

    def beat() -> None:
        seq = 0
        while not stop.wait(interval):
            seq += 1
            try:
                with lock:
                    if stop.is_set():  # result already sent; go quiet
                        return
                    conn.send(("heartbeat", {"seq": seq}))
            except Exception:
                return  # parent went away; nothing left to prove

    thread = threading.Thread(
        target=beat, name="repro-heartbeat", daemon=True
    )
    thread.start()
    return stop


class GracefulDrain:
    """Context manager turning SIGTERM/SIGINT into a drain request."""

    SIGNALS = (signal.SIGTERM, signal.SIGINT)

    def __init__(self):
        self._event = threading.Event()
        self._previous = {}
        self._installed = False

    @property
    def requested(self) -> bool:
        return self._event.is_set()

    def request(self) -> None:
        """Programmatic drain (what the signal handler calls)."""
        self._event.set()

    def _handle(self, signum, frame) -> None:
        if self._event.is_set():  # second signal: abort for real
            raise KeyboardInterrupt
        self._event.set()

    def __enter__(self) -> "GracefulDrain":
        # signal handlers only install from the main thread; elsewhere
        # (tests, embedded use) drain still works via request()
        if threading.current_thread() is threading.main_thread():
            try:
                for signum in self.SIGNALS:
                    self._previous[signum] = signal.signal(
                        signum, self._handle
                    )
                self._installed = True
            except (ValueError, OSError):
                self._previous.clear()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._installed:
            for signum, handler in self._previous.items():
                try:
                    signal.signal(signum, handler)
                except (ValueError, OSError):
                    pass
            self._previous.clear()
            self._installed = False
