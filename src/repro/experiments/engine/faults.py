"""Deterministic fault injection for the execution engine.

A :class:`FaultPlan` is a list of :class:`FaultSpec` coordinates — *which
fault* fires at *which (job, attempt)* — plus the plumbing to deliver
them at the two places a sweep can break:

* **worker faults** (``crash``, ``hang``, ``slow-start``,
  ``unpicklable``) are resolved by the executor at launch time and
  shipped to :func:`~repro.experiments.engine.worker.worker_shim`, which
  applies them inside the child process — a crash really is
  ``os._exit``, a hang really stops heartbeating;
* **journal faults** (``torn-write``, ``corrupt-write``, ``enospc``) are
  applied by the checkpoint journal's write hook — the record line is
  truncated mid-byte, bit-flipped, or the write raises ``ENOSPC``;
* **``abort``** stops the scheduler loop right after the matching job is
  journaled, simulating ``kill -9`` at a deterministic point;
* **backend faults** (``connect-fail``, ``host-loss``,
  ``partitioned-ack``) are applied by the executor around the
  :class:`~repro.experiments.engine.backends.ExecutorBackend` protocol —
  a dispatch that never reaches a worker, a host killed mid-flight, a
  result whose acknowledgement the partition ate.  They attack the
  *transport*, so the same plan exercises local pools, subprocess pools,
  and remote hosts identically.

Every fault fires at most once per (fault, job, attempt) coordinate, so
a plan is idempotent within a run; plans serialize to JSON
(``sweep --inject-faults PLAN.json``) so any chaos failure reproduces
from one file.  :meth:`FaultPlan.generate` derives a plan from a seed
and a job list — same seed, same jobs, same faults, always.

The headline property this subsystem exists to enforce (see
``tests/test_chaos.py``): for every fault kind in :data:`FAULT_KINDS`, a
sweep broken by the fault and re-run with ``--resume`` converges to a
result set content-identical to an uninterrupted run.
"""

from __future__ import annotations

import errno
import json
import os
import random
import time
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.errors import FaultPlanError

PathLike = Union[str, Path]

#: faults applied inside the worker process
WORKER_FAULTS = ("crash", "hang", "slow-start", "unpicklable")
#: faults applied to the checkpoint journal write of the job's record
JOURNAL_FAULTS = ("torn-write", "corrupt-write", "enospc")
#: faults applied to the scheduler itself
ENGINE_FAULTS = ("abort",)
#: faults applied to the executor backend carrying the job: the dispatch
#: fails to reach a worker (``connect-fail``), the host dies mid-flight
#: (``host-loss``), or the result acknowledgement is lost to a partition
#: (``partitioned-ack``).  Delivered by the executor around the backend
#: protocol, so every backend — local pool included — is attackable.
BACKEND_FAULTS = ("connect-fail", "host-loss", "partitioned-ack")

#: the full catalog, in documentation order
FAULT_KINDS = WORKER_FAULTS + JOURNAL_FAULTS + ENGINE_FAULTS + BACKEND_FAULTS

#: exit code of an injected worker crash (distinctive in crash reports)
CRASH_EXIT_CODE = 70

#: how long an injected hang blocks (the watchdog/timeout must kill it
#: long before this; it only bounds a chaos test that misconfigures both)
_HANG_SECONDS = 600.0


@dataclass(frozen=True)
class FaultSpec:
    """One fault at one (job, attempt) coordinate.

    ``job`` selects targets: a job key, or an ``fnmatch`` pattern tested
    against the job's ``benchmark/mechanism`` label and its benchmark
    name (``"*"`` matches every job).  ``attempt`` is 1-based; ``0``
    matches every attempt — the way to make a job crash *reproducibly*
    and exercise poison quarantine.  ``arg`` is the kind-specific knob:
    seconds for ``slow-start``/``hang``, a byte offset for ``torn-write``
    and ``corrupt-write``, the exit code for ``crash``.
    """

    kind: str
    job: str = "*"
    attempt: int = 1
    arg: Optional[float] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; "
                f"catalog: {', '.join(FAULT_KINDS)}"
            )
        if self.attempt < 0:
            raise FaultPlanError(
                f"fault attempt must be >= 0, got {self.attempt}"
            )

    def matches(self, job, attempt: int) -> bool:
        if self.attempt not in (0, attempt):
            return False
        return (
            self.job == job.key()
            or fnmatch(job.label, self.job)
            or fnmatch(job.benchmark, self.job)
        )

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"kind": self.kind, "job": self.job}
        if self.attempt != 1:
            payload["attempt"] = self.attempt
        if self.arg is not None:
            payload["arg"] = self.arg
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        if not isinstance(payload, dict):
            raise FaultPlanError(
                f"fault entry must be an object, got {payload!r}"
            )
        unknown = set(payload) - {"kind", "job", "attempt", "arg"}
        if unknown:
            raise FaultPlanError(
                f"unknown fault fields: {', '.join(sorted(unknown))}"
            )
        try:
            return cls(
                kind=str(payload["kind"]),
                job=str(payload.get("job", "*")),
                attempt=int(payload.get("attempt", 1)),
                arg=(
                    None
                    if payload.get("arg") is None
                    else float(payload["arg"])
                ),
            )
        except KeyError as error:
            raise FaultPlanError(
                f"fault entry missing required field: {error}"
            ) from error
        except (TypeError, ValueError) as error:
            raise FaultPlanError(f"malformed fault entry: {error}") from error


class FaultPlan:
    """A deterministic schedule of faults for one sweep."""

    def __init__(self, faults: Iterable[FaultSpec] = ()):
        self.faults: List[FaultSpec] = list(faults)
        #: (fault index, job key, attempt) coordinates already fired
        self._fired: Set[Tuple[int, str, int]] = set()

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:
        return f"FaultPlan({self.faults!r})"

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        if not isinstance(payload, dict) or "faults" not in payload:
            raise FaultPlanError(
                'fault plan must be {"faults": [...]} '
                f"(got {type(payload).__name__})"
            )
        faults = payload["faults"]
        if not isinstance(faults, list):
            raise FaultPlanError('"faults" must be a list')
        return cls(FaultSpec.from_dict(entry) for entry in faults)

    @classmethod
    def load(cls, path: PathLike) -> "FaultPlan":
        try:
            payload = json.loads(Path(path).read_text())
        except OSError as error:
            raise FaultPlanError(
                f"cannot read fault plan {path}: {error}"
            ) from error
        except ValueError as error:
            raise FaultPlanError(
                f"{path}: fault plan is not valid JSON: {error}"
            ) from error
        return cls.from_dict(payload)

    def to_dict(self) -> Dict[str, object]:
        return {"faults": [fault.to_dict() for fault in self.faults]}

    def save(self, path: PathLike) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def generate(
        cls,
        jobs: Iterable,
        seed: int = 0,
        kinds: Iterable[str] = FAULT_KINDS,
        rate: float = 0.5,
    ) -> "FaultPlan":
        """A seed-deterministic plan over *jobs*.

        Each job independently draws whether it gets a fault
        (probability *rate*) and which kind, from ``random.Random(seed)``
        — the same seed and job list always produce the same plan, which
        is what makes a chaos-suite failure reproducible from its seed.
        Faults are pinned to job keys (not patterns), so the plan is
        stable under job-list reordering too.
        """
        kinds = list(kinds)
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise FaultPlanError(f"unknown fault kind {kind!r}")
        rng = random.Random(seed)
        faults = []
        for job in jobs:
            if rng.random() >= rate:
                continue
            faults.append(FaultSpec(kind=rng.choice(kinds), job=job.key()))
        return cls(faults)

    # -- resolution (executor side) ----------------------------------------

    def _take(self, job, attempt: int, kinds) -> Optional[FaultSpec]:
        for index, fault in enumerate(self.faults):
            if fault.kind not in kinds:
                continue
            coordinate = (index, job.key(), attempt)
            if coordinate in self._fired:
                continue
            if fault.matches(job, attempt):
                self._fired.add(coordinate)
                return fault
        return None

    def worker_fault(self, job, attempt: int) -> Optional[FaultSpec]:
        """The worker-side fault to ship with this launch, if any."""
        return self._take(job, attempt, WORKER_FAULTS)

    def journal_fault(self, job, attempt: int) -> Optional[FaultSpec]:
        """The journal-write fault for this job's record, if any."""
        return self._take(job, attempt, JOURNAL_FAULTS)

    def abort_after(self, job, attempt: int) -> bool:
        """Abort the sweep right after this job settles?"""
        return self._take(job, attempt, ENGINE_FAULTS) is not None

    def backend_fault(self, job, attempt: int) -> Optional[FaultSpec]:
        """The backend/transport fault for this launch, if any."""
        return self._take(job, attempt, BACKEND_FAULTS)


# -- delivery ---------------------------------------------------------------


def journal_mutator(spec: FaultSpec) -> Callable[[str], str]:
    """The checkpoint write hook implementing a journal fault.

    Returns a callable applied to the encoded record line just before it
    hits the file: ``torn-write`` truncates at a byte offset (default:
    mid-line, the classic power-loss shape), ``corrupt-write`` flips one
    byte in place (bit rot / concurrent-writer damage — the line *parses*
    as the wrong record unless checksummed, which is exactly what the
    CRC framing exists to catch), and ``enospc`` raises ``OSError`` as a
    full disk would.
    """
    if spec.kind == "torn-write":

        def torn(line: str) -> str:
            cut = int(spec.arg) if spec.arg is not None else len(line) // 2
            return line[: max(0, cut)]

        return torn
    if spec.kind == "corrupt-write":

        def corrupt(line: str) -> str:
            body = line.rstrip("\n")
            if not body:
                return line
            at = (
                int(spec.arg)
                if spec.arg is not None
                else len(body) // 2
            )
            at = min(max(0, at), len(body) - 1)
            flipped = chr((ord(body[at]) ^ 0x20) or 0x21)
            return body[:at] + flipped + body[at + 1:] + "\n"

        return corrupt
    if spec.kind == "enospc":

        def enospc(line: str) -> str:
            raise OSError(errno.ENOSPC, "injected: no space left on device")

        return enospc
    raise FaultPlanError(f"{spec.kind!r} is not a journal fault")


def apply_worker_fault(spec: FaultSpec, stop_heartbeat) -> None:
    """Apply a worker-side fault inside the child process (pre-worker).

    ``unpicklable`` is not handled here — it corrupts the *result*, so
    the shim applies it after the worker returns.
    """
    if spec.kind == "crash":
        os._exit(int(spec.arg) if spec.arg is not None else CRASH_EXIT_CODE)
    elif spec.kind == "hang":
        # a real wedge: the heartbeat thread stops too, so the watchdog
        # (not just the wall-clock timeout) can tell this from slowness
        stop_heartbeat.set()
        time.sleep(spec.arg if spec.arg is not None else _HANG_SECONDS)
    elif spec.kind == "slow-start":
        # slow but alive: heartbeats keep flowing while we sleep
        time.sleep(spec.arg if spec.arg is not None else 0.5)


class Unpicklable:
    """A result poison-pill: survives construction, fails pickling."""

    def __reduce__(self):
        raise TypeError("injected: result not picklable")
