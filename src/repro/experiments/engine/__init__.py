"""Resilient experiment execution engine.

The paper's evaluation is a large (benchmark x mechanism x config) matrix;
this package executes that matrix the way a production sweep must run:

* each simulation runs crash-isolated in its own worker process — a hung
  workload, a segfaulting extension, or an unpicklable exception degrades
  to a recorded :class:`JobFailure`, never an aborted sweep;
* per-job wall-clock timeouts with a bounded exponential-backoff retry
  policy for transient failures;
* a JSONL checkpoint journal written after every job, so an interrupted
  sweep resumes with only the missing jobs (keyed by a content hash of
  the job's benchmark, mechanism, and full config);
* a :class:`SweepReport` that downstream reporting renders with explicit
  ``FAILED(reason)`` cells instead of crashing.

Quick tour::

    from repro.experiments.engine import (
        CheckpointJournal, ExecutionEngine, Job, RetryPolicy,
    )

    engine = ExecutionEngine(
        jobs=4, timeout=300.0, retry=RetryPolicy(max_attempts=3),
        checkpoint=CheckpointJournal.for_sweep("fig7"),
    )
    report = engine.run([Job("mst", "ecdp+throttle"), ...], resume=True)
    for failure in report.failures:
        print(failure.job.label, failure.failure.reason)
"""

from repro.experiments.engine.checkpoint import CheckpointJournal
from repro.experiments.engine.executor import ExecutionEngine, SweepReport
from repro.experiments.engine.job import (
    FailedResult,
    Job,
    JobFailure,
    JobResult,
    ResultSnapshot,
    is_failed,
    snapshot_metrics,
)
from repro.experiments.engine.retry import RetryPolicy
from repro.experiments.engine.worker import default_worker

__all__ = [
    "CheckpointJournal",
    "ExecutionEngine",
    "FailedResult",
    "Job",
    "JobFailure",
    "JobResult",
    "ResultSnapshot",
    "RetryPolicy",
    "SweepReport",
    "default_worker",
    "is_failed",
    "snapshot_metrics",
]
