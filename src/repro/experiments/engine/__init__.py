"""Resilient experiment execution engine.

The paper's evaluation is a large (benchmark x mechanism x config) matrix;
this package executes that matrix the way a production sweep must run:

* each simulation runs crash-isolated in its own worker process — a hung
  workload, a segfaulting extension, or an unpicklable exception degrades
  to a recorded :class:`JobFailure`, never an aborted sweep;
* per-job wall-clock timeouts with a bounded exponential-backoff retry
  policy for transient failures;
* a JSONL checkpoint journal written after every job, so an interrupted
  sweep resumes with only the missing jobs (keyed by a content hash of
  the job's benchmark, mechanism, and full config); records are
  CRC32-framed and a damaged journal — torn writes, mid-file bit rot —
  salvages instead of poisoning the resume;
* a heartbeat watchdog (:class:`WatchdogPolicy`) that tells hung workers
  from slow ones, poison-job quarantine (:class:`QuarantinePolicy`) for
  jobs that keep killing their worker, and graceful SIGTERM/SIGINT
  drain (:class:`GracefulDrain`) that checkpoints in-flight work;
* deterministic fault injection (:class:`FaultPlan`) to attack all of
  the above on purpose — the chaos suite proves every fault in the
  catalog converges back to a bit-identical result set under
  ``--resume``;
* a :class:`SweepReport` that downstream reporting renders with explicit
  ``FAILED(reason)`` cells instead of crashing.

Quick tour::

    from repro.experiments.engine import (
        CheckpointJournal, ExecutionEngine, Job, RetryPolicy,
    )

    engine = ExecutionEngine(
        jobs=4, timeout=300.0, retry=RetryPolicy(max_attempts=3),
        checkpoint=CheckpointJournal.for_sweep("fig7"),
    )
    report = engine.run([Job("mst", "ecdp+throttle"), ...], resume=True)
    for failure in report.failures:
        print(failure.job.label, failure.failure.reason)
"""

from repro.experiments.engine.backends import (
    BACKEND_NAMES,
    ExecutorBackend,
    HostSpec,
    LocalBackend,
    RemoteBackend,
    SubprocessBackend,
    create_backend,
    load_hosts,
)
from repro.experiments.engine.checkpoint import (
    CheckpointJournal,
    JournalSalvage,
    journal_record,
    record_content_hash,
)
from repro.experiments.engine.executor import ExecutionEngine, SweepReport
from repro.experiments.engine.faults import (
    BACKEND_FAULTS,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
)
from repro.experiments.engine.job import (
    IDENTITY_FIELDS,
    NON_IDENTITY_FIELDS,
    FailedResult,
    Job,
    JobFailure,
    JobResult,
    ResultSnapshot,
    identity_payload,
    is_failed,
    snapshot_metrics,
)
from repro.experiments.engine.retry import QuarantinePolicy, RetryPolicy
from repro.experiments.engine.supervise import GracefulDrain, WatchdogPolicy
from repro.experiments.engine.worker import default_worker

__all__ = [
    "BACKEND_FAULTS",
    "BACKEND_NAMES",
    "CheckpointJournal",
    "ExecutionEngine",
    "ExecutorBackend",
    "FAULT_KINDS",
    "HostSpec",
    "LocalBackend",
    "RemoteBackend",
    "SubprocessBackend",
    "create_backend",
    "load_hosts",
    "FailedResult",
    "FaultPlan",
    "FaultSpec",
    "GracefulDrain",
    "IDENTITY_FIELDS",
    "Job",
    "JobFailure",
    "JobResult",
    "JournalSalvage",
    "NON_IDENTITY_FIELDS",
    "QuarantinePolicy",
    "ResultSnapshot",
    "RetryPolicy",
    "SweepReport",
    "WatchdogPolicy",
    "default_worker",
    "identity_payload",
    "is_failed",
    "journal_record",
    "record_content_hash",
    "snapshot_metrics",
]
