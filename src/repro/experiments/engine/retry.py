"""Bounded retry policy with exponential backoff and jitter.

Only *transient* failures are retried (timeouts, worker loss, ``OSError``
— see :func:`repro.errors.is_transient`); permanent failures like
:class:`~repro.errors.ConfigError` fail fast on the first attempt.
Backoff doubles per attempt up to ``max_delay``, with multiplicative
jitter so a pool of retrying jobs doesn't stampede a shared resource
(trace file server, NFS mount, ...) in lockstep.

:class:`QuarantinePolicy` bounds a different axis: worker *deaths*.
Retry budgets reset on every resume, so a job that deterministically
crashes its worker would otherwise re-burn the full budget on each
``--resume`` of a long sweep, forever.  Once a job has crashed its
worker ``max_crashes`` times — counted across resumes via the journal's
``crashes`` field — it is poisoned: journaled FAILED with
:class:`~repro.errors.PoisonJobError` and excluded from resume retries
until explicitly re-admitted (``--retry-poisoned``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to attempt a job, and how long to wait between."""

    #: total attempts, including the first (1 = never retry)
    max_attempts: int = 3
    #: backoff before the second attempt, in seconds
    base_delay: float = 0.25
    #: backoff ceiling, in seconds
    max_delay: float = 8.0
    #: jitter fraction; the delay is scaled by [1, 1 + jitter)
    jitter: float = 0.25

    def should_retry(self, attempt: int, transient: bool) -> bool:
        """Retry after *attempt* attempts failing with a *transient* error?"""
        return transient and attempt < self.max_attempts

    def delay(self, attempt: int, rng: "random.Random" = None) -> float:
        """Seconds to wait before attempt ``attempt + 1``."""
        rng = rng or random
        backoff = min(
            self.max_delay, self.base_delay * (2 ** max(0, attempt - 1))
        )
        return backoff * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class QuarantinePolicy:
    """When a worker-killing job stops being worth another process."""

    #: worker deaths (crashes or watchdog kills) a job may cause, across
    #: resumes, before it is poisoned; 0 disables quarantine entirely
    max_crashes: int = 3

    def is_poison(self, crashes: int) -> bool:
        """Has this job spent its worker-death budget?"""
        return self.max_crashes > 0 and crashes >= self.max_crashes
