"""JSONL checkpoint journal: resume an interrupted sweep.

One JSON record per completed job, appended (single ``write`` + flush +
fsync, so a crash mid-sweep loses at most the in-flight line) to
``.repro-checkpoints/<sweep>.jsonl``.  Records are keyed by the job's
content hash, so resuming recognises completed work even across process
restarts and reordered job lists.

Integrity framing (v2): each line is ``{"crc": "<crc32 hex>", "data":
{...record...}}`` with the checksum taken over the canonical encoding of
``data``.  Loading salvages everything the damage spared: a torn or
bit-flipped line *anywhere* in the file — not just the trailing line a
mid-write kill produces — is skipped, counted, and reported in a
:class:`JournalSalvage`, never allowed to poison the resume.  Unframed
v1 lines (pre-CRC journals) still load, flagged as legacy.

``verify`` re-checks every line without touching the file; ``compact``
atomically rewrites the journal to one checksummed record per key (last
outcome wins), dropping damage and superseded retries.  Both are exposed
as ``repro journal`` subcommands.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import CheckpointError
from repro.experiments.engine.job import JobResult, snapshot_metrics

try:  # POSIX advisory locks for concurrent journal writers
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

PathLike = Union[str, Path]

#: default directory for sweep journals, relative to the working directory
DEFAULT_CHECKPOINT_DIR = ".repro-checkpoints"

#: record fields that legitimately differ between two runs of the same
#: job (wall-clock, retry history, which backend/host happened to run
#: it); everything else is *content* — the chaos convergence property
#: compares records with these removed, and it is exactly why the same
#: matrix run on different executor backends hashes identical
VOLATILE_FIELDS = (
    "duration",
    "attempts",
    "backoff_seconds",
    "crashes",
    "executor",
    "host",
    "queue_seconds",
)

#: cap on per-line diagnostics retained by a salvage report
_MAX_BAD_LINES = 32


def journal_record(outcome: JobResult) -> dict:
    """The JSON-safe journal record for one terminal job outcome.

    This is the one shape a settled job takes at rest: the journal
    appends it, resume replays it, and the service's result store serves
    it — so building it lives in exactly one place.
    """
    job = outcome.job
    record = {
        "key": job.key(),
        "benchmark": job.benchmark,
        "mechanism": job.mechanism,
        "input_set": job.input_set,
        "status": outcome.status,
        "attempts": outcome.attempts,
        "duration": round(outcome.duration, 6),
    }
    # throttling-policy provenance (identity-bearing: the config feeds
    # the job key wholesale).  Dict-shaped configs (older tests) and
    # pre-policy journals simply carry no policy columns -> exported
    # null, mirroring the executor/host provenance pattern.
    policy = getattr(job.config, "throttle_policy", None)
    if policy is not None:
        record["policy"] = policy
        record["policy_params"] = getattr(job.config, "policy_params", "")
    if outcome.backoff_total:
        record["backoff_seconds"] = round(outcome.backoff_total, 6)
    if outcome.crashes:
        record["crashes"] = outcome.crashes
    if outcome.ok:
        # execution provenance (volatile: never part of the content
        # hash) — recorded for successful runs only, so FAILED rows keep
        # nulls all the way to the export
        if outcome.executor is not None:
            record["executor"] = outcome.executor
        if outcome.host is not None:
            record["host"] = outcome.host
        if outcome.queue_seconds is not None:
            record["queue_seconds"] = round(outcome.queue_seconds, 6)
        record["metrics"] = snapshot_metrics(outcome.result)
    elif outcome.failure is not None:
        record["error"] = {
            "type": outcome.failure.error_type,
            "message": outcome.failure.message,
            "transient": outcome.failure.transient,
        }
        if outcome.failure.poison:
            record["error"]["poison"] = True
    return record


def _canonical(data: dict) -> bytes:
    """The byte string the CRC is computed over (stable across loads)."""
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), default=repr
    ).encode("utf-8")


def frame_record(data: dict) -> str:
    """Encode one journal line: CRC32-framed canonical JSON."""
    payload = _canonical(data)
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return '{"crc":"%08x","data":%s}\n' % (crc, payload.decode("utf-8"))


def record_content_hash(record: dict) -> str:
    """Content hash of a journal record, ignoring volatile fields.

    Two runs that produced the same outcome for the same job — whatever
    faults, retries, or resumes happened along the way — hash equal.
    This is the equality the chaos differential suite asserts.
    """
    content = {
        key: value
        for key, value in record.items()
        if key not in VOLATILE_FIELDS
    }
    return hashlib.sha256(_canonical(content)).hexdigest()[:16]


@dataclass
class JournalSalvage:
    """What a journal load found, kept, and had to skip."""

    lines: int = 0  #: non-blank lines examined
    records: int = 0  #: records accepted (framed + legacy)
    legacy: int = 0  #: accepted v1 lines with no checksum to verify
    corrupt: int = 0  #: undecodable lines skipped (torn writes, garbage)
    crc_mismatch: int = 0  #: framed lines whose checksum failed
    duplicates: int = 0  #: accepted records superseded by a later line
    #: line numbers of skipped lines (first _MAX_BAD_LINES)
    bad_lines: List[int] = field(default_factory=list)

    @property
    def skipped(self) -> int:
        return self.corrupt + self.crc_mismatch

    @property
    def clean(self) -> bool:
        return self.skipped == 0

    def note_bad(self, line_number: int) -> None:
        if len(self.bad_lines) < _MAX_BAD_LINES:
            self.bad_lines.append(line_number)

    def summary(self) -> str:
        parts = [f"{self.records} record(s)"]
        if self.legacy:
            parts.append(f"{self.legacy} legacy (unchecksummed)")
        if self.duplicates:
            parts.append(f"{self.duplicates} superseded")
        if self.corrupt:
            parts.append(f"{self.corrupt} corrupt skipped")
        if self.crc_mismatch:
            parts.append(f"{self.crc_mismatch} checksum-mismatch skipped")
        return ", ".join(parts)


class CheckpointJournal:
    """Append-only journal of job outcomes for one sweep."""

    def __init__(self, path: PathLike):
        self.path = Path(path)

    @classmethod
    def for_sweep(
        cls, name: str, directory: PathLike = DEFAULT_CHECKPOINT_DIR
    ) -> "CheckpointJournal":
        """Journal at ``<directory>/<sanitized name>.jsonl``."""
        slug = re.sub(r"[^A-Za-z0-9._+-]+", "_", name).strip("_") or "sweep"
        return cls(Path(directory) / f"{slug}.jsonl")

    def exists(self) -> bool:
        return self.path.exists()

    def clear(self) -> None:
        """Delete the journal (start the sweep from scratch)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        except OSError as error:
            raise CheckpointError(
                f"cannot clear checkpoint {self.path}: {error}"
            ) from error

    # -- reading -----------------------------------------------------------

    def _parse_line(
        self, line: str, line_number: int, salvage: JournalSalvage
    ) -> Optional[dict]:
        """One accepted record, or None (damage already counted)."""
        try:
            parsed = json.loads(line)
        except ValueError:
            salvage.corrupt += 1
            salvage.note_bad(line_number)
            return None
        if not isinstance(parsed, dict):
            salvage.corrupt += 1
            salvage.note_bad(line_number)
            return None
        if set(parsed) == {"crc", "data"}:  # v2 framed line
            data = self._verify_framed(parsed)
            if data is None:
                salvage.crc_mismatch += 1
                salvage.note_bad(line_number)
            return data
        if "key" in parsed:  # v1 legacy line: accepted, unverifiable
            salvage.legacy += 1
            return parsed
        salvage.corrupt += 1
        salvage.note_bad(line_number)
        return None

    @staticmethod
    def _salvage_tail(line: str) -> Optional[dict]:
        """Recover a framed record embedded after damage on one line.

        A torn write loses its newline too, so the *next* record — a
        perfectly good one — lands on the same physical line as the torn
        prefix.  Scan for a framed-record start past position 0 and
        verify it; the CRC makes a false positive vanishingly unlikely.
        """
        start = 0
        while True:
            start = line.find('{"crc":"', start + 1)
            if start < 0:
                return None
            candidate = line[start:]
            try:
                parsed = json.loads(candidate)
            except ValueError:
                continue
            if not isinstance(parsed, dict):
                continue
            data = CheckpointJournal._verify_framed(parsed)
            if data is not None:
                return data

    @staticmethod
    def _verify_framed(parsed: dict) -> Optional[dict]:
        """The verified ``data`` of a v2 framed object, else None."""
        if set(parsed) != {"crc", "data"}:
            return None
        data = parsed["data"]
        try:
            stated = int(str(parsed["crc"]), 16)
        except ValueError:
            return None
        if (
            isinstance(data, dict)
            and "key" in data
            and zlib.crc32(_canonical(data)) & 0xFFFFFFFF == stated
        ):
            return data
        return None

    def load_with_stats(self) -> Tuple[Dict[str, dict], JournalSalvage]:
        """(key -> last recorded outcome, salvage report).

        Never raises for damage *inside* the file: corrupt interior
        lines — not just the trailing torn write — are skipped, counted
        in the salvage report, and summarized in one warning.
        """
        salvage = JournalSalvage()
        if not self.path.exists():
            return {}, salvage
        try:
            raw = self.path.read_text(errors="replace")
        except OSError as error:
            raise CheckpointError(
                f"cannot read checkpoint {self.path}: {error}"
            ) from error
        records: Dict[str, dict] = {}
        for line_number, line in enumerate(raw.splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            salvage.lines += 1
            data = self._parse_line(line, line_number, salvage)
            if data is None:
                # a torn write eats its newline, merging the *next*
                # (intact) record onto this damaged line — dig it out
                data = self._salvage_tail(line)
                if data is None:
                    continue
            if data["key"] in records:
                salvage.duplicates += 1
            records[data["key"]] = data
            salvage.records += 1
        if not salvage.clean:
            where = ",".join(str(n) for n in salvage.bad_lines)
            warnings.warn(
                f"{self.path}: salvaged corrupt checkpoint journal "
                f"({salvage.summary()}; bad line(s) {where}) — skipped "
                "records will re-run on resume"
            )
        return records, salvage

    def load(self) -> Dict[str, dict]:
        """Map job key -> last recorded outcome; {} if no journal yet."""
        records, _ = self.load_with_stats()
        return records

    def verify(self) -> JournalSalvage:
        """Integrity-check every line without modifying anything."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            _, salvage = self.load_with_stats()
        return salvage

    # -- writing -----------------------------------------------------------

    def record(
        self,
        outcome: JobResult,
        mutate: Optional[Callable[[str], str]] = None,
    ) -> None:
        """Append one job outcome; atomic at line granularity.

        *mutate*, when given, is applied to the encoded line just before
        the write — the fault-injection hook (torn/corrupted/failing
        writes) that the chaos suite uses to attack this very format.

        Concurrent writers are safe: every record takes an exclusive
        ``flock`` on the journal for the single ``write`` + flush +
        fsync, so two engines (any backend mix) appending to one shared
        journal can interleave *records* but never tear them.  Each call
        opens a fresh descriptor, so the per-fd lock serializes threads
        and processes alike.
        """
        line = frame_record(journal_record(outcome))
        try:
            if mutate is not None:
                line = mutate(line)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a") as stream:
                if fcntl is not None:
                    fcntl.flock(stream.fileno(), fcntl.LOCK_EX)
                try:
                    stream.write(line)
                    stream.flush()
                    os.fsync(stream.fileno())
                finally:
                    if fcntl is not None:
                        fcntl.flock(stream.fileno(), fcntl.LOCK_UN)
        except OSError as error:
            raise CheckpointError(
                f"cannot write checkpoint {self.path}: {error}"
            ) from error

    def compact(self) -> Tuple[int, int, JournalSalvage]:
        """Atomically rewrite to one checksummed record per key.

        Returns ``(kept, dropped, salvage)`` where *dropped* counts the
        lines that did not survive — damage, superseded retries — and
        every surviving record is re-framed with a CRC (upgrading legacy
        v1 journals in place).  The rewrite goes through a temp file +
        ``os.replace``, so a crash mid-compaction leaves the original.
        """
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            records, salvage = self.load_with_stats()
        if not self.path.exists():
            return 0, 0, salvage
        try:
            handle, temp_name = tempfile.mkstemp(
                dir=str(self.path.parent), suffix=".compact"
            )
            with os.fdopen(handle, "w") as stream:
                for data in records.values():
                    stream.write(frame_record(data))
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(temp_name, self.path)
        except OSError as error:
            raise CheckpointError(
                f"cannot compact checkpoint {self.path}: {error}"
            ) from error
        # damaged frames + superseded retries are what the rewrite sheds;
        # physical line count undercounts when a torn line also yielded a
        # tail-salvaged record
        dropped = salvage.skipped + salvage.duplicates
        return len(records), dropped, salvage

    def content_hashes(self) -> Dict[str, str]:
        """key -> content hash of its surviving record (chaos equality)."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            records, _ = self.load_with_stats()
        return {
            key: record_content_hash(record)
            for key, record in records.items()
        }
