"""JSONL checkpoint journal: resume an interrupted sweep.

One JSON record per completed job, appended (single ``write`` + flush +
fsync, so a crash mid-sweep loses at most the in-flight line) to
``.repro-checkpoints/<sweep>.jsonl``.  Records are keyed by the job's
content hash, so resuming recognises completed work even across process
restarts and reordered job lists.  A corrupt trailing line — the telltale
of a sweep killed mid-write — is skipped with a warning rather than
poisoning the resume.
"""

from __future__ import annotations

import json
import os
import re
import warnings
from pathlib import Path
from typing import Dict, Union

from repro.errors import CheckpointError
from repro.experiments.engine.job import JobResult, snapshot_metrics

PathLike = Union[str, Path]

#: default directory for sweep journals, relative to the working directory
DEFAULT_CHECKPOINT_DIR = ".repro-checkpoints"


class CheckpointJournal:
    """Append-only journal of job outcomes for one sweep."""

    def __init__(self, path: PathLike):
        self.path = Path(path)

    @classmethod
    def for_sweep(
        cls, name: str, directory: PathLike = DEFAULT_CHECKPOINT_DIR
    ) -> "CheckpointJournal":
        """Journal at ``<directory>/<sanitized name>.jsonl``."""
        slug = re.sub(r"[^A-Za-z0-9._+-]+", "_", name).strip("_") or "sweep"
        return cls(Path(directory) / f"{slug}.jsonl")

    def exists(self) -> bool:
        return self.path.exists()

    def clear(self) -> None:
        """Delete the journal (start the sweep from scratch)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        except OSError as error:
            raise CheckpointError(
                f"cannot clear checkpoint {self.path}: {error}"
            ) from error

    def load(self) -> Dict[str, dict]:
        """Map job key -> last recorded outcome; {} if no journal yet."""
        if not self.path.exists():
            return {}
        records: Dict[str, dict] = {}
        try:
            raw = self.path.read_text()
        except OSError as error:
            raise CheckpointError(
                f"cannot read checkpoint {self.path}: {error}"
            ) from error
        for line_number, line in enumerate(raw.splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                key = record["key"]
            except (ValueError, KeyError, TypeError):
                warnings.warn(
                    f"{self.path}:{line_number}: skipping corrupt "
                    "checkpoint record (interrupted write?)"
                )
                continue
            records[key] = record
        return records

    def record(self, outcome: JobResult) -> None:
        """Append one job outcome; atomic at line granularity."""
        job = outcome.job
        record = {
            "key": job.key(),
            "benchmark": job.benchmark,
            "mechanism": job.mechanism,
            "input_set": job.input_set,
            "status": outcome.status,
            "attempts": outcome.attempts,
            "duration": round(outcome.duration, 6),
        }
        if outcome.ok:
            record["metrics"] = snapshot_metrics(outcome.result)
        elif outcome.failure is not None:
            record["error"] = {
                "type": outcome.failure.error_type,
                "message": outcome.failure.message,
                "transient": outcome.failure.transient,
            }
        line = json.dumps(record, sort_keys=True, default=repr) + "\n"
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a") as stream:
                stream.write(line)
                stream.flush()
                os.fsync(stream.fileno())
        except OSError as error:
            raise CheckpointError(
                f"cannot write checkpoint {self.path}: {error}"
            ) from error
