"""Metrics the paper reports: speedups, BPKI deltas, multi-core fairness.

* IPC delta (%) relative to the stream-prefetcher baseline (Table 6 row 1).
* BPKI delta (%) — bus accesses per kilo-instruction (Table 6 row 2).
* Geometric-mean speedup, with and without health (the paper reports both
  because health's gain is an outlier — its footnote 9).
* Weighted speedup [Snavely & Tullsen] and harmonic-mean speedup
  [Luo et al.] for multi-core mixes (Figures 14, 15).
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.core.stats import CoreResult


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; empty input -> 1.0 (identity speedup)."""
    if not values:
        return 1.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def ipc_delta_percent(result: CoreResult, baseline: CoreResult) -> float:
    """Speedup over baseline, expressed as a percentage gain."""
    return (result.ipc / baseline.ipc - 1.0) * 100.0


def bpki_delta_percent(result: CoreResult, baseline: CoreResult) -> float:
    """Change in bus traffic per kilo-instruction vs. baseline, in %."""
    if baseline.bpki == 0:
        return 0.0
    return (result.bpki / baseline.bpki - 1.0) * 100.0


def gmean_speedup(
    results: Dict[str, CoreResult],
    baselines: Dict[str, CoreResult],
    exclude: Sequence[str] = (),
) -> float:
    """Geometric-mean speedup across benchmarks (optionally excluding some)."""
    ratios = [
        results[name].ipc / baselines[name].ipc
        for name in results
        if name not in exclude
    ]
    return geomean(ratios)


def mean_bpki_delta(
    results: Dict[str, CoreResult],
    baselines: Dict[str, CoreResult],
    exclude: Sequence[str] = (),
) -> float:
    """Average BPKI change (%) across benchmarks."""
    deltas = [
        bpki_delta_percent(results[name], baselines[name])
        for name in results
        if name not in exclude
    ]
    return sum(deltas) / len(deltas) if deltas else 0.0


def weighted_speedup(
    shared: Sequence[CoreResult], alone: Sequence[CoreResult]
) -> float:
    """sum_i IPC_shared_i / IPC_alone_i (Snavely & Tullsen)."""
    if len(shared) != len(alone):
        raise ValueError("shared/alone result counts differ")
    return sum(s.ipc / a.ipc for s, a in zip(shared, alone))


def hmean_speedup(
    shared: Sequence[CoreResult], alone: Sequence[CoreResult]
) -> float:
    """Harmonic mean of per-benchmark speedups (Luo et al.)."""
    if len(shared) != len(alone):
        raise ValueError("shared/alone result counts differ")
    ratios = [s.ipc / a.ipc for s, a in zip(shared, alone)]
    if any(r <= 0 for r in ratios):
        return 0.0
    return len(ratios) / sum(1.0 / r for r in ratios)


def total_bus_traffic_per_ki(results: Sequence[CoreResult]) -> float:
    """System bus transfers per kilo-instruction across all cores."""
    transfers = sum(r.bus_transfers for r in results)
    retired = sum(r.retired_instructions for r in results)
    return transfers / (retired / 1000.0) if retired else 0.0
