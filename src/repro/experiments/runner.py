"""Experiment runner: assemble a system for a mechanism and run a workload.

This is the public top of the library: ``run_benchmark("mst",
"ecdp+throttle")`` performs the whole pipeline the paper describes —
profile the train input, derive hint vectors, build the machine, run the
measured input — and returns a :class:`~repro.core.stats.CoreResult`.

Results and profiles are memoized per (benchmark, mechanism, input set,
config), since the benchmark harness re-uses the same baselines across many
figures.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence

from repro.compiler.hints import CoarseLoadFilter, HintTable
from repro.errors import ConfigError
from repro.compiler.profiler import ProfilerConfig, profile_trace
from repro.core.config import ENGINES, SystemConfig
from repro.core.cpu import Core
from repro.core.fastcpu import FastCore
from repro.core.stats import CoreResult
from repro.core.system import MultiCoreSystem
from repro.dram.bus import MemoryBus
from repro.dram.controller import DramController
from repro.experiments.configs import Mechanism, get_mechanism
from repro.prefetch.avd import AvdPrefetcher
from repro.prefetch.cdp import ContentDirectedPrefetcher
from repro.prefetch.dbp import DependenceBasedPrefetcher
from repro.prefetch.filter_hw import HardwarePrefetchFilter
from repro.prefetch.ghb import GhbPrefetcher
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.pointer_cache import PointerCachePrefetcher
from repro.prefetch.stream import StreamPrefetcher
from repro.prefetch.stride import NextLinePrefetcher, StridePrefetcher
from repro.policy.registry import controller_for
from repro.throttle.fdp import FdpThrottle
from repro.throttle.gendler import GendlerSelector
from repro.workloads.base import WorkloadInstance
from repro.workloads.registry import get_workload

class LruCache:
    """Bounded least-recently-used map with hit/miss/eviction counters.

    The old module-level dict caches grew without bound — a long sweep
    over many configs would hold every profile and CoreResult it ever
    computed.  This keeps the memoization (baselines recur across
    figures) while bounding footprint and making behaviour observable.
    """

    def __init__(self, capacity: int = 128):
        if not isinstance(capacity, int) or capacity < 1:
            raise ConfigError(
                f"cache capacity must be a positive integer (got {capacity!r})"
            )
        self.capacity = capacity
        self._data: "OrderedDict" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key, default=None):
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def resize(self, capacity: int) -> None:
        """Change the bound, evicting LRU entries if shrinking."""
        if not isinstance(capacity, int) or capacity < 1:
            raise ConfigError(
                f"cache capacity must be a positive integer (got {capacity!r})"
            )
        self.capacity = capacity
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop entries and reset counters."""
        self._data.clear()
        self.hits = self.misses = self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._data),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


def _default_cache_capacity() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_CACHE_SIZE", "128")))
    except ValueError:
        return 128


_PROFILE_CACHE = LruCache(_default_cache_capacity())
_RESULT_CACHE = LruCache(_default_cache_capacity())


def clear_caches() -> None:
    """Drop memoized profiles and results (tests use this)."""
    _PROFILE_CACHE.clear()
    _RESULT_CACHE.clear()


def set_cache_capacity(capacity: int) -> None:
    """Re-bound both memoization caches (evicting LRU entries if needed)."""
    _PROFILE_CACHE.resize(capacity)
    _RESULT_CACHE.resize(capacity)


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/eviction counters for both memoization caches."""
    return {
        "profiles": _PROFILE_CACHE.stats,
        "results": _RESULT_CACHE.stats,
    }


def profiler_config(config: SystemConfig) -> ProfilerConfig:
    """The functional profiler mirrors the target machine's L2 and CDP."""
    return ProfilerConfig(
        l2_size=config.l2_size,
        l2_ways=config.l2_ways,
        block_size=config.block_size,
        compare_bits=config.cdp_compare_bits,
        max_recursion_depth=4,
    )


def profile_benchmark(
    benchmark: str,
    config: SystemConfig,
    input_set: str = "train",
):
    """Run the profiling compiler pass; returns a PointerGroupProfile."""
    key = ("profile", benchmark, input_set, config)
    cached = _PROFILE_CACHE.get(key)
    if cached is not None:
        return cached
    instance = get_workload(benchmark).build(input_set)
    profile = profile_trace(
        instance.memory, instance.trace(), profiler_config(config)
    )
    _PROFILE_CACHE.put(key, profile)
    return profile


def hint_filter_for(
    mechanism: Mechanism,
    benchmark: str,
    config: SystemConfig,
    profile_input: str = "train",
) -> Optional[Callable[[int, int], bool]]:
    """Build the CDP hint filter the mechanism calls for (None = greedy)."""
    if mechanism.hints == "none":
        return None
    profile = profile_benchmark(benchmark, config, profile_input)
    if mechanism.hints == "ecdp":
        return HintTable.from_profile(profile).allows
    if mechanism.hints in ("grp", "loadfilter"):
        return CoarseLoadFilter.from_profile(profile).allows
    raise ConfigError(f"unknown hint mode {mechanism.hints!r}")


def make_dram(config: SystemConfig, n_cores: int = 1) -> DramController:
    bus = MemoryBus(config.bus_bytes_per_cycle, config.bus_frequency_ratio)
    return DramController(
        n_banks=config.dram_banks,
        bank_occupancy=config.dram_bank_occupancy,
        controller_overhead=config.dram_controller_overhead,
        bus=bus,
        block_size=config.block_size,
        request_buffer_size=config.request_buffer_per_core * n_cores,
    )


#: engine name -> core implementation (always-importable engines only;
#: "batch" is resolved lazily in :func:`core_class_for` because its
#: module imports numpy, an optional dependency)
ENGINE_CLASSES = {"reference": Core, "fast": FastCore}


def core_class_for(config: SystemConfig):
    """The Core implementation selected by ``config.engine``."""
    if config.engine == "batch":
        try:
            from repro.core.batchcpu import BatchCore
        except ImportError:
            raise ConfigError(
                'engine "batch" requires numpy, which is not installed',
                fields={
                    "engine": (
                        'install the [perf] extra (pip install repro[perf]) '
                        'or select engine="fast"'
                    )
                },
            ) from None
        return BatchCore
    try:
        return ENGINE_CLASSES[config.engine]
    except KeyError:
        raise ConfigError(
            f"unknown engine {config.engine!r}; choose from {ENGINES}"
        ) from None


def build_core(
    mechanism: Mechanism,
    config: SystemConfig,
    instance: WorkloadInstance,
    dram: DramController,
    hint_filter: Optional[Callable[[int, int], bool]] = None,
    name: str = "core0",
    telemetry=None,
) -> Core:
    """Wire up one core with the mechanism's prefetchers and controller.

    ``telemetry`` is an optional :class:`repro.telemetry.CoreTelemetry`
    stream; it is installed *after* the throttling controller attaches so
    the interval recorder observes post-decision state.
    """
    core_cls = core_class_for(config)
    stream = (
        StreamPrefetcher(config.block_size, config.stream_count)
        if mechanism.stream
        else None
    )
    cdp = (
        ContentDirectedPrefetcher(
            config.block_size,
            compare_bits=config.cdp_compare_bits,
            hint_filter=hint_filter,
        )
        if mechanism.cdp
        else None
    )
    correlation = []
    value_observers = []
    dbp = None
    if mechanism.correlation == "markov":
        correlation.append(MarkovPrefetcher(config.block_size))
    elif mechanism.correlation == "ghb":
        correlation.append(GhbPrefetcher(config.block_size))
    elif mechanism.correlation == "dbp":
        dbp = DependenceBasedPrefetcher(config.block_size)
    elif mechanism.correlation == "pointer-cache":
        pointer_cache = PointerCachePrefetcher(config.block_size)
        correlation.append(pointer_cache)
        value_observers.append(pointer_cache)
    elif mechanism.correlation == "avd":
        avd = AvdPrefetcher(config.block_size)
        correlation.append(avd)
        value_observers.append(avd)
    elif mechanism.correlation == "stride":
        correlation.append(StridePrefetcher(config.block_size))
    elif mechanism.correlation == "nextline":
        correlation.append(NextLinePrefetcher(config.block_size))
    elif mechanism.correlation != "none":
        raise ConfigError(
            f"unknown correlation prefetcher {mechanism.correlation!r}"
        )
    hw_filter = HardwarePrefetchFilter() if mechanism.hw_filter else None

    throttled = [p for p in (stream, cdp, *correlation, dbp) if p is not None]
    gendler = None
    if mechanism.throttle == "gendler":
        gendler = GendlerSelector(throttled)

    core = core_cls(
        config,
        instance.memory,
        dram,
        name=name,
        stream=stream,
        cdp=cdp,
        correlation_prefetchers=correlation,
        dbp=dbp,
        hw_filter=hw_filter,
        gendler=gendler,
        oracle_pcs=instance.lds_pcs if mechanism.oracle_lds else None,
        value_observers=value_observers,
        telemetry=telemetry,
    )

    if mechanism.throttle == "coordinated":
        # the pluggable policy seam (repro.policy): the config names the
        # controller; "table3" reproduces CoordinatedThrottle bit for bit
        # (tests/differential/test_policy.py).  controller_for returns
        # None when the policy needs more prefetchers than this core has
        # — the same "leave levels alone" outcome as before.
        controller = controller_for(throttled, config)
        if controller is not None:
            # getattr-guarded so the differential harness can swap in the
            # legacy CoordinatedThrottle (which has no install hook)
            install = getattr(controller, "install", None)
            if install is not None:
                install(core, dram)
            controller.attach(core.feedback)
    elif mechanism.throttle == "fdp":
        FdpThrottle(throttled).attach(core.feedback)
    elif mechanism.throttle == "gendler":
        gendler.attach(core.feedback)
    elif mechanism.throttle != "none":
        raise ConfigError(f"unknown throttle mode {mechanism.throttle!r}")
    if telemetry is not None:
        telemetry.install(core, dram)
    return core


def run_benchmark(
    benchmark: str,
    mechanism: str,
    config: Optional[SystemConfig] = None,
    input_set: str = "ref",
    profile_input: str = "train",
    use_cache: bool = True,
    telemetry=None,
) -> CoreResult:
    """Run one benchmark under one mechanism on a single core.

    With a :class:`repro.telemetry.Telemetry` session, the run records
    into the session's ``core0`` stream, and the result cache is
    bypassed (a memoized result would carry no recordings).
    """
    config = config or SystemConfig.scaled()
    mech = get_mechanism(mechanism)
    key = (benchmark, mechanism, input_set, profile_input, config)
    if telemetry is not None:
        use_cache = False
    if use_cache:
        cached = _RESULT_CACHE.get(key)
        if cached is not None:
            return cached
    hint_filter = hint_filter_for(mech, benchmark, config, profile_input)
    instance = get_workload(benchmark).build(input_set)
    dram = make_dram(config, n_cores=1)
    stream_telemetry = (
        telemetry.stream("core0") if telemetry is not None else None
    )
    core = build_core(
        mech, config, instance, dram, hint_filter, telemetry=stream_telemetry
    )
    result = core.run(instance.trace())
    if use_cache:
        _RESULT_CACHE.put(key, result)
    return result


def run_multicore(
    benchmarks: Sequence[str],
    mechanism: str,
    config: Optional[SystemConfig] = None,
    input_set: str = "ref",
    profile_input: str = "train",
    telemetry=None,
) -> List[CoreResult]:
    """Run a multiprogrammed mix, one benchmark per core, shared DRAM.

    With a :class:`repro.telemetry.Telemetry` session, core *i* records
    into the session's ``core<i>`` stream — streams stay disjoint even
    though the cores share one DRAM controller.
    """
    config = config or SystemConfig.scaled()
    mech = get_mechanism(mechanism)
    dram = make_dram(config, n_cores=len(benchmarks))
    cores = []
    traces = []
    for index, benchmark in enumerate(benchmarks):
        hint_filter = hint_filter_for(mech, benchmark, config, profile_input)
        instance = get_workload(benchmark).build(input_set)
        name = f"core{index}"
        stream_telemetry = (
            telemetry.stream(name) if telemetry is not None else None
        )
        core = build_core(
            mech, config, instance, dram, hint_filter, name=name,
            telemetry=stream_telemetry,
        )
        cores.append(core)
        traces.append(instance.trace())
    return MultiCoreSystem(cores).run(traces)
