"""High-level experiment suites shared by the benchmark harness.

Each figure's bench file composes these: run a mechanism sweep over the
pointer-intensive set (memoized across figures, since e.g. the baseline and
ecdp+throttle runs appear in Figures 7, 8, 9, 11, 12 and 13), then reduce
to the paper's reported rows.

Two execution paths:

* the default in-process path (memoized inside the runner) — what the
  bench harness uses;
* pass an :class:`~repro.experiments.engine.ExecutionEngine` to run the
  matrix crash-isolated with timeouts, retries, and checkpoint-resume.
  Failed cells come back as :class:`FailedResult` placeholders, and every
  reduction below degrades gracefully — figures render with explicit
  ``FAILED(reason)`` cells instead of crashing the whole report.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.core.stats import CoreResult
from repro.experiments.engine import FailedResult, Job, is_failed
from repro.experiments.metrics import (
    bpki_delta_percent,
    gmean_speedup,
    ipc_delta_percent,
    mean_bpki_delta,
)
from repro.experiments.runner import run_benchmark
from repro.workloads.registry import pointer_intensive_names

#: the benchmark the paper reports averages with and without (footnote 9)
OUTLIER = "health"


def sweep(
    mechanisms: Sequence[str],
    benchmarks: Optional[Sequence[str]] = None,
    config: Optional[SystemConfig] = None,
    engine=None,
    resume: bool = False,
    input_set: str = "ref",
) -> Dict[str, Dict[str, CoreResult]]:
    """Run every (mechanism, benchmark) pair.

    Without *engine*: in-process and memoized inside the runner; any
    failure raises, as before.  With an
    :class:`~repro.experiments.engine.ExecutionEngine`: crash-isolated
    parallel execution, and failed cells are
    :class:`~repro.experiments.engine.FailedResult` placeholders.
    """
    config = config or SystemConfig.scaled()
    benchmarks = list(benchmarks or pointer_intensive_names())
    if engine is None:
        return {
            mechanism: {
                benchmark: run_benchmark(
                    benchmark, mechanism, config, input_set=input_set
                )
                for benchmark in benchmarks
            }
            for mechanism in mechanisms
        }
    jobs = [
        Job(benchmark, mechanism, config, input_set=input_set)
        for mechanism in mechanisms
        for benchmark in benchmarks
    ]
    cells = engine.run(jobs, resume=resume).by_cell()
    table: Dict[str, Dict[str, CoreResult]] = {}
    for mechanism in mechanisms:
        row = {}
        for benchmark in benchmarks:
            outcome = cells[(benchmark, mechanism)]
            row[benchmark] = (
                outcome.result if outcome.ok else FailedResult(outcome.failure)
            )
        table[mechanism] = row
    return table


def delta_rows(
    results: Dict[str, CoreResult],
    baselines: Dict[str, CoreResult],
) -> List[Tuple[str, object, object]]:
    """(benchmark, IPC delta %, BPKI delta %) rows in benchmark order.

    A failed run (or failed baseline) yields its ``FailedResult`` in both
    delta columns, which reporting renders as ``FAILED(reason)``.
    """
    rows: List[Tuple[str, object, object]] = []
    for name in results:
        result = results[name]
        baseline = baselines.get(name)
        if is_failed(result) or is_failed(baseline):
            marker = result if is_failed(result) else baseline
            rows.append((name, marker, marker))
        else:
            rows.append(
                (
                    name,
                    ipc_delta_percent(result, baseline),
                    bpki_delta_percent(result, baseline),
                )
            )
    return rows


def _ok_pairs(
    results: Dict[str, CoreResult],
    baselines: Dict[str, CoreResult],
) -> Tuple[Dict[str, CoreResult], Dict[str, CoreResult]]:
    """Restrict both maps to benchmarks where both runs succeeded."""
    names = [
        name
        for name in results
        if not is_failed(results[name]) and not is_failed(baselines.get(name))
    ]
    return (
        {name: results[name] for name in names},
        {name: baselines[name] for name in names},
    )


def summary_line(
    results: Dict[str, CoreResult],
    baselines: Dict[str, CoreResult],
) -> Dict[str, float]:
    """The paper's four headline aggregates (with / without health).

    Failed benchmarks are excluded from the aggregates (the per-benchmark
    rows still show them as FAILED cells).
    """
    results, baselines = _ok_pairs(results, baselines)
    return {
        "gmean_ipc_pct": (gmean_speedup(results, baselines) - 1.0) * 100.0,
        "gmean_ipc_pct_no_health": (
            gmean_speedup(results, baselines, exclude=(OUTLIER,)) - 1.0
        )
        * 100.0,
        "mean_bpki_pct": mean_bpki_delta(results, baselines),
        "mean_bpki_pct_no_health": mean_bpki_delta(
            results, baselines, exclude=(OUTLIER,)
        ),
    }


def accuracy_rows(
    per_mechanism: Dict[str, Dict[str, CoreResult]],
    owner: str,
) -> List[Tuple[str, List[object]]]:
    """Per-benchmark accuracy of prefetcher *owner* under each mechanism."""
    return _stat_rows(per_mechanism, owner, "accuracy")


def coverage_rows(
    per_mechanism: Dict[str, Dict[str, CoreResult]],
    owner: str,
) -> List[Tuple[str, List[object]]]:
    """Per-benchmark coverage of prefetcher *owner* under each mechanism."""
    return _stat_rows(per_mechanism, owner, "coverage")


def _stat_rows(per_mechanism, owner: str, stat: str):
    mechanisms = list(per_mechanism)
    benchmarks = list(next(iter(per_mechanism.values())))
    rows = []
    for benchmark in benchmarks:
        cells = []
        for mechanism in mechanisms:
            result = per_mechanism[mechanism][benchmark]
            if is_failed(result):
                cells.append(result)
            else:
                cells.append(getattr(result, stat)(owner))
        rows.append((benchmark, cells))
    return rows
