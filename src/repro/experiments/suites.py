"""High-level experiment suites shared by the benchmark harness.

Each figure's bench file composes these: run a mechanism sweep over the
pointer-intensive set (memoized across figures, since e.g. the baseline and
ecdp+throttle runs appear in Figures 7, 8, 9, 11, 12 and 13), then reduce
to the paper's reported rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.core.stats import CoreResult
from repro.experiments.metrics import (
    bpki_delta_percent,
    gmean_speedup,
    ipc_delta_percent,
    mean_bpki_delta,
)
from repro.experiments.runner import run_benchmark
from repro.workloads.registry import pointer_intensive_names

#: the benchmark the paper reports averages with and without (footnote 9)
OUTLIER = "health"


def sweep(
    mechanisms: Sequence[str],
    benchmarks: Optional[Sequence[str]] = None,
    config: Optional[SystemConfig] = None,
) -> Dict[str, Dict[str, CoreResult]]:
    """Run every (mechanism, benchmark) pair; memoized inside the runner."""
    config = config or SystemConfig.scaled()
    benchmarks = list(benchmarks or pointer_intensive_names())
    return {
        mechanism: {
            benchmark: run_benchmark(benchmark, mechanism, config)
            for benchmark in benchmarks
        }
        for mechanism in mechanisms
    }


def delta_rows(
    results: Dict[str, CoreResult],
    baselines: Dict[str, CoreResult],
) -> List[Tuple[str, float, float]]:
    """(benchmark, IPC delta %, BPKI delta %) rows in benchmark order."""
    return [
        (
            name,
            ipc_delta_percent(results[name], baselines[name]),
            bpki_delta_percent(results[name], baselines[name]),
        )
        for name in results
    ]


def summary_line(
    results: Dict[str, CoreResult],
    baselines: Dict[str, CoreResult],
) -> Dict[str, float]:
    """The paper's four headline aggregates (with / without health)."""
    return {
        "gmean_ipc_pct": (gmean_speedup(results, baselines) - 1.0) * 100.0,
        "gmean_ipc_pct_no_health": (
            gmean_speedup(results, baselines, exclude=(OUTLIER,)) - 1.0
        )
        * 100.0,
        "mean_bpki_pct": mean_bpki_delta(results, baselines),
        "mean_bpki_pct_no_health": mean_bpki_delta(
            results, baselines, exclude=(OUTLIER,)
        ),
    }


def accuracy_rows(
    per_mechanism: Dict[str, Dict[str, CoreResult]],
    owner: str,
) -> List[Tuple[str, List[float]]]:
    """Per-benchmark accuracy of prefetcher *owner* under each mechanism."""
    mechanisms = list(per_mechanism)
    benchmarks = list(next(iter(per_mechanism.values())))
    return [
        (
            benchmark,
            [
                per_mechanism[mechanism][benchmark].accuracy(owner)
                for mechanism in mechanisms
            ],
        )
        for benchmark in benchmarks
    ]


def coverage_rows(
    per_mechanism: Dict[str, Dict[str, CoreResult]],
    owner: str,
) -> List[Tuple[str, List[float]]]:
    """Per-benchmark coverage of prefetcher *owner* under each mechanism."""
    mechanisms = list(per_mechanism)
    benchmarks = list(next(iter(per_mechanism.values())))
    return [
        (
            benchmark,
            [
                per_mechanism[mechanism][benchmark].coverage(owner)
                for mechanism in mechanisms
            ],
        )
        for benchmark in benchmarks
    ]
