"""Export experiment results to JSON or CSV for external analysis.

The bench harness prints paper-shaped tables; this module serves users
who want the raw numbers — spreadsheets, notebooks, regression tracking
across library versions.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.core.stats import CoreResult
from repro.experiments.engine import is_failed

PathLike = Union[str, Path]

#: columns exported per (benchmark, mechanism) result
FIELDS = [
    "benchmark",
    "mechanism",
    "status",
    "ipc",
    "bpki",
    "retired_instructions",
    "cycles",
    "l2_demand_misses",
    "bus_transfers",
    "cdp_accuracy",
    "cdp_coverage",
    "stream_accuracy",
    "stream_coverage",
    "intervals_completed",
    "attempts",
    "backoff_seconds",
    "executor",
    "host",
    "queue_seconds",
    "error_type",
    "series_file",
    "policy",
    "policy_params",
]


def result_record(
    benchmark: str,
    mechanism: str,
    result: CoreResult,
    series_file: Union[str, None] = None,
    attempts: Union[int, None] = None,
    backoff_seconds: Union[float, None] = None,
    executor: Union[str, None] = None,
    host: Union[str, None] = None,
    queue_seconds: Union[float, None] = None,
    policy: Union[str, None] = None,
    policy_params: Union[str, None] = None,
) -> Dict:
    """Flatten one run's metrics into an export row.

    A failed run exports with ``status`` carrying the failure reason,
    ``error_type`` naming the exception class, and every metric column
    null, so downstream analysis sees the hole — and *how* it failed —
    explicitly instead of a silently missing row.

    ``attempts`` and ``backoff_seconds`` surface the engine's retry
    schedule (how many launches the cell took and how long backoff
    delayed it); they stay null for runs outside the sweep engine.

    ``executor``, ``host``, and ``queue_seconds`` are execution
    provenance: which backend ran the cell, on which host, and how long
    it sat queued for a free slot.  They stay null for runs outside the
    sweep engine, for journals written before backends existed, and —
    deliberately — for FAILED rows, where no attempt is *the* one that
    produced the cell.

    ``series_file`` optionally points at the per-interval telemetry
    series recorded for this cell (sweeps run with ``--telemetry``
    persist one file per cell beside the checkpoint journal); it stays
    null for runs without telemetry.

    ``policy`` and ``policy_params`` record which throttling policy
    (``repro.policy``) governed the run.  Unlike the provenance trio
    they are identity-bearing (part of the config, thus of the job's
    content hash); they stay null for journals written before policies
    existed.  Failed rows keep them — the policy was still part of what
    was asked for.
    """
    if is_failed(result):
        failure = getattr(result, "failure", None)
        reason = getattr(result, "reason", "unknown failure")
        record = {field: None for field in FIELDS}
        record.update(
            benchmark=benchmark, mechanism=mechanism,
            status=f"FAILED({reason})",
            error_type=getattr(failure, "error_type", None),
            attempts=attempts,
            backoff_seconds=backoff_seconds,
            policy=policy,
            policy_params=policy_params,
        )
        return record
    return {
        "benchmark": benchmark,
        "mechanism": mechanism,
        "status": "ok",
        "ipc": result.ipc,
        "bpki": result.bpki,
        "retired_instructions": result.retired_instructions,
        "cycles": result.cycles,
        "l2_demand_misses": result.l2_demand_misses,
        "bus_transfers": result.bus_transfers,
        "cdp_accuracy": result.accuracy("cdp"),
        "cdp_coverage": result.coverage("cdp"),
        "stream_accuracy": result.accuracy("stream"),
        "stream_coverage": result.coverage("stream"),
        "intervals_completed": getattr(result, "intervals_completed", None),
        "attempts": attempts,
        "backoff_seconds": backoff_seconds,
        "executor": executor,
        "host": host,
        "queue_seconds": queue_seconds,
        "error_type": None,
        "series_file": series_file,
        "policy": policy,
        "policy_params": policy_params,
    }


def sweep_records(
    per_mechanism: Dict[str, Dict[str, CoreResult]]
) -> List[Dict]:
    """Flatten a suites.sweep() result into export rows."""
    return [
        result_record(benchmark, mechanism, result)
        for mechanism, per_bench in per_mechanism.items()
        for benchmark, result in per_bench.items()
    ]


def write_json(path: PathLike, records: List[Dict]) -> None:
    """Write export rows as a JSON array."""
    with open(path, "w") as stream:
        json.dump(records, stream, indent=2)
        stream.write("\n")


def write_csv(path: PathLike, records: List[Dict]) -> None:
    """Write export rows as CSV with the standard column set."""
    with open(path, "w", newline="") as stream:
        writer = csv.DictWriter(stream, fieldnames=FIELDS)
        writer.writeheader()
        for record in records:
            writer.writerow(record)


def read_json(path: PathLike) -> List[Dict]:
    with open(path) as stream:
        return json.load(stream)
