"""Pointer cache (Collins, Sair, Calder, Tullsen — MICRO-35).

One of the storage-heavy LDS prefetchers the paper's Section 7.3 compares
against on cost (1.1 MB).  The structure maps *pointer locations* (the
addresses of pointer fields) to the pointer values last stored there; on
a demand load whose address hits the pointer cache, the cached value is
prefetched before the load's data even returns — breaking the
load-to-use serialization a plain cache hierarchy suffers.

Our implementation learns pointer locations from the value stream: any
load that returns a plausible virtual address registers (location ->
value).  Capacity is entries x (tag + value); the paper's sizing works
out to ~36 K entries for 1.1 MB.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from repro.memory.address import NULL_REGION_END, block_address
from repro.prefetch.base import Prefetcher, PrefetchRequest


class PointerCachePrefetcher(Prefetcher):
    """Location->value pointer cache with LRU replacement."""

    def __init__(
        self,
        block_size: int,
        n_entries: int = 16384,
        name: str = "pointer-cache",
    ) -> None:
        super().__init__(name)
        self.block_size = block_size
        self.n_entries = n_entries
        self._entries: "OrderedDict[int, int]" = OrderedDict()  # loc -> value

    def storage_bits(self) -> int:
        return self.n_entries * (32 + 32)  # tag + pointer value

    def on_load_value(self, now: float, pc: int, addr: int,
                      value: int) -> None:
        """Observe a retiring load; learn pointer locations."""
        if value < NULL_REGION_END:
            self._entries.pop(addr, None)  # location no longer a pointer
            return
        if addr in self._entries:
            self._entries.move_to_end(addr)
        elif len(self._entries) >= self.n_entries:
            self._entries.popitem(last=False)
        self._entries[addr] = value

    def on_demand_access(
        self, now: float, addr: int, pc: int, l2_hit: bool
    ) -> List[PrefetchRequest]:
        """A load to a known pointer location prefetches the cached value."""
        value = self._entries.get(addr)
        if value is None:
            return []
        self._entries.move_to_end(addr)
        return [
            PrefetchRequest(block_address(value, self.block_size), self.name)
        ]
