"""Dependence-based prefetching (Roth, Moshovos, Sohi, ASPLOS-8) —
baseline of paper Section 6.3.

DBP learns producer→consumer load dependences: a *producer* load fetches a
pointer, a *consumer* load later uses that pointer (plus a small field
offset) as its address.  A Potential Producer Window holds recent loaded
values; when a load's address matches one, the (producer PC, offset) pair
enters a correlation table.  From then on, whenever the producer load
retires a value, the predicted consumer address is prefetched.

The structural weakness the paper exploits: DBP can only run *one
dependence hop* ahead of execution, so with modern memory latencies the
prefetch rarely arrives early enough (paper Section 6.3, reason 4).  In our
timing model that emerges naturally — DBP's prefetch for node N+1 issues
when node N's load completes, saving at best the L2 lookup overlap.

Sizing per the paper: 256-entry correlation table + 128-entry PPW ~= 3 KB.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, List, Tuple

from repro.memory.address import NULL_REGION_END, block_address
from repro.prefetch.base import Prefetcher, PrefetchRequest


class DependenceBasedPrefetcher(Prefetcher):
    """Producer/consumer pointer-load correlation prefetcher."""

    #: largest field offset recognized as "address = value + offset"
    MAX_FIELD_OFFSET = 64

    def __init__(
        self,
        block_size: int,
        correlation_entries: int = 256,
        ppw_entries: int = 128,
        name: str = "dbp",
    ) -> None:
        super().__init__(name)
        self.block_size = block_size
        self.correlation_entries = correlation_entries
        self.ppw_entries = ppw_entries
        # (value, producer_pc) of recent loads
        self._ppw: Deque[Tuple[int, int]] = deque(maxlen=ppw_entries)
        # producer_pc -> OrderedDict of offsets (LRU-bounded per table cap)
        self._correlations: "OrderedDict[Tuple[int, int], None]" = OrderedDict()

    def storage_bits(self) -> int:
        ppw_bits = self.ppw_entries * (32 + 32)  # value + PC
        table_bits = self.correlation_entries * (32 + 16)  # PC + offset
        return ppw_bits + table_bits

    def _learn(self, addr: int) -> None:
        """Does *addr* consume a recently produced value?"""
        for value, producer_pc in self._ppw:
            offset = addr - value
            if 0 <= offset <= self.MAX_FIELD_OFFSET:
                key = (producer_pc, offset)
                if key in self._correlations:
                    self._correlations.move_to_end(key)
                else:
                    if len(self._correlations) >= self.correlation_entries:
                        self._correlations.popitem(last=False)
                    self._correlations[key] = None
                return

    def on_load_value(
        self, now: float, pc: int, value: int
    ) -> List[PrefetchRequest]:
        """Called when load *pc* retires having loaded *value*.

        If the load is a known producer, prefetch the consumer's predicted
        address(es).
        """
        if value < NULL_REGION_END:
            return []
        self._ppw.append((value, pc))
        requests: List[PrefetchRequest] = []
        seen = set()
        for producer_pc, offset in self._correlations:
            if producer_pc != pc:
                continue
            target = block_address(value + offset, self.block_size)
            if target not in seen:
                seen.add(target)
                requests.append(PrefetchRequest(target, self.name))
        return requests

    def on_demand_access(
        self, now: float, addr: int, pc: int, l2_hit: bool
    ) -> List[PrefetchRequest]:
        """Learn dependences from the demand stream (no prefetches here)."""
        self._learn(addr)
        return []
