"""Markov prefetcher (Joseph & Grunwald, ISCA-24) — baseline of Section 6.3.

A correlation table maps a miss block address to the (up to 4) block
addresses that followed it in the global miss stream; on a miss, all
recorded successors are prefetched.  The paper sizes it at 1 MB with 4
addresses per entry — enormous next to ECDP's 2.11 KB, which is the point
of the comparison.  It can only prefetch addresses it has *already seen
miss*, a structural limitation the paper calls out.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.memory.address import block_address
from repro.prefetch.base import Prefetcher, PrefetchRequest


class MarkovPrefetcher(Prefetcher):
    """First-order Markov miss-address correlation."""

    def __init__(
        self,
        block_size: int,
        n_entries: int = 16384,
        successors_per_entry: int = 4,
        name: str = "markov",
    ) -> None:
        super().__init__(name)
        self.block_size = block_size
        self.n_entries = n_entries
        self.successors_per_entry = successors_per_entry
        # miss block -> OrderedDict of successor blocks (LRU within entry)
        self._table: "OrderedDict[int, OrderedDict[int, None]]" = OrderedDict()
        self._last_miss: Optional[int] = None

    def storage_bits(self) -> int:
        """Table storage: tag + successors, 4 bytes each."""
        words_per_entry = 1 + self.successors_per_entry
        return self.n_entries * words_per_entry * 32

    def _record_transition(self, prev: int, nxt: int) -> None:
        entry = self._table.get(prev)
        if entry is None:
            if len(self._table) >= self.n_entries:
                self._table.popitem(last=False)
            entry = self._table[prev] = OrderedDict()
        else:
            self._table.move_to_end(prev)
        if nxt in entry:
            entry.move_to_end(nxt)
        else:
            if len(entry) >= self.successors_per_entry:
                entry.popitem(last=False)
            entry[nxt] = None

    def on_demand_access(
        self, now: float, addr: int, pc: int, l2_hit: bool
    ) -> List[PrefetchRequest]:
        if l2_hit:
            return []
        block = block_address(addr, self.block_size)
        if self._last_miss is not None and self._last_miss != block:
            self._record_transition(self._last_miss, block)
        self._last_miss = block
        entry = self._table.get(block)
        if not entry:
            return []
        self._table.move_to_end(block)
        # Most recently observed successors first.
        return [
            PrefetchRequest(successor, self.name)
            for successor in reversed(entry)
        ]
