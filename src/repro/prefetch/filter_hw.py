"""Zhuang & Lee's hardware prefetch pollution filter (ICPP-32) —
baseline of paper Section 6.4 / Figure 12.

A table of 1-bit entries indexed by hashed block address remembers whether
the last prefetch of that block was useless.  A prefetch whose entry says
"useless last time" is suppressed; outcomes update the table (evicted
unused -> useless, demanded -> useful).  The paper uses an 8 KB filter
(65536 entries) and finds it too blunt for CDP: it kills useful prefetches
along with the useless, because pointer usefulness is a property of the
*pointer group*, not of the individual block address.
"""

from __future__ import annotations


class HardwarePrefetchFilter:
    """Per-block-address 1-bit uselessness history."""

    def __init__(self, n_entries: int = 65536) -> None:
        if n_entries <= 0 or n_entries & (n_entries - 1):
            raise ValueError("filter size must be a power of two")
        self.n_entries = n_entries
        self._useless = bytearray(n_entries)
        self.suppressed = 0

    def storage_bits(self) -> int:
        return self.n_entries  # one bit per entry

    def _index(self, block_addr: int) -> int:
        return (block_addr ^ (block_addr >> 16)) & (self.n_entries - 1)

    def allows(self, block_addr: int) -> bool:
        """Gate one prefetch request; counts suppressions."""
        if self._useless[self._index(block_addr)]:
            self.suppressed += 1
            return False
        return True

    def on_prefetch_used(self, block_addr: int) -> None:
        self._useless[self._index(block_addr)] = 0

    def on_prefetch_evicted_unused(self, block_addr: int) -> None:
        self._useless[self._index(block_addr)] = 1
