"""Prefetcher interfaces shared by the stream, CDP and baseline prefetchers.

A prefetcher in this system is a passive observer of L2-level events that
emits *block addresses to prefetch*; all timing (queues, DRAM, fills) is
owned by the core model so every prefetcher competes for exactly the same
resources — the premise of the paper's interference study.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class PrefetchRequest:
    """One prefetch candidate produced by a prefetcher.

    ``depth`` matters only for recursive content-directed prefetching: a
    fill caused by a depth-d CDP prefetch is rescanned only if d is below
    the configured maximum recursion depth.  ``root`` carries the pointer
    group (load PC, byte offset) a CDP request originated from; requests
    from recursive scans leave it None and inherit their parent's root —
    used by informing-load profiling (paper Section 3, second sketch).
    """

    block_addr: int
    owner: str
    depth: int = 1
    root: Optional[Tuple[int, int]] = None


class Prefetcher(ABC):
    """Base class: named, throttleable source of prefetch requests."""

    #: number of aggressiveness levels every prefetcher exposes (Table 2)
    N_LEVELS = 4

    def __init__(self, name: str) -> None:
        self.name = name
        self._level = self.N_LEVELS - 1  # start aggressive, like the paper

    @property
    def level(self) -> int:
        """Current aggressiveness level, 0 (very conservative) .. 3."""
        return self._level

    def set_level(self, level: int) -> None:
        self._level = max(0, min(self.N_LEVELS - 1, level))

    def throttle_up(self) -> None:
        self.set_level(self._level + 1)

    def throttle_down(self) -> None:
        self.set_level(self._level - 1)

    @abstractmethod
    def on_demand_access(
        self, now: float, addr: int, pc: int, l2_hit: bool
    ) -> List[PrefetchRequest]:
        """Observe a demand access at the L2; return prefetches to issue."""


class PrefetchQueue:
    """Per-core prefetch request queue (Table 5: 128 entries per core).

    Requests occupy a slot from issue until their fill completes; a
    prefetcher whose requests arrive when the queue is full loses them.
    That backpressure is one of the contention channels coordinated
    throttling manages.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("prefetch queue capacity must be positive")
        self.capacity = capacity
        self._in_flight: List[float] = []
        self.dropped = 0

    def occupancy(self, now: float) -> int:
        heap = self._in_flight
        while heap and heap[0] <= now:
            heapq.heappop(heap)
        return len(heap)

    def try_admit(self, now: float) -> bool:
        """Reserve a slot for a request issued at *now*.

        The caller must follow up with :meth:`commit` once it knows the
        completion time, or :meth:`cancel` if the request went nowhere.
        """
        if self.occupancy(now) >= self.capacity:
            self.dropped += 1
            return False
        return True

    def commit(self, completion: float) -> None:
        heapq.heappush(self._in_flight, completion)

    def cancel(self) -> None:
        """Nothing to do: no slot was pushed for an uncommitted request."""
