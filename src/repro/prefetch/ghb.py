"""Global History Buffer G/DC prefetcher (Nesbit & Smith, HPCA-10) —
the strongest correlation baseline of paper Section 6.3.

Global Delta Correlation: keep the last N L2 miss block addresses in a FIFO
history buffer; on each miss, form the key from the last two address deltas,
find the most recent earlier occurrence of that delta pair, and replay the
deltas that followed it as predictions.  Captures both strides and
repetitive pointer-walk footprints, which is why the paper runs GHB *alone*
(it subsumes stream prefetching) rather than alongside the stream
prefetcher.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.memory.address import block_address
from repro.prefetch.base import Prefetcher, PrefetchRequest

#: prefetch degree per aggressiveness level (GHB throttles like a stream
#: prefetcher: how many predicted deltas it replays per trigger).  The
#: aggressive degree matches the stream prefetcher's 32-block lookahead —
#: with less, GHB's predictions arrive late on fast streaming loops.
GHB_DEGREE_LEVELS: Tuple[int, ...] = (4, 8, 16, 32)


class GhbPrefetcher(Prefetcher):
    """GHB with global delta correlation."""

    def __init__(
        self,
        block_size: int,
        n_entries: int = 1024,
        name: str = "ghb",
    ) -> None:
        super().__init__(name)
        self.block_size = block_size
        self.n_entries = n_entries
        self._history: Deque[int] = deque(maxlen=n_entries)  # miss blocks
        # delta-pair -> positions in a monotonically growing virtual index
        self._index: Dict[Tuple[int, int], int] = {}
        self._positions: List[int] = []  # virtual index -> block number
        self._base = 0  # how many old positions have fallen out of history

    @property
    def degree(self) -> int:
        return GHB_DEGREE_LEVELS[self.level]

    def storage_bits(self) -> int:
        """1k-entry GHB + index table ~= the paper's 12 KB."""
        ghb_bits = self.n_entries * (32 + 16)  # address + link pointer
        index_bits = self.n_entries * 48  # tag + head pointer
        return ghb_bits + index_bits

    def _compact(self) -> None:
        """Drop positions that have aged out of the history buffer.

        The hardware GHB is a circular buffer: entries older than
        ``n_entries`` accesses are gone, and index-table pointers to them
        are dangling (detected by position age here).
        """
        keep = self.n_entries
        drop = len(self._positions) - keep
        if drop <= 0:
            return
        self._positions = self._positions[drop:]
        self._base += drop
        self._index = {
            key: pos for key, pos in self._index.items() if pos >= self._base
        }

    def on_demand_access(
        self, now: float, addr: int, pc: int, l2_hit: bool
    ) -> List[PrefetchRequest]:
        # Train on the L2 access stream (miss-only training starves the
        # history as soon as prefetching starts working: covered streams
        # stop producing misses, the pattern disappears from the buffer,
        # coverage oscillates.  Nesbit & Smith's implementations re-trigger
        # on prefetched-block hits for the same reason.)  Same-block
        # repeats are collapsed so the delta stream stays meaningful.
        block = block_address(addr, self.block_size) // self.block_size
        history = self._history
        if history and history[-1] == block:
            return []
        history.append(block)
        self._positions.append(block)
        if len(self._positions) > 4 * self.n_entries:
            self._compact()
        position = self._base + len(self._positions) - 1
        if len(history) < 3:
            return []
        positions = self._positions
        base = self._base
        delta1 = positions[-2] - positions[-3]
        delta2 = block - positions[-2]
        key = (delta1, delta2)
        previous = self._index.get(key)
        self._index[key] = position
        if previous is None or previous >= position or previous < base:
            return []
        # Replay what followed the previous occurrence of this delta pair:
        # walk up to `degree` deltas forward from it (the hardware walks
        # the GHB link chain — bounded work per trigger).  For a distant
        # previous occurrence this replays last time's footprint (the
        # correlation win on repetitive pointer walks); for a recent one
        # the few available deltas are cycled (the stride case).
        span = position - previous
        take = min(span, self.degree)
        deltas = [
            positions[i + 1 - base] - positions[i - base]
            for i in range(previous, previous + take)
        ]
        if not deltas:
            return []
        requests: List[PrefetchRequest] = []
        predicted = block
        for i in range(self.degree):
            predicted += deltas[i % len(deltas)]
            if predicted <= 0:
                break
            requests.append(
                PrefetchRequest(predicted * self.block_size, self.name)
            )
        return requests
