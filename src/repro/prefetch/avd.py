"""Address-value delta (AVD) prediction used as a prefetcher
(Mutlu, Kim, Patt — MICRO-38; discussed in paper Section 7.3).

AVD observes that for many *pointer loads* the difference between the
load's own address and the value it returns is stable (regular memory
allocation makes ``node->next - &node->next`` nearly constant).  A table
keyed by load PC tracks that delta; when the same static load issues
again, ``predicted value = address + delta`` can be prefetched before the
load completes — attacking exactly the serialization that makes LDS
misses expensive.

The paper notes AVD "is less effective when employed for prefetching
instead of value prediction"; having it in the library lets users verify
that claim against ECDP on the same workloads.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List

from repro.memory.address import NULL_REGION_END, block_address
from repro.prefetch.base import Prefetcher, PrefetchRequest

#: |address - value| above this is not an AVD-predictable pointer load
MAX_DELTA = 1 << 20


@dataclass
class _AvdEntry:
    delta: int
    confidence: int = 0  # 2-bit saturating


class AvdPrefetcher(Prefetcher):
    """Per-PC address-value delta predictor driving prefetches."""

    def __init__(
        self,
        block_size: int,
        n_entries: int = 128,
        name: str = "avd",
        confidence_threshold: int = 2,
    ) -> None:
        super().__init__(name)
        self.block_size = block_size
        self.n_entries = n_entries
        self.confidence_threshold = confidence_threshold
        self._table: "OrderedDict[int, _AvdEntry]" = OrderedDict()

    def storage_bits(self) -> int:
        return self.n_entries * (32 + 24 + 2)  # PC tag + delta + confidence

    def on_load_value(self, now: float, pc: int, addr: int,
                      value: int) -> None:
        """Train on a retiring load's (address, value) pair."""
        if value < NULL_REGION_END:
            return
        delta = value - addr
        if abs(delta) > MAX_DELTA:
            return
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.n_entries:
                self._table.popitem(last=False)
            self._table[pc] = _AvdEntry(delta=delta)
            return
        self._table.move_to_end(pc)
        if entry.delta == delta:
            entry.confidence = min(3, entry.confidence + 1)
        else:
            entry.confidence = max(0, entry.confidence - 1)
            if entry.confidence == 0:
                entry.delta = delta

    def on_demand_access(
        self, now: float, addr: int, pc: int, l2_hit: bool
    ) -> List[PrefetchRequest]:
        """Predict this load's value from its address; prefetch it."""
        entry = self._table.get(pc)
        if entry is None or entry.confidence < self.confidence_threshold:
            return []
        predicted = addr + entry.delta
        if not 0 <= predicted < (1 << 32):
            return []
        return [
            PrefetchRequest(
                block_address(predicted, self.block_size), self.name
            )
        ]
