"""Per-PC stride prefetcher and a simple next-N-line prefetcher.

Neither appears in the paper's main evaluation, but both belong in any
prefetching library of this scope:

* the **stride prefetcher** (Chen & Baer-style reference prediction
  table) catches per-instruction strided patterns the global stream
  prefetcher misses, and is a third participant for the N-ary coordinated
  throttling extension the paper sketches in Section 4.2;
* the **next-line prefetcher** is the substrate Zhuang & Lee's filter
  (Section 6.4) and Srinivasan's static filter (Section 7.2) were
  originally proposed for.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Tuple

from repro.memory.address import block_address
from repro.prefetch.base import Prefetcher, PrefetchRequest

#: prefetch degree per aggressiveness level
STRIDE_DEGREE_LEVELS: Tuple[int, ...] = (1, 1, 2, 4)
NEXT_LINE_LEVELS: Tuple[int, ...] = (1, 1, 2, 4)


@dataclass
class _StrideEntry:
    last_addr: int
    stride: int = 0
    confidence: int = 0  # 2-bit saturating


class StridePrefetcher(Prefetcher):
    """Reference prediction table: per-PC stride detection."""

    def __init__(
        self,
        block_size: int,
        n_entries: int = 256,
        name: str = "stride",
        confidence_threshold: int = 2,
    ) -> None:
        super().__init__(name)
        self.block_size = block_size
        self.n_entries = n_entries
        self.confidence_threshold = confidence_threshold
        self._table: "OrderedDict[int, _StrideEntry]" = OrderedDict()

    @property
    def degree(self) -> int:
        return STRIDE_DEGREE_LEVELS[self.level]

    def storage_bits(self) -> int:
        # PC tag + last address + stride + confidence per entry.
        return self.n_entries * (32 + 32 + 16 + 2)

    def on_demand_access(
        self, now: float, addr: int, pc: int, l2_hit: bool
    ) -> List[PrefetchRequest]:
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.n_entries:
                self._table.popitem(last=False)
            self._table[pc] = _StrideEntry(last_addr=addr)
            return []
        self._table.move_to_end(pc)
        stride = addr - entry.last_addr
        if stride == 0:
            return []
        if stride == entry.stride:
            entry.confidence = min(3, entry.confidence + 1)
        else:
            entry.confidence = max(0, entry.confidence - 1)
            if entry.confidence == 0:
                entry.stride = stride
        entry.last_addr = addr
        if entry.confidence < self.confidence_threshold or entry.stride == 0:
            return []
        requests: List[PrefetchRequest] = []
        seen = set()
        for ahead in range(1, self.degree + 1):
            target = block_address(
                addr + entry.stride * ahead, self.block_size
            )
            if target not in seen and 0 <= target < (1 << 32):
                seen.add(target)
                requests.append(PrefetchRequest(target, self.name))
        return requests


class NextLinePrefetcher(Prefetcher):
    """On every demand miss, prefetch the next N sequential blocks."""

    def __init__(self, block_size: int, name: str = "nextline") -> None:
        super().__init__(name)
        self.block_size = block_size

    @property
    def degree(self) -> int:
        return NEXT_LINE_LEVELS[self.level]

    def on_demand_access(
        self, now: float, addr: int, pc: int, l2_hit: bool
    ) -> List[PrefetchRequest]:
        if l2_hit:
            return []
        block = block_address(addr, self.block_size)
        return [
            PrefetchRequest(block + ahead * self.block_size, self.name)
            for ahead in range(1, self.degree + 1)
        ]
