"""IBM POWER4/POWER5-style stream prefetcher (paper Section 2.1).

The baseline every configuration in the paper includes: 32 stream entries,
allocate-on-miss, direction detection on a second nearby miss, then a
monitoring window that runs *Prefetch Distance* blocks ahead of the demand
stream and issues *Prefetch Degree* blocks per advance.  Distance and degree
are the two knobs coordinated throttling turns (paper Table 2).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.prefetch.base import Prefetcher, PrefetchRequest

#: (distance, degree) per aggressiveness level — paper Table 2.
STREAM_LEVELS: Tuple[Tuple[int, int], ...] = ((4, 1), (8, 1), (16, 2), (32, 4))


class _Stream:
    """One tracked stream.

    A plain ``__slots__`` class rather than a dataclass: stream lookup
    runs once per demand access over up to ``n_streams`` entries, so
    attribute-access cost here is the prefetcher's hot path.
    """

    __slots__ = ("last_demand", "direction", "next_prefetch", "trained", "lru_tick")

    def __init__(
        self,
        last_demand: int,  # most recent demand block seen by this stream
        direction: int = 0,  # +1 / -1 once trained, 0 while training
        next_prefetch: int = 0,  # first block not yet prefetched
        trained: bool = False,
        lru_tick: int = 0,
    ) -> None:
        # All fields in units of block numbers (addr // block_size).
        self.last_demand = last_demand
        self.direction = direction
        self.next_prefetch = next_prefetch
        self.trained = trained
        self.lru_tick = lru_tick


class StreamPrefetcher(Prefetcher):
    """Stride-1 multi-stream prefetcher with distance/degree throttling."""

    def __init__(
        self,
        block_size: int,
        n_streams: int = 32,
        name: str = "stream",
        train_window: int = 2,
    ) -> None:
        super().__init__(name)
        self.block_size = block_size
        self.n_streams = n_streams
        #: a second miss within this many blocks of the first trains a stream
        self.train_window = train_window
        self._streams: List[_Stream] = []
        self._tick = 0

    @property
    def distance(self) -> int:
        return STREAM_LEVELS[self.level][0]

    @property
    def degree(self) -> int:
        return STREAM_LEVELS[self.level][1]

    def _find_stream(self, block: int) -> Optional[_Stream]:
        """The stream whose monitoring window covers *block*, if any."""
        # ``distance``/``train_window`` hoisted to locals: this loop runs
        # once per demand access over every tracked stream.
        distance = STREAM_LEVELS[self._level][0]
        train_window = self.train_window
        for stream in self._streams:
            if stream.trained:
                ahead = (block - stream.last_demand) * stream.direction
                if 0 <= ahead <= distance:
                    return stream
            elif -train_window <= block - stream.last_demand <= train_window:
                return stream
        return None

    def _allocate(self, block: int) -> _Stream:
        stream = _Stream(last_demand=block, next_prefetch=block + 1)
        streams = self._streams
        if len(streams) >= self.n_streams:
            # Evict the least recently advanced stream (first minimum,
            # matching min()-then-remove(), without the equality rescan).
            victim_index = 0
            victim_tick = streams[0].lru_tick
            for index in range(1, len(streams)):
                tick = streams[index].lru_tick
                if tick < victim_tick:
                    victim_index = index
                    victim_tick = tick
            del streams[victim_index]
        streams.append(stream)
        return stream

    def _emit(self, stream: _Stream, block: int) -> List[PrefetchRequest]:
        """Advance *stream* to demand *block* and emit up to degree blocks."""
        stream.last_demand = block
        stream.lru_tick = self._tick
        distance, degree = STREAM_LEVELS[self._level]
        direction = stream.direction
        block_size = self.block_size
        name = self.name
        frontier = block + distance * direction
        requests: List[PrefetchRequest] = []
        next_prefetch = stream.next_prefetch
        for __ in range(degree):
            candidate = next_prefetch
            if (candidate - block) * direction < 0:
                # Demand stream jumped past our pointer; snap forward.
                candidate = block + direction
                next_prefetch = candidate
            if (frontier - candidate) * direction < 0:
                break  # would exceed the allowed distance
            if candidate >= 0:
                requests.append(
                    PrefetchRequest(candidate * block_size, name)
                )
            next_prefetch = candidate + direction
        stream.next_prefetch = next_prefetch
        return requests

    def on_demand_access(
        self, now: float, addr: int, pc: int, l2_hit: bool
    ) -> List[PrefetchRequest]:
        """Train on L2 demand misses; advance streams on any demand access."""
        self._tick += 1
        block = addr // self.block_size
        stream = self._find_stream(block)
        if stream is None:
            if not l2_hit:
                self._allocate(block)
            return []
        if not stream.trained:
            delta = block - stream.last_demand
            if delta == 0:
                stream.lru_tick = self._tick
                return []
            stream.direction = 1 if delta > 0 else -1
            stream.trained = True
            stream.next_prefetch = block + stream.direction
            return self._emit(stream, block)
        return self._emit(stream, block)
