"""IBM POWER4/POWER5-style stream prefetcher (paper Section 2.1).

The baseline every configuration in the paper includes: 32 stream entries,
allocate-on-miss, direction detection on a second nearby miss, then a
monitoring window that runs *Prefetch Distance* blocks ahead of the demand
stream and issues *Prefetch Degree* blocks per advance.  Distance and degree
are the two knobs coordinated throttling turns (paper Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.memory.address import block_address
from repro.prefetch.base import Prefetcher, PrefetchRequest

#: (distance, degree) per aggressiveness level — paper Table 2.
STREAM_LEVELS: Tuple[Tuple[int, int], ...] = ((4, 1), (8, 1), (16, 2), (32, 4))


@dataclass
class _Stream:
    """One tracked stream."""

    # All fields in units of block numbers (addr // block_size).
    last_demand: int  # most recent demand block seen by this stream
    direction: int = 0  # +1 / -1 once trained, 0 while training
    next_prefetch: int = 0  # first block not yet prefetched
    trained: bool = False
    lru_tick: int = 0


class StreamPrefetcher(Prefetcher):
    """Stride-1 multi-stream prefetcher with distance/degree throttling."""

    def __init__(
        self,
        block_size: int,
        n_streams: int = 32,
        name: str = "stream",
        train_window: int = 2,
    ) -> None:
        super().__init__(name)
        self.block_size = block_size
        self.n_streams = n_streams
        #: a second miss within this many blocks of the first trains a stream
        self.train_window = train_window
        self._streams: List[_Stream] = []
        self._tick = 0

    @property
    def distance(self) -> int:
        return STREAM_LEVELS[self.level][0]

    @property
    def degree(self) -> int:
        return STREAM_LEVELS[self.level][1]

    def _find_stream(self, block: int) -> Optional[_Stream]:
        """The stream whose monitoring window covers *block*, if any."""
        best = None
        for stream in self._streams:
            if stream.trained:
                ahead = (block - stream.last_demand) * stream.direction
                if 0 <= ahead <= self.distance:
                    best = stream
                    break
            else:
                if abs(block - stream.last_demand) <= self.train_window:
                    best = stream
                    break
        return best

    def _allocate(self, block: int) -> _Stream:
        stream = _Stream(last_demand=block, next_prefetch=block + 1)
        if len(self._streams) >= self.n_streams:
            # Evict the least recently advanced stream.
            victim = min(self._streams, key=lambda s: s.lru_tick)
            self._streams.remove(victim)
        self._streams.append(stream)
        return stream

    def _emit(self, stream: _Stream, block: int) -> List[PrefetchRequest]:
        """Advance *stream* to demand *block* and emit up to degree blocks."""
        stream.last_demand = block
        stream.lru_tick = self._tick
        frontier = block + self.distance * stream.direction
        requests: List[PrefetchRequest] = []
        for __ in range(self.degree):
            candidate = stream.next_prefetch
            ahead = (candidate - block) * stream.direction
            if ahead < 0:
                # Demand stream jumped past our pointer; snap forward.
                candidate = block + stream.direction
                stream.next_prefetch = candidate
                ahead = 1
            if (frontier - candidate) * stream.direction < 0:
                break  # would exceed the allowed distance
            if candidate >= 0:
                requests.append(
                    PrefetchRequest(candidate * self.block_size, self.name)
                )
            stream.next_prefetch = candidate + stream.direction
        return requests

    def on_demand_access(
        self, now: float, addr: int, pc: int, l2_hit: bool
    ) -> List[PrefetchRequest]:
        """Train on L2 demand misses; advance streams on any demand access."""
        self._tick += 1
        block = block_address(addr, self.block_size) // self.block_size
        stream = self._find_stream(block)
        if stream is None:
            if not l2_hit:
                self._allocate(block)
            return []
        if not stream.trained:
            delta = block - stream.last_demand
            if delta == 0:
                stream.lru_tick = self._tick
                return []
            stream.direction = 1 if delta > 0 else -1
            stream.trained = True
            stream.next_prefetch = block + stream.direction
            return self._emit(stream, block)
        return self._emit(stream, block)
