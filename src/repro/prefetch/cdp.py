"""Content-directed prefetching (Cooksey et al., ASPLOS-X 2002), plus the
hint-filtered variant that makes it ECDP (paper Section 3).

CDP scans every word of a fetched cache block; a value whose high-order
*compare bits* match the block's own address is predicted to be a pointer
and prefetched.  Recursion: blocks fetched by CDP prefetches are themselves
scanned, up to the *maximum recursion depth* — the aggressiveness knob
coordinated throttling turns (paper Table 2).

ECDP is this same prefetcher with a hint filter installed: on a block
fetched by a *demand* load, only pointers whose byte offset from the
accessed address lies in the load's compiler-provided hint bit vector are
prefetched.  Blocks fetched by CDP's own prefetches are scanned unfiltered,
exactly as paper Section 3 specifies.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.memory.address import (
    NULL_REGION_END,
    WORD_SIZE,
    block_address,
    compare_bits_match,
)
from repro.prefetch.base import Prefetcher, PrefetchRequest

#: maximum recursion depth per aggressiveness level — paper Table 2.
CDP_LEVELS: Tuple[int, ...] = (1, 2, 3, 4)

#: Filter signature: (load_pc, byte_delta) -> prefetch this pointer?
HintFilter = Callable[[int, int], bool]


class ContentDirectedPrefetcher(Prefetcher):
    """Stateless pointer-scanning prefetcher with optional ECDP hints."""

    def __init__(
        self,
        block_size: int,
        compare_bits: int = 8,
        name: str = "cdp",
        hint_filter: Optional[HintFilter] = None,
    ) -> None:
        super().__init__(name)
        self.block_size = block_size
        self.compare_bits = compare_bits
        self.hint_filter = hint_filter
        self.scanned_blocks = 0
        self.candidates_seen = 0
        self.candidates_filtered = 0

    @property
    def max_recursion_depth(self) -> int:
        return CDP_LEVELS[self.level]

    def on_demand_access(
        self, now: float, addr: int, pc: int, l2_hit: bool
    ) -> List[PrefetchRequest]:
        """CDP does not train on accesses — only on fills (see scan_fill)."""
        return []

    def _pointer_candidates(
        self, block_addr: int, words: List[int]
    ) -> List[Tuple[int, int]]:
        """(word_index, value) pairs passing the virtual-address predictor."""
        out = []
        for index, value in enumerate(words):
            if value < NULL_REGION_END:
                continue  # NULL page — never a heap pointer
            if compare_bits_match(value, block_addr, self.compare_bits):
                out.append((index, value))
        return out

    def scan_fill(
        self,
        block_addr: int,
        words: List[int],
        depth: int,
        demand_pc: Optional[int] = None,
        accessed_offset: int = 0,
    ) -> List[PrefetchRequest]:
        """Scan a fetched block; return prefetch requests for its pointers.

        Args:
            block_addr: base address of the fetched block.
            words: the block's 4-byte values (from the backing store).
            depth: recursion depth of the *new* requests.  ``depth == 1``
                for demand-miss fills; a fill caused by a depth-d prefetch
                spawns depth d+1 requests.  Nothing is generated once
                depth exceeds the level's maximum recursion depth.
            demand_pc: PC of the missing demand load (None for fills
                triggered by CDP's own prefetches — those scan unfiltered).
            accessed_offset: byte offset within the block that the demand
                load accessed; hint offsets are relative to it.
        """
        if depth > self.max_recursion_depth:
            return []
        self.scanned_blocks += 1
        requests: List[PrefetchRequest] = []
        seen_targets = set()
        for index, value in self._pointer_candidates(block_addr, words):
            self.candidates_seen += 1
            byte_delta = index * WORD_SIZE - accessed_offset
            if self.hint_filter is not None and demand_pc is not None:
                if not self.hint_filter(demand_pc, byte_delta):
                    self.candidates_filtered += 1
                    continue
            target = block_address(value, self.block_size)
            if target == block_addr or target in seen_targets:
                continue  # self-links and duplicate targets add nothing
            seen_targets.add(target)
            root = (demand_pc, byte_delta) if demand_pc is not None else None
            requests.append(PrefetchRequest(target, self.name, depth, root))
        return requests
