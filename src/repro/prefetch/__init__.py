"""Prefetchers: the baseline stream prefetcher, CDP/ECDP, and the
LDS/correlation baselines the paper compares against."""

from repro.prefetch.avd import AvdPrefetcher
from repro.prefetch.base import Prefetcher, PrefetchQueue, PrefetchRequest
from repro.prefetch.cdp import CDP_LEVELS, ContentDirectedPrefetcher
from repro.prefetch.dbp import DependenceBasedPrefetcher
from repro.prefetch.filter_hw import HardwarePrefetchFilter
from repro.prefetch.ghb import GHB_DEGREE_LEVELS, GhbPrefetcher
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.pointer_cache import PointerCachePrefetcher
from repro.prefetch.stream import STREAM_LEVELS, StreamPrefetcher
from repro.prefetch.stride import (
    NextLinePrefetcher,
    STRIDE_DEGREE_LEVELS,
    StridePrefetcher,
)

__all__ = [
    "AvdPrefetcher",
    "CDP_LEVELS",
    "ContentDirectedPrefetcher",
    "DependenceBasedPrefetcher",
    "GHB_DEGREE_LEVELS",
    "GhbPrefetcher",
    "HardwarePrefetchFilter",
    "MarkovPrefetcher",
    "NextLinePrefetcher",
    "PointerCachePrefetcher",
    "Prefetcher",
    "PrefetchQueue",
    "PrefetchRequest",
    "STREAM_LEVELS",
    "STRIDE_DEGREE_LEVELS",
    "StridePrefetcher",
]
