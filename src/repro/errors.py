"""Structured error taxonomy for the whole library.

Every error the runner, execution engine, or CLI can surface derives from
:class:`ReproError`, so callers (and the ``repro`` command) can catch one
type, print one actionable line, and map it to a meaningful exit code:

* ``exit_code == 2`` — the user asked for something invalid (bad config,
  unknown benchmark/mechanism, malformed trace file).  Fix the invocation.
* ``exit_code == 1`` — the request was valid but execution failed (a job
  timed out, a worker crashed, retries were exhausted).

The ``transient`` flag drives the execution engine's retry policy:
transient failures (timeouts, worker loss, ``OSError``) are retried with
exponential backoff; permanent failures (:class:`ConfigError`,
:class:`TraceFormatError`) fail fast — rerunning a job against the same
bad input can never succeed.

Some classes multiply inherit from the builtin their call sites
historically raised (``KeyError``, ``ValueError``) so existing callers
that catch the builtin keep working.
"""

from __future__ import annotations

from typing import Dict, Optional


class ReproError(Exception):
    """Base class of every structured error in the library."""

    #: process exit code the CLI maps this error to
    exit_code = 1
    #: whether the execution engine should retry a job that raised this
    transient = False


class UsageError(ReproError):
    """The command line or API call itself was malformed."""

    exit_code = 2


class ConfigError(UsageError):
    """A SystemConfig (or other configuration) failed validation.

    ``fields`` maps each offending field name to a human-readable
    message, so callers can report exactly which knob is wrong.
    """

    def __init__(self, message: str, fields: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.fields: Dict[str, str] = dict(fields or {})


class UnknownNameError(UsageError, KeyError):
    """An unknown benchmark, mechanism, or prefetcher name was requested.

    Subclasses ``KeyError`` because registry lookups historically raised
    that; ``__str__`` is overridden to drop KeyError's repr-quoting.
    """

    def __str__(self) -> str:  # KeyError would print repr(args[0])
        return self.args[0] if self.args else ""


class TraceFormatError(ReproError, ValueError):
    """A trace file is corrupt, truncated, or not a trace file at all.

    Carries the byte ``offset`` and zero-based ``record_index`` of the
    first bad record so the corruption can be located and repaired.
    """

    exit_code = 2

    def __init__(
        self,
        message: str,
        path: object = None,
        offset: Optional[int] = None,
        record_index: Optional[int] = None,
    ):
        super().__init__(message)
        self.path = path
        self.offset = offset
        self.record_index = record_index


class TransientError(ReproError):
    """An explicitly-transient failure; the engine will retry it."""

    transient = True


class JobError(ReproError):
    """A job failed inside the execution engine."""


class JobTimeoutError(JobError):
    """A job exceeded its wall-clock timeout and was killed."""

    transient = True


class WorkerCrashError(JobError):
    """A worker process died without reporting a result."""

    transient = True


class WorkerStalledError(JobError):
    """A worker stopped heartbeating and was killed by the watchdog.

    Distinct from :class:`JobTimeoutError`: the watchdog fires on *lack of
    progress* (no heartbeat for ``no_progress_timeout`` seconds), not on
    total wall-clock — a slow-but-alive worker keeps its heartbeats
    flowing and is never stalled.
    """

    transient = True


class PoisonJobError(JobError):
    """A job crashed its worker so many times it was quarantined.

    Deliberately *not* transient: a job that reproducibly takes down its
    worker process is journaled ``FAILED`` with a poison flag and excluded
    from resume retries, so a crashing cell cannot burn the retry budget
    on every ``--resume`` of a long sweep.
    """


class CheckpointError(ReproError):
    """A checkpoint journal could not be read or written."""


class JournalCorruptionError(CheckpointError):
    """A checkpoint journal failed integrity verification.

    Raised by ``repro journal verify`` surfaces; the resume path never
    raises this — it salvages intact records and reports the damage.
    """


class FaultPlanError(UsageError):
    """A fault-injection plan is malformed (unknown kind, bad coordinates)."""


class BackendError(JobError):
    """An executor backend failed outside any particular job's code.

    The job itself may be perfectly fine — the transport that was meant
    to carry it broke.  Concrete subclasses say *where*: connecting
    (:class:`BackendConnectError`), mid-flight (:class:`HostLostError`),
    or on the acknowledgement path (:class:`PartitionedAckError`).
    """


class BackendConnectError(BackendError):
    """A backend could not reach (or spawn) a worker to run the job.

    Transient: the host may come back, another host may pick the job up,
    and the retry budget bounds how long the engine keeps trying.
    """

    transient = True


class HostLostError(BackendError):
    """The host running a job disappeared mid-flight.

    Transient: the job never completed anywhere, so re-running it on a
    surviving host is always safe — job identity is content-hashed and
    the journal only records terminal outcomes.
    """

    transient = True


class PartitionedAckError(BackendError):
    """A job's result acknowledgement was lost to a network partition.

    The work may even have finished on the far side, but the engine
    never saw a trustworthy outcome.  Transient: simulations are
    deterministic, so re-running converges to the identical record.
    """

    transient = True


class HostsFileError(UsageError):
    """A ``--hosts`` inventory file is malformed or unreadable."""


class ServiceError(ReproError):
    """A job-service request failed (transport, protocol, or server side).

    ``status`` carries the HTTP status code when the failure came from a
    server response (None for transport-level failures).
    """

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class ServiceBusyError(ServiceError):
    """The service applied backpressure (quota or queue bound, 429/503).

    Transient by design: the request was valid, the server was full —
    retrying after some in-flight work settles is the correct response,
    and it is exactly what the sweep client does.  ``retry_after``
    carries the server's ``Retry-After`` pacing hint in seconds (None
    when the server sent no hint).
    """

    transient = True

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        retry_after: Optional[float] = None,
    ):
        super().__init__(message, status=status)
        self.retry_after = retry_after


class SweepInterrupted(ReproError):
    """A sweep stopped before finishing (signal drain or injected abort).

    Carries the completed-prefix invariant: every job settled before the
    interruption is already in the checkpoint journal, so ``--resume``
    continues exactly where the sweep stopped.
    """

    exit_code = 130


def is_transient(error: BaseException) -> bool:
    """Should the execution engine retry a job that raised *error*?

    Structured errors carry their own flag; of the builtins, I/O-shaped
    failures (``OSError``, ``TimeoutError``) are considered transient.
    Everything else — assertion failures, ``ValueError``, arbitrary
    exceptions from a simulation — is permanent: retrying the same
    deterministic simulation cannot change its outcome.
    """
    if isinstance(error, ReproError):
        return error.transient
    return isinstance(error, (OSError, TimeoutError))
