"""Word-granular backing store for the simulated address space.

The content-directed prefetcher discovers candidate prefetch addresses by
scanning the *contents* of fetched cache blocks (paper Section 2.2), so the
substrate must hold real values — in particular real pointer values written
by the workload's data-structure code.  We store memory as a dict from
word-aligned address to 32-bit value; untouched words read as zero, which the
compare-bits predictor never mistakes for a pointer (zero shares no
high-order bits with any heap block address).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.memory.address import (
    ADDRESS_MASK,
    WORD_SIZE,
    align_down,
    validate_address,
)


class SimulatedMemory:
    """Sparse word-addressed memory holding 32-bit values.

    All accesses are word (4-byte) granular, matching the pointer size the
    paper's CDP scans for.  Sub-word layout is irrelevant to every mechanism
    under study, so we do not model it.
    """

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}

    def read_word(self, addr: int) -> int:
        """Read the 32-bit value at word-aligned *addr* (0 if never written)."""
        validate_address(addr)
        return self._words.get(align_down(addr, WORD_SIZE), 0)

    def write_word(self, addr: int, value: int) -> None:
        """Write 32-bit *value* at word-aligned *addr*."""
        validate_address(addr)
        self._words[align_down(addr, WORD_SIZE)] = value & ADDRESS_MASK

    def read_block_words(self, block_addr: int, block_size: int) -> List[int]:
        """All word values in the cache block at *block_addr*, in order.

        This is what the CDP scanner sees when a block is fetched: one
        4-byte candidate value per word slot (``block_size // 4`` of them).
        """
        words = self._words
        return [
            words.get(addr, 0)
            for addr in range(block_addr, block_addr + block_size, WORD_SIZE)
        ]

    def iter_words(self) -> Iterator[Tuple[int, int]]:
        """Iterate (word_address, value) pairs for all written words."""
        return iter(self._words.items())

    def __len__(self) -> int:
        return len(self._words)

    def clear(self) -> None:
        """Drop all contents (used between profiling and measured runs)."""
        self._words.clear()
