"""Heap allocators for laying out linked data structures in simulated memory.

The layout of nodes in memory is load-bearing for this paper: pointer-group
analysis (Section 3) relies on structure fields sitting at *constant byte
offsets* from the field a load accesses, and on consecutively allocated nodes
packing several copies of each field into one cache block (paper Figure 3).
A simple bump allocator reproduces the behaviour of a fresh malloc heap; the
free-list allocator adds reuse so workloads with allocation/deallocation
churn (which the paper notes can perturb PG layout, footnote 3) can exercise
that effect.
"""

from __future__ import annotations

from typing import Dict, List

from repro.memory.address import WORD_SIZE, align_up, validate_address


class OutOfSimulatedMemory(Exception):
    """Raised when an allocator exhausts its arena."""


class BumpAllocator:
    """Sequential allocator: objects of one structure pack densely.

    Matches the layout assumption in paper Figure 3(b): "different nodes
    are allocated consecutively in memory", so each pointer field of any
    node in a cache block lies at a constant offset from the byte a given
    load accesses.
    """

    def __init__(self, base: int, size: int, alignment: int = WORD_SIZE) -> None:
        if base <= 0:
            raise ValueError("arena base must be positive (page zero is NULL)")
        validate_address(base)
        validate_address(base + size - 1)
        self.base = base
        self.size = size
        self.alignment = alignment
        self._next = align_up(base, alignment)

    @property
    def bytes_used(self) -> int:
        return self._next - self.base

    @property
    def bytes_free(self) -> int:
        return self.base + self.size - self._next

    def allocate(self, nbytes: int) -> int:
        """Return the address of a fresh *nbytes* region."""
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        addr = self._next
        new_next = align_up(addr + nbytes, self.alignment)
        if new_next > self.base + self.size:
            raise OutOfSimulatedMemory(
                f"arena of {self.size} bytes exhausted "
                f"(requested {nbytes}, used {self.bytes_used})"
            )
        self._next = new_next
        return addr


class FreeListAllocator:
    """Bump allocator with size-segregated free lists.

    free() pushes a region onto the free list for its size class and a later
    allocate() of the same size pops it (LIFO), imitating glibc fastbins.
    This perturbs node adjacency exactly the way real allocation churn does,
    which is what makes some pointer groups only *almost always* hold
    (paper footnote 3).
    """

    def __init__(self, base: int, size: int, alignment: int = WORD_SIZE) -> None:
        self._bump = BumpAllocator(base, size, alignment)
        self._free_lists: Dict[int, List[int]] = {}
        self._live: Dict[int, int] = {}  # addr -> rounded size

    @property
    def bytes_used(self) -> int:
        return self._bump.bytes_used

    def _size_class(self, nbytes: int) -> int:
        return align_up(nbytes, self._bump.alignment)

    def allocate(self, nbytes: int) -> int:
        size_class = self._size_class(nbytes)
        free_list = self._free_lists.get(size_class)
        if free_list:
            addr = free_list.pop()
        else:
            addr = self._bump.allocate(size_class)
        self._live[addr] = size_class
        return addr

    def free(self, addr: int) -> None:
        """Return the region at *addr* to its size class's free list."""
        size_class = self._live.pop(addr, None)
        if size_class is None:
            raise ValueError(f"free of unallocated address {addr:#x}")
        self._free_lists.setdefault(size_class, []).append(addr)


class ArenaMap:
    """Carves one address space into named, non-overlapping arenas.

    Workloads give each structure its own arena so the high-order address
    bits differ between regions, exercising the compare-bits predictor the
    way distinct mmap'd heaps would.
    """

    #: Heap arenas start at 256 MiB; everything below is reserved so that
    #: small integers in the backing store never pass the pointer test.
    DEFAULT_BASE = 0x1000_0000

    def __init__(self, base: int = DEFAULT_BASE) -> None:
        self._next_base = base
        self._arenas: Dict[str, BumpAllocator] = {}

    def new_arena(
        self,
        name: str,
        size: int,
        alignment: int = WORD_SIZE,
        with_free_list: bool = False,
    ):
        """Create and register a fresh arena called *name*."""
        if name in self._arenas:
            raise ValueError(f"arena {name!r} already exists")
        base = self._next_base
        # Separate arenas by a guard gap and keep bases block-aligned.
        self._next_base = align_up(base + size + 0x1000, 0x1000)
        validate_address(self._next_base)
        allocator: BumpAllocator
        if with_free_list:
            allocator = FreeListAllocator(base, size, alignment)  # type: ignore[assignment]
        else:
            allocator = BumpAllocator(base, size, alignment)
        self._arenas[name] = allocator
        return allocator

    def arena(self, name: str):
        return self._arenas[name]
