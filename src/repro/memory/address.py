"""Address arithmetic for the simulated 32-bit virtual address space.

The paper's CDP implementation targets x86 with 4-byte pointers (Section 5),
so every address in this substrate is a 32-bit unsigned integer.  Pointers
are stored 4-byte aligned in the backing store, and the content-directed
prefetcher compares the high-order *compare bits* of candidate values against
the address of the cache block they were loaded from (Section 2.2).
"""

from __future__ import annotations

ADDRESS_BITS = 32
ADDRESS_MASK = (1 << ADDRESS_BITS) - 1
WORD_SIZE = 4  # bytes per pointer / word (x86-32, per paper Section 5)

# NULL region: values below this are never treated as heap addresses.  Real
# programs keep page zero unmapped; our allocator never hands out addresses
# this low, so a zeroed field can never alias a valid pointer.
NULL_REGION_END = 0x1000


def is_aligned(addr: int, alignment: int) -> bool:
    """Return True if *addr* is a multiple of *alignment* (a power of two)."""
    return (addr & (alignment - 1)) == 0


def align_up(addr: int, alignment: int) -> int:
    """Round *addr* up to the next multiple of *alignment* (a power of two)."""
    return (addr + alignment - 1) & ~(alignment - 1)


def align_down(addr: int, alignment: int) -> int:
    """Round *addr* down to a multiple of *alignment* (a power of two)."""
    return addr & ~(alignment - 1)


def block_address(addr: int, block_size: int) -> int:
    """Address of the cache block containing *addr*."""
    return addr & ~(block_size - 1)


def block_offset(addr: int, block_size: int) -> int:
    """Byte offset of *addr* within its cache block."""
    return addr & (block_size - 1)


def compare_bits_match(value: int, block_addr: int, compare_bits: int) -> bool:
    """CDP's virtual-address-matching predictor (paper Section 2.2).

    A 4-byte *value* read out of a fetched cache block is predicted to be a
    pointer when its high-order *compare_bits* bits equal those of the
    address of the block it was found in.  Cooksey et al. call these the
    *compare bits*; the paper uses 8 of the 32 address bits (Section 5).
    """
    if compare_bits <= 0:
        return True
    shift = ADDRESS_BITS - compare_bits
    return (value >> shift) == (block_addr >> shift)


def validate_address(addr: int) -> int:
    """Check that *addr* fits the simulated address space and return it."""
    if not 0 <= addr <= ADDRESS_MASK:
        raise ValueError(f"address {addr:#x} outside 32-bit address space")
    return addr
