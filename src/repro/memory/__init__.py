"""Simulated 32-bit memory substrate: addresses, backing store, allocators."""

from repro.memory.address import (
    ADDRESS_BITS,
    ADDRESS_MASK,
    NULL_REGION_END,
    WORD_SIZE,
    align_down,
    align_up,
    block_address,
    block_offset,
    compare_bits_match,
    is_aligned,
    validate_address,
)
from repro.memory.alloc import (
    ArenaMap,
    BumpAllocator,
    FreeListAllocator,
    OutOfSimulatedMemory,
)
from repro.memory.backing import SimulatedMemory

__all__ = [
    "ADDRESS_BITS",
    "ADDRESS_MASK",
    "NULL_REGION_END",
    "WORD_SIZE",
    "align_down",
    "align_up",
    "block_address",
    "block_offset",
    "compare_bits_match",
    "is_aligned",
    "validate_address",
    "ArenaMap",
    "BumpAllocator",
    "FreeListAllocator",
    "OutOfSimulatedMemory",
    "SimulatedMemory",
]
