"""SPEC floating-point analogs from the paper's pointer-intensive set."""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.instruction import MemOp
from repro.structures.arrays import build_array, sequential_walk
from repro.structures.base import Program
from repro.structures.linked_list import build_list, walk
from repro.workloads.base import BuildContext, Workload, emit, interleave, lds_sites_for


class Art(Workload):
    """Adaptive resonance: large weight-array sweeps, tiny pointer part.

    art is in the pointer-intensive set but gains little from LDS
    prefetching (paper Table 6: +1.3 %); the stream prefetcher does the
    work.  CDP sees few pointers — weight arrays hold non-pointer values.
    """

    name = "art"
    suite = "spec2000"

    def _build(self, ctx: BuildContext):
        f1 = build_array(
            ctx.memory, ctx.arena("f1_weights", 800_000), ctx.n(44000), rng=ctx.rng
        )
        f2 = build_array(
            ctx.memory, ctx.arena("f2_weights", 400_000), ctx.n(20000), rng=ctx.rng
        )
        neuron_list = build_list(
            ctx.memory,
            ctx.arena("neurons", 40_000),
            ctx.n(1100),
            data_words=2,
            rng=ctx.rng,
            name="neuron",
        )
        rng = random.Random(ctx.rng.randrange(1 << 30))
        list_site = "art.winners"

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            return emit(
                program,
                interleave(
                    program,
                    [
                        sequential_walk(
                            program, ctx.pcs, f1, "art.f1",
                            n_passes=2, work_per_access=10,
                        ),
                        sequential_walk(
                            program, ctx.pcs, f2, "art.f2", stride_words=2,
                            n_passes=2, work_per_access=10,
                        ),
                        walk(program, ctx.pcs, neuron_list, list_site, work_per_node=40),
                    ],
                    rng,
                ),
            )

        return factory, lds_sites_for(list_site, ("key", "next"))


class Ammp(Workload):
    """Molecular dynamics: atom-list walks with neighbour-array streaming.

    ammp's atom records live on linked lists walked fully every timestep —
    beneficial pointer groups throughout — alongside coordinate arrays the
    stream prefetcher handles.  One of the paper's big winners (+74.9 %).
    """

    name = "ammp"
    suite = "spec2000"

    def _build(self, ctx: BuildContext):
        n_atoms = ctx.n(4600)
        atoms = build_list(
            ctx.memory,
            ctx.arena("atoms", 600_000),
            n_atoms,
            data_words=1,
            rng=ctx.rng,
            chunk_nodes=8,
            name="atom",
            satellite_allocator=ctx.arena("atom_coords", n_atoms * 40 + 64),
            satellite_words=8,
        )
        coords = build_array(
            ctx.memory, ctx.arena("coords", 400_000), ctx.n(20000), rng=ctx.rng
        )
        timesteps = 3
        rng = random.Random(ctx.rng.randrange(1 << 30))
        list_site = "ammp.atoms"

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            phases = []
            for __ in range(timesteps):
                phases.append(
                    walk(
                        program, ctx.pcs, atoms, list_site,
                        touch_data=True, deref_satellite=True, work_per_node=75,
                    )
                )
                phases.append(
                    sequential_walk(
                        program, ctx.pcs, coords, "ammp.coords",
                        n_passes=1, work_per_access=10,
                    )
                )
            return emit(program, interleave(program, phases, rng))

        return factory, lds_sites_for(
            list_site, ("key", "data", "rec", "rec_data", "next")
        )
