"""Benchmark analogs: SPEC / Olden / pfast pointer-intensive workloads and
the non-pointer-intensive set."""

from repro.workloads.base import (
    INPUT_SETS,
    BuildContext,
    Workload,
    WorkloadInstance,
    emit,
    interleave,
    lds_sites_for,
)
from repro.workloads.registry import (
    POINTER_INTENSIVE_ORDER,
    REGISTRY,
    all_names,
    get_workload,
    non_pointer_names,
    pointer_intensive_names,
)

__all__ = [
    "BuildContext",
    "INPUT_SETS",
    "POINTER_INTENSIVE_ORDER",
    "REGISTRY",
    "Workload",
    "WorkloadInstance",
    "all_names",
    "emit",
    "get_workload",
    "interleave",
    "lds_sites_for",
    "non_pointer_names",
    "pointer_intensive_names",
]
