"""pfast analog — parallel fast alignment search tool (paper Section 5).

The bioinformatics workload the paper adds to the SPEC/Olden suites:
genome alignment candidate lists are pointer-chased per query against a
streamed reference sequence.  Roughly a third of CDP's prefetches are
useful here (Table 1: 37.4 %) — candidate chains are walked until a score
threshold, so tail pointers go unused.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.instruction import MemOp
from repro.structures.arrays import build_array, sequential_walk
from repro.structures.base import Program
from repro.structures.linked_list import build_list, walk
from repro.workloads.base import BuildContext, Workload, emit, interleave, lds_sites_for


class Pfast(Workload):
    name = "pfast"
    suite = "bio"

    def _build(self, ctx: BuildContext):
        reference = build_array(
            ctx.memory, ctx.arena("reference", 700_000), ctx.n(34000), rng=ctx.rng
        )
        n_chains = 10
        chains = []
        chain_arena = ctx.arena("candidates", 700_000)
        segment_arena = ctx.arena("segments", 900_000)
        for index in range(n_chains):
            chains.append(
                build_list(
                    ctx.memory,
                    chain_arena,
                    ctx.n(1500),
                    data_words=2,
                    rng=ctx.rng,
                    chunk_nodes=8,
                    name="candidate",
                    satellite_allocator=segment_arena,
                    satellite_words=8,
                )
            )
        rng = random.Random(ctx.rng.randrange(1 << 30))
        chain_site = "pfast.candidates"
        n_queries = ctx.n(56, minimum=4)

        def queries(program: Program) -> Iterator[None]:
            for __ in range(n_queries):
                chain = rng.choice(chains)
                # Walk until an alignment score threshold: a random prefix.
                prefix = rng.randrange(len(chain) // 4, len(chain))
                yield from walk(
                    program,
                    ctx.pcs,
                    chain,
                    chain_site,
                    touch_data=True,
                    max_nodes=prefix,
                    deref_satellite=True,
                    work_per_node=60,
                )
                yield

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            return emit(
                program,
                interleave(
                    program,
                    [
                        queries(program),
                        sequential_walk(
                            program, ctx.pcs, reference, "pfast.reference",
                            n_passes=1, work_per_access=10,
                        ),
                    ],
                    rng,
                ),
            )

        return factory, lds_sites_for(
            chain_site, ("key", "data", "rec", "rec_data", "next")
        )
