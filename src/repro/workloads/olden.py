"""Olden benchmark analogs: bisort, health, mst, perimeter, voronoi.

These five drive the paper's most distinctive behaviours:

* **bisort** — bitonic sort with subtree swaps; greedy CDP is disastrous
  (Section 2.3).
* **health** — hierarchical village/patient linked lists; the benchmark
  where LDS prefetching pays off enormously (the paper reports it
  separately because it skews averages).
* **mst** — the hash-chain walk of Figure 5: only the ``next`` pointer
  group is beneficial; the data-pointer groups are harmful.
* **perimeter** — dense quadtree visits where every pointer loaded is
  dereferenced; CDP accuracy is the suite's highest (83.3 %).
* **voronoi** — tree construction/queries with a mix of fully-walked and
  half-taken pointer groups.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.core.instruction import MemOp
from repro.memory.address import WORD_SIZE
from repro.structures.base import Program, SilentWriter, StructLayout
from repro.structures.binary_tree import (
    bitonic_sort_traversal,
    build_balanced_tree,
    descend,
    inorder_walk,
)
from repro.structures.hash_table import build_hash_table, hash_lookup
from repro.structures.quadtree import build_quadtree, perimeter_walk
from repro.workloads.base import BuildContext, Workload, emit, lds_sites_for


class Bisort(Workload):
    """Bitonic sort over a binary tree with frequent subtree swaps."""

    name = "bisort"
    suite = "olden"

    def _build(self, ctx: BuildContext):
        n_nodes = ctx.n(14000)
        arena = ctx.arena("tree", n_nodes * 32)
        tree = build_balanced_tree(
            ctx.memory, arena, n_nodes, data_words=1, rng=ctx.rng
        )
        rounds = ctx.n(1500, minimum=40)  # one merge descent per round
        site = "bisort.sort"
        rng = random.Random(ctx.rng.randrange(1 << 30))

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            return emit(
                program,
                bitonic_sort_traversal(
                    program, ctx.pcs, tree, rng, site,
                    n_rounds=rounds, swap_probability=0.45, work_per_node=70,
                ),
            )

        return factory, lds_sites_for(site, ("key", "left", "right"))


class Health(Workload):
    """Hierarchy of villages, each owning a linked patient list.

    Patient nodes are allocated round-robin across villages — the layout a
    growing simulation heap produces — so consecutive list nodes land in
    different cache blocks: stream prefetchers see noise, pointer
    prefetchers see a chain.
    """

    name = "health"
    suite = "olden"

    VILLAGE = StructLayout(
        "village", ("level", "patients", "child_0", "child_1", "child_2", "child_3")
    )
    PATIENT = StructLayout("patient", ("id", "record", "status", "next"))
    RECORD_WORDS = 8  # the patient's medical record: a 32-byte satellite

    def _build(self, ctx: BuildContext):
        branching = 4
        depth = 2  # 1 + 4 + 16 = 21 villages
        n_villages = sum(branching ** level for level in range(depth + 1))
        patients_per_village = ctx.n(320, minimum=6)
        village_arena = ctx.arena("villages", n_villages * self.VILLAGE.size + 64)
        patient_arena = ctx.arena(
            "patients", n_villages * patients_per_village * self.PATIENT.size + 64
        )
        record_arena = ctx.arena(
            "records",
            n_villages * patients_per_village * self.RECORD_WORDS * 4 + 64,
        )
        writer = SilentWriter(ctx.memory)

        villages: List[int] = [
            village_arena.allocate(self.VILLAGE.size) for __ in range(n_villages)
        ]
        for index, village in enumerate(villages):
            children = {
                f"child_{c}": (
                    villages[index * branching + 1 + c]
                    if index * branching + 1 + c < n_villages
                    else 0
                )
                for c in range(branching)
            }
            writer.store_fields(
                self.VILLAGE, village, {"level": 0, "patients": 0, **children}
            )
        # Chunked round-robin patient allocation: each village's list grows
        # in bursts of CHUNK contiguous nodes, with bursts from different
        # villages interleaved — the layout a growing simulation heap
        # produces.  Chains are chunk-local (pointer prefetchers can run
        # along them) but jump across memory at every burst boundary
        # (stream prefetchers cannot).  Medical records are placed
        # independently of list order (shuffled), so record derefs defeat
        # stream prefetching entirely.
        total_patients = n_villages * patients_per_village
        record_slots = [
            record_arena.allocate(self.RECORD_WORDS * 4)
            for __ in range(total_patients)
        ]
        ctx.rng.shuffle(record_slots)
        chunk = 8
        tails = [0] * n_villages
        remaining = [patients_per_village] * n_villages
        while any(remaining):
            for v_index, village in enumerate(villages):
                burst = min(chunk, remaining[v_index])
                remaining[v_index] -= burst
                for __ in range(burst):
                    patient = patient_arena.allocate(self.PATIENT.size)
                    record = record_slots.pop()
                    for word in range(self.RECORD_WORDS):
                        ctx.memory.write_word(
                            record + word * 4, ctx.rng.randrange(1, 1000)
                        )
                    writer.store_fields(
                        self.PATIENT,
                        patient,
                        {
                            "id": ctx.rng.randrange(1, 1 << 16),
                            "record": record,
                            "status": ctx.rng.randrange(0, 4),
                            "next": 0,
                        },
                    )
                    if tails[v_index]:
                        writer.store_fields(
                            self.PATIENT, tails[v_index], {"next": patient}
                        )
                    else:
                        writer.store_fields(
                            self.VILLAGE, village, {"patients": patient}
                        )
                    tails[v_index] = patient

        rounds = ctx.n(3, minimum=1)
        site = "health.sim"
        root = villages[0]

        def simulate(program: Program) -> Iterator[None]:
            pcs = ctx.pcs
            pc_child = [pcs.pc(f"{site}.child_{c}") for c in range(branching)]
            pc_patients = pcs.pc(f"{site}.patients")
            pc_id = pcs.pc(f"{site}.id")
            pc_record = pcs.pc(f"{site}.record")
            pc_rec_data = pcs.pc(f"{site}.rec_data")
            pc_status = pcs.pc(f"{site}.status")
            pc_next = pcs.pc(f"{site}.next")
            pc_update = pcs.pc(f"{site}.visit_update")
            for __ in range(rounds):
                stack = [root]
                while stack:
                    village = stack.pop()
                    if not village:
                        continue
                    program.work(40)
                    for c in range(branching):
                        child = program.load(
                            pc_child[c],
                            self.VILLAGE.addr_of(village, f"child_{c}"),
                            base=village,
                        )
                        if child:
                            stack.append(child)
                    patient = program.load(
                        pc_patients,
                        self.VILLAGE.addr_of(village, "patients"),
                        base=village,
                    )
                    while patient:
                        program.work(95)
                        program.load(pc_id, self.PATIENT.addr_of(patient, "id"), base=patient)
                        record = program.load(
                            pc_record,
                            self.PATIENT.addr_of(patient, "record"),
                            base=patient,
                        )
                        # Examine the patient's medical record (2 words).
                        program.load(pc_rec_data, record, base=record)
                        program.load(pc_rec_data, record + 4, base=record)
                        status = program.load(
                            pc_status,
                            self.PATIENT.addr_of(patient, "status"),
                            base=patient,
                        )
                        if status == 0:
                            program.store(pc_update, record + 8, 1)
                        patient = program.load(
                            pc_next,
                            self.PATIENT.addr_of(patient, "next"),
                            base=patient,
                        )
                        yield
                    yield

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            return emit(program, simulate(program))

        lds = [f"{site}.child_{c}" for c in range(branching)]
        lds += [
            f"{site}.patients",
            f"{site}.id",
            f"{site}.record",
            f"{site}.rec_data",
            f"{site}.status",
            f"{site}.next",
        ]
        return factory, lds


class Mst(Workload):
    """Repeated hash-table lookups over scattered chains (paper Figure 5)."""

    name = "mst"
    suite = "olden"

    def _build(self, ctx: BuildContext):
        n_buckets = ctx.n(512, minimum=16)
        n_keys = ctx.n(12000, minimum=64)
        bucket_arena = ctx.arena("buckets", n_buckets * WORD_SIZE + 64)
        node_arena = ctx.arena("nodes", n_keys * 16 + 64)
        data_arena = ctx.arena("records", n_keys * 2 * 16 + 64)
        table = build_hash_table(
            ctx.memory,
            bucket_arena,
            node_arena,
            n_buckets,
            n_keys,
            rng=ctx.rng,
            data_allocator=data_arena,
        )
        n_lookups = ctx.n(650, minimum=30)
        site = "mst.lookup"
        key_space = max(4 * n_keys, 16)
        rng = random.Random(ctx.rng.randrange(1 << 30))

        def lookups(program: Program) -> Iterator[None]:
            for __ in range(n_lookups):
                # Mostly-absent keys: chains walk to the end (Figure 5's
                # "only one node contains the key being searched").
                if rng.random() < 0.35:
                    key = rng.choice(table.keys)
                else:
                    key = rng.randrange(1, key_space)
                yield from hash_lookup(
                    program, ctx.pcs, table, key, site,
                    data_are_pointers=True, work_per_probe=45,
                )
                yield

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            return emit(program, lookups(program))

        return factory, lds_sites_for(
            site, ("bucket_head", "key", "next", "d1", "d2", "data_deref")
        )


class Perimeter(Workload):
    """Full quadtree visits: every loaded pointer is dereferenced."""

    name = "perimeter"
    suite = "olden"

    def _build(self, ctx: BuildContext):
        depth = 7 if ctx.scale > 0.5 else (5 if ctx.scale > 0.2 else 4)
        arena = ctx.arena("quadtree", 8_000_000)
        tree = build_quadtree(
            ctx.memory, arena, depth, leaf_probability=0.24, rng=ctx.rng
        )
        rounds = 2
        site = "perimeter.walk"

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            walks = [
                perimeter_walk(program, ctx.pcs, tree, site, work_per_node=55)
                for __ in range(rounds)
            ]
            return emit(program, *walks)

        return factory, lds_sites_for(site, ("color", "nw", "ne", "sw", "se"))


class Voronoi(Workload):
    """Delaunay-style tree usage: one full walk plus many point locations."""

    name = "voronoi"
    suite = "olden"

    def _build(self, ctx: BuildContext):
        n_nodes = ctx.n(5200)
        arena = ctx.arena("tree", n_nodes * 32)
        tree = build_balanced_tree(
            ctx.memory, arena, n_nodes, data_words=2, rng=ctx.rng
        )
        n_descents = ctx.n(420, minimum=16)
        walk_site = "voronoi.walk"
        descend_site = "voronoi.locate"
        rng = random.Random(ctx.rng.randrange(1 << 30))

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            return emit(
                program,
                inorder_walk(
                    program, ctx.pcs, tree, walk_site,
                    touch_data=True, work_per_node=60,
                ),
                descend(
                    program, ctx.pcs, tree, rng, descend_site, n_descents,
                    work_per_node=60,
                ),
            )

        lds = lds_sites_for(walk_site, ("key", "data", "left", "right"))
        lds += lds_sites_for(descend_site, ("key", "left", "right"))
        return factory, lds
