"""Workload framework: benchmark analogs that execute in simulated memory.

A workload *builds* real data structures in a fresh simulated address space
and returns a single-use trace generator that traverses them, emitting
``MemOp`` records while mutating memory (so content-directed scans always
see current pointer values).

Input sets mirror the paper's methodology (Section 5): ``ref`` is the
measured input; ``train`` is a smaller input with a different seed, used by
the profiling compiler (Section 6.1.6 checks sensitivity to this split);
``test`` is a miniature input for unit tests.

Every static access site is pre-registered in :meth:`Workload.build` so PCs
are identical between train and ref instances — the property that lets a
hint table profiled on train apply to ref, exactly as a compiler embedding
hints in the binary would behave.
"""

from __future__ import annotations

import itertools
import random
import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.core.instruction import MemOp, PcAllocator
from repro.memory.alloc import ArenaMap
from repro.memory.backing import SimulatedMemory
from repro.structures.base import Program

#: input set -> (size scale, seed salt)
#:
#: train is smaller than ref but must stay in the same cache-pressure
#: regime (working set >> L2) for PG classifications to transfer, just as
#: the paper's train inputs do; 0.75x keeps every footprint comfortably
#: above the scaled L2 while still being a genuinely different input.
INPUT_SETS: Dict[str, Tuple[float, int]] = {
    "ref": (1.0, 0xA11CE),
    "train": (0.75, 0x7E571),
    "test": (0.08, 0x0FACE),
    # For SystemConfig.paper() (1 MB L2): footprints scale with the cache
    # so the paper-scale machine sees the same pressure regime.  Traces
    # are ~6x longer; expect runs of minutes each.
    "large": (6.0, 0xB16CA),
}


@dataclass
class BuildContext:
    """Everything a workload's _build needs to lay out its world."""

    memory: SimulatedMemory
    pcs: PcAllocator
    rng: random.Random
    scale: float
    arenas: ArenaMap

    def n(self, base: int, minimum: int = 4) -> int:
        """Scale an element count by the input set's size factor."""
        return max(minimum, int(base * self.scale))

    def arena(self, name: str, size: int, with_free_list: bool = False):
        return self.arenas.new_arena(name, size, with_free_list=with_free_list)


@dataclass
class WorkloadInstance:
    """A built workload, ready to produce its (single-use) trace."""

    name: str
    input_set: str
    memory: SimulatedMemory
    pcs: PcAllocator
    lds_pcs: Set[int]
    _trace_factory: Callable[[], Iterator[MemOp]] = field(repr=False)
    _consumed: bool = field(default=False, repr=False)

    def trace(self) -> Iterator[MemOp]:
        """The trace generator.  Single use: traversals mutate memory."""
        if self._consumed:
            raise RuntimeError(
                f"trace of {self.name}/{self.input_set} already consumed; "
                "build a fresh instance"
            )
        self._consumed = True
        return self._trace_factory()


class Workload(ABC):
    """One benchmark analog.  Subclasses define name and _build."""

    name: str = ""
    suite: str = ""
    pointer_intensive: bool = True

    def seed(self, input_set: str) -> int:
        """Deterministic per-(workload, input-set) seed."""
        __, salt = INPUT_SETS[input_set]
        return zlib.crc32(f"{self.name}:{input_set}".encode()) ^ salt

    def build(self, input_set: str = "ref") -> WorkloadInstance:
        """Construct the data structures and return a runnable instance."""
        if input_set not in INPUT_SETS:
            raise ValueError(
                f"unknown input set {input_set!r}; choose from {sorted(INPUT_SETS)}"
            )
        scale, __ = INPUT_SETS[input_set]
        memory = SimulatedMemory()
        pcs = PcAllocator()
        rng = random.Random(self.seed(input_set))
        context = BuildContext(memory, pcs, rng, scale, ArenaMap())
        trace_factory, lds_sites = self._build(context)
        # Pre-register every LDS site so oracle PCs and hint-table PCs are
        # stable regardless of traversal interleaving.
        lds_pcs = {pcs.pc(site) for site in lds_sites}
        return WorkloadInstance(
            self.name, input_set, memory, pcs, lds_pcs, trace_factory
        )

    @abstractmethod
    def _build(
        self, ctx: BuildContext
    ) -> Tuple[Callable[[], Iterator[MemOp]], List[str]]:
        """Lay out structures; return (trace factory, LDS site names)."""


def emit(program: Program, *step_iterators: Iterable) -> Iterator[MemOp]:
    """Run step iterators in sequence, flushing buffered ops per step.

    Inputs may be plain step iterators (yielding None per step) or
    op-yielding iterators such as :func:`interleave` — yielded ``MemOp``
    items are passed through.
    """
    for step in itertools.chain(*step_iterators):
        if isinstance(step, MemOp):
            yield step
        for op in program.drain():
            yield op
    for op in program.drain():
        yield op


def interleave(
    program: Program,
    step_iterators: Sequence[Iterable[None]],
    rng: random.Random,
    burst: int = 250,
) -> Iterator[MemOp]:
    """Interleave several step iterators in bursts (phased behaviour).

    Models programs that alternate between, e.g., a streaming pass and a
    pointer walk: real code runs an inner loop for a while before
    switching activities, so each draw runs the chosen iterator for a
    geometric burst (mean *burst* steps, i.e. thousands of instructions)
    rather than a single step — per-access alternation would shred every
    prefetcher's locality in a way no compiled program does.
    """
    active = [iter(it) for it in step_iterators]
    switch_probability = 1.0 / max(1, burst)
    while active:
        chosen = rng.randrange(len(active))
        iterator = active[chosen]
        while True:
            if next(iterator, StopIteration) is StopIteration:
                active.pop(chosen)
                break
            for op in program.drain():
                yield op
            if rng.random() < switch_probability:
                break
    for op in program.drain():
        yield op


def lds_sites_for(site: str, fields: Sequence[str]) -> List[str]:
    """Helper: fully-qualified LDS site names for a traversal call."""
    return [f"{site}.{field}" for field in fields]
