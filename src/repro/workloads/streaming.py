"""Non-pointer-intensive benchmark analogs.

Used for paper Section 6.7 (our mechanism must not hurt workloads with no
LDS misses) and as the non-intensive halves of the multi-core mixes in
Section 6.6.  Their misses are streaming or effectively random — nothing
for CDP to find, plenty for the stream prefetcher.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.instruction import MemOp
from repro.structures.arrays import build_array, random_walk, sequential_walk
from repro.structures.base import Program
from repro.workloads.base import BuildContext, Workload, emit, interleave


class Libquantum(Workload):
    """Single huge sequential sweep, repeated — ideal stream territory."""

    name = "libquantum"
    suite = "spec2006"
    pointer_intensive = False

    def _build(self, ctx: BuildContext):
        reg = build_array(
            ctx.memory, ctx.arena("qreg", 900_000), ctx.n(52000), rng=ctx.rng
        )

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            return emit(
                program,
                sequential_walk(
                    program, ctx.pcs, reg, "libquantum.gate",
                    n_passes=2, store_fraction=0.3, rng=ctx.rng,
                    work_per_access=12,
                ),
            )

        return factory, []


class Gemsfdtd(Workload):
    """Finite-difference time domain: several strided field sweeps."""

    name = "GemsFDTD"
    suite = "spec2006"
    pointer_intensive = False

    def _build(self, ctx: BuildContext):
        fields = [
            build_array(
                ctx.memory, ctx.arena(f"field_{i}", 400_000), ctx.n(22000), rng=ctx.rng
            )
            for i in range(3)
        ]
        rng = random.Random(ctx.rng.randrange(1 << 30))

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            sweeps = [
                sequential_walk(
                    program, ctx.pcs, array, f"gems.sweep_{i}",
                    stride_words=(1 if i == 0 else 2), n_passes=2, work_per_access=12,
                )
                for i, array in enumerate(fields)
            ]
            return emit(program, interleave(program, sweeps, rng))

        return factory, []


class H264ref(Workload):
    """Video encoding: block-sequential reads with local random probes."""

    name = "h264ref"
    suite = "spec2006"
    pointer_intensive = False

    def _build(self, ctx: BuildContext):
        frame = build_array(
            ctx.memory, ctx.arena("frame", 600_000), ctx.n(30000), rng=ctx.rng
        )
        search = build_array(
            ctx.memory, ctx.arena("search", 120_000), ctx.n(6000), rng=ctx.rng
        )
        rng = random.Random(ctx.rng.randrange(1 << 30))

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            return emit(
                program,
                interleave(
                    program,
                    [
                        sequential_walk(
                            program, ctx.pcs, frame, "h264.frame",
                            n_passes=2, work_per_access=12,
                        ),
                        random_walk(
                            program, ctx.pcs, search, rng, "h264.motion",
                            n_accesses=ctx.n(2400, minimum=20), work_per_access=20,
                        ),
                    ],
                    rng,
                ),
            )

        return factory, []


class Bwaves(Workload):
    """Blast waves: strided FP sweeps over a large state array."""

    name = "bwaves"
    suite = "spec2006"
    pointer_intensive = False

    def _build(self, ctx: BuildContext):
        state = build_array(
            ctx.memory, ctx.arena("state", 800_000), ctx.n(44000), rng=ctx.rng
        )

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            return emit(
                program,
                sequential_walk(
                    program, ctx.pcs, state, "bwaves.sweep", stride_words=4,
                    n_passes=3, work_per_access=14,
                ),
            )

        return factory, []


class Milc(Workload):
    """Lattice QCD: sequential sweeps with periodic writes."""

    name = "milc"
    suite = "spec2006"
    pointer_intensive = False

    def _build(self, ctx: BuildContext):
        lattice = build_array(
            ctx.memory, ctx.arena("lattice", 700_000), ctx.n(38000), rng=ctx.rng
        )

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            return emit(
                program,
                sequential_walk(
                    program, ctx.pcs, lattice, "milc.sweep",
                    n_passes=2, store_fraction=0.2, rng=ctx.rng,
                    work_per_access=12,
                ),
            )

        return factory, []


class Sjeng(Workload):
    """Chess search: hash-probe dominated — random, prefetch-resistant."""

    name = "sjeng"
    suite = "spec2006"
    pointer_intensive = False

    def _build(self, ctx: BuildContext):
        # The transposition table dwarfs the cache (real ones are GBs):
        # random probes must not be coverable by luck.
        transposition = build_array(
            ctx.memory, ctx.arena("ttable", 1_600_000), ctx.n(96000), rng=ctx.rng
        )
        rng = random.Random(ctx.rng.randrange(1 << 30))

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            return emit(
                program,
                random_walk(
                    program, ctx.pcs, transposition, rng, "sjeng.probe",
                    n_accesses=ctx.n(9000, minimum=50), work_per_access=40,
                ),
            )

        return factory, []
