"""SPEC CPU2000/2006 integer benchmark analogs (the pointer-intensive ones).

Each analog reproduces the documented memory behaviour that matters to the
paper's mechanisms — the ratio of streaming to pointer-chasing misses, and
which pointer groups are beneficial — not the computation itself.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.core.instruction import MemOp
from repro.memory.address import WORD_SIZE
from repro.structures.arrays import build_array, sequential_walk
from repro.structures.base import Program, SilentWriter, StructLayout
from repro.structures.binary_tree import (
    build_balanced_tree,
    descend,
    inorder_walk,
)
from repro.structures.graph import build_graph, pivot_walk
from repro.structures.hash_table import build_hash_table, hash_lookup
from repro.structures.linked_list import build_list, walk
from repro.workloads.base import (
    BuildContext,
    Workload,
    emit,
    interleave,
    lds_sites_for,
)


class Mcf(Workload):
    """Network simplex: data-dependent arc chasing through a huge graph."""

    name = "mcf"
    suite = "spec2006"

    def _build(self, ctx: BuildContext):
        n_nodes = ctx.n(14000)
        arena = ctx.arena("network", n_nodes * 24 + 64)
        graph = build_graph(
            ctx.memory, arena, n_nodes, n_arcs_per_node=4, data_words=2, rng=ctx.rng
        )
        n_steps = ctx.n(7200, minimum=100)
        site = "mcf.simplex"
        rng = random.Random(ctx.rng.randrange(1 << 30))

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            return emit(
                program, pivot_walk(
                    program, ctx.pcs, graph, rng, site, n_steps, work_per_step=70
                )
            )

        lds = [f"{site}.cost"] + [f"{site}.arc_{a}" for a in range(4)]
        return factory, lds


class Astar(Workload):
    """Grid scans (streaming) interleaved with open-list pointer walks."""

    name = "astar"
    suite = "spec2006"

    def _build(self, ctx: BuildContext):
        grid = build_array(
            ctx.memory, ctx.arena("grid", 600_000), ctx.n(36000), rng=ctx.rng
        )
        list_arena = ctx.arena("openlist", 400_000)
        n_open = ctx.n(6400)
        open_list = build_list(
            ctx.memory,
            list_arena,
            n_open,
            data_words=2,
            rng=ctx.rng,
            chunk_nodes=8,
            name="astar_node",
            satellite_allocator=ctx.arena("astar_states", n_open * 24 + 64),
            satellite_words=4,
        )
        rng = random.Random(ctx.rng.randrange(1 << 30))
        grid_site = "astar.grid"
        list_site = "astar.openlist"
        n_list_rounds = 3

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            walks = [
                sequential_walk(
                    program, ctx.pcs, grid, grid_site, stride_words=2,
                    n_passes=1, work_per_access=10,
                ),
            ]
            walks += [
                walk(
                    program, ctx.pcs, open_list, list_site,
                    touch_data=True, deref_satellite=True, work_per_node=65,
                )
                for __ in range(n_list_rounds)
            ]
            return emit(
                program,
                interleave(program, walks, rng),
            )

        return factory, lds_sites_for(
            list_site, ("key", "data", "rec", "rec_data", "next")
        )


class Xalancbmk(Workload):
    """DOM-tree path queries: wide nodes, a single child taken per level."""

    name = "xalancbmk"
    suite = "spec2006"

    FANOUT = 6
    NODE = StructLayout(
        "dom_node",
        ("tag", "value") + tuple(f"child_{c}" for c in range(6)),
    )

    def _build(self, ctx: BuildContext):
        n_nodes = ctx.n(20000)
        arena = ctx.arena("dom", n_nodes * self.NODE.size + 64)
        writer = SilentWriter(ctx.memory)
        nodes: List[int] = [
            arena.allocate(self.NODE.size) for __ in range(n_nodes)
        ]
        for index, node in enumerate(nodes):
            fields = {"tag": ctx.rng.randrange(1, 64), "value": ctx.rng.randrange(1, 512)}
            for c in range(self.FANOUT):
                child_index = index * self.FANOUT + 1 + c
                fields[f"child_{c}"] = (
                    nodes[child_index] if child_index < n_nodes else 0
                )
            writer.store_fields(self.NODE, node, fields)

        n_queries = ctx.n(1800, minimum=40)
        site = "xalancbmk.xpath"
        rng = random.Random(ctx.rng.randrange(1 << 30))
        root = nodes[0]

        def queries(program: Program) -> Iterator[None]:
            pcs = ctx.pcs
            pc_tag = pcs.pc(f"{site}.tag")
            pc_child = [pcs.pc(f"{site}.child_{c}") for c in range(self.FANOUT)]
            for __ in range(n_queries):
                node = root
                while node:
                    program.work(65)
                    tag = program.load(pc_tag, self.NODE.addr_of(node, "tag"), base=node)
                    choice = (tag + rng.randrange(self.FANOUT)) % self.FANOUT
                    node = program.load(
                        pc_child[choice],
                        self.NODE.addr_of(node, f"child_{choice}"),
                        base=node,
                    )
                yield

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            return emit(program, queries(program))

        lds = [f"{site}.tag"] + [f"{site}.child_{c}" for c in range(self.FANOUT)]
        return factory, lds


class Omnetpp(Workload):
    """Discrete-event simulation: sorted event queue over a drifting heap.

    Events carry a pointer to a message payload object; popping an event
    dereferences its payload (always — a beneficial pointer group).  The
    queue is never recycled (fresh allocations drift through the heap),
    so the walk keeps touching cold blocks the way a long-running
    simulator's event heap does.
    """

    name = "omnetpp"
    suite = "spec2006"

    EVENT = StructLayout("event", ("time", "kind", "payload", "next"))
    PAYLOAD_WORDS = 8

    def _build(self, ctx: BuildContext):
        n_initial = ctx.n(4800)
        n_events = ctx.n(2600, minimum=40)
        arena = ctx.arena(
            "events", (n_initial + n_events + 64) * self.EVENT.size + 64
        )
        payload_arena = ctx.arena(
            "payloads", (n_initial + n_events + 64) * self.PAYLOAD_WORDS * 4 + 64
        )
        writer = SilentWriter(ctx.memory)

        def new_payload(rng: random.Random) -> int:
            payload = payload_arena.allocate(self.PAYLOAD_WORDS * 4)
            for word in range(self.PAYLOAD_WORDS):
                ctx.memory.write_word(payload + word * 4, rng.randrange(1, 512))
            return payload

        # Build the initial sorted queue with a shuffled layout and
        # shuffled payload placement (messages allocated at random times).
        addrs = [arena.allocate(self.EVENT.size) for __ in range(n_initial)]
        payloads = [new_payload(ctx.rng) for __ in range(n_initial)]
        chunks = [addrs[i:i + 8] for i in range(0, n_initial, 8)]
        ctx.rng.shuffle(chunks)
        shuffled = [addr for chunk in chunks for addr in chunk]
        ctx.rng.shuffle(payloads)
        times = sorted(ctx.rng.randrange(1, 1 << 20) for __ in range(n_initial))
        for addr, time, payload in zip(shuffled, times, payloads):
            writer.store_fields(
                self.EVENT,
                addr,
                {
                    "time": time,
                    "kind": ctx.rng.randrange(8),
                    "payload": payload,
                    "next": 0,
                },
            )
        for prev, nxt in zip(shuffled, shuffled[1:]):
            writer.store_fields(self.EVENT, prev, {"next": nxt})
        head_cell = ctx.arena("queue_cells", 64).allocate(WORD_SIZE)
        tail_cell = head_cell + WORD_SIZE
        ctx.memory.write_word(head_cell, shuffled[0])
        ctx.memory.write_word(tail_cell, shuffled[-1])

        site = "omnetpp.sched"
        rng = random.Random(ctx.rng.randrange(1 << 30))

        def simulate(program: Program) -> Iterator[None]:
            """Drain the event queue, handling each message.

            A calendar-queue scheduler makes insertion O(1) (a bucket
            append), so the memory behaviour is dominated by the *drain*:
            pop the head, read the event, dereference its message payload.
            40 % of events schedule a follow-up, appended at the tail.
            """
            pcs = ctx.pcs
            pc_head = pcs.pc(f"{site}.head")
            pc_time = pcs.pc(f"{site}.time")
            pc_kind = pcs.pc(f"{site}.kind")
            pc_payload = pcs.pc(f"{site}.payload")
            pc_msg = pcs.pc(f"{site}.msg_data")
            pc_next = pcs.pc(f"{site}.next")
            pc_tail = pcs.pc(f"{site}.tail")
            pc_link = pcs.pc(f"{site}.link_store")
            pc_pop = pcs.pc(f"{site}.pop_store")
            for __ in range(n_events):
                # Pop the head event; cancelled events (a quarter — real
                # omnetpp models cancel timers constantly) are unlinked
                # without their message ever being read, so greedily
                # prefetched payloads go unused.
                head = program.load(pc_head, head_cell)
                if not head:
                    return
                program.work(90)
                program.load(pc_time, self.EVENT.addr_of(head, "time"), base=head)
                cancelled = rng.random() < 0.25
                if not cancelled:
                    program.load(pc_kind, self.EVENT.addr_of(head, "kind"), base=head)
                    message = program.load(
                        pc_payload, self.EVENT.addr_of(head, "payload"), base=head
                    )
                    program.load(pc_msg, message, base=message)
                    program.load(pc_msg, message + 4, base=message)
                nxt = program.load(pc_next, self.EVENT.addr_of(head, "next"), base=head)
                program.store(pc_pop, head_cell, nxt)
                # Schedule a follow-up event at the tail (O(1) append).
                if rng.random() < 0.4:
                    event = arena.allocate(self.EVENT.size)
                    writer.store_fields(
                        self.EVENT,
                        event,
                        {
                            "time": rng.randrange(1, 1 << 20),
                            "kind": rng.randrange(8),
                            "payload": new_payload(rng),
                            "next": 0,
                        },
                    )
                    tail = program.load(pc_tail, tail_cell)
                    if tail:
                        program.store(
                            pc_link, self.EVENT.addr_of(tail, "next"), event
                        )
                    program.store(pc_link, tail_cell, event)
                yield

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            return emit(program, simulate(program))

        return factory, [
            f"{site}.{f}"
            for f in ("head", "time", "kind", "payload", "msg_data", "next")
        ]


class Parser(Workload):
    """Dictionary lookups: hash chains plus word-list scans."""

    name = "parser"
    suite = "spec2000"

    def _build(self, ctx: BuildContext):
        n_buckets = ctx.n(128, minimum=8)
        n_keys = ctx.n(2200, minimum=64)
        table = build_hash_table(
            ctx.memory,
            ctx.arena("dict_buckets", n_buckets * WORD_SIZE + 64),
            ctx.arena("dict_nodes", n_keys * 16 + 64),
            n_buckets,
            n_keys,
            rng=ctx.rng,
        )
        word_list = build_list(
            ctx.memory,
            ctx.arena("wordlist", 300_000),
            ctx.n(2600),
            data_words=1,
            rng=ctx.rng,
            chunk_nodes=8,
            name="word_node",
        )
        n_lookups = ctx.n(900, minimum=30)
        lookup_site = "parser.dict"
        list_site = "parser.words"
        rng = random.Random(ctx.rng.randrange(1 << 30))

        def lookups(program: Program) -> Iterator[None]:
            for __ in range(n_lookups):
                # Parser mostly looks up words that exist.
                if rng.random() < 0.7:
                    key = rng.choice(table.keys)
                else:
                    key = rng.randrange(1, max(4 * n_keys, 16))
                yield from hash_lookup(
                    program, ctx.pcs, table, key, lookup_site, work_per_probe=45
                )
                yield

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            return emit(
                program,
                interleave(
                    program,
                    [
                        lookups(program),
                        walk(program, ctx.pcs, word_list, list_site, work_per_node=50),
                        walk(program, ctx.pcs, word_list, list_site, work_per_node=50),
                    ],
                    rng,
                ),
            )

        lds = lds_sites_for(lookup_site, ("bucket_head", "key", "next", "d1", "d2"))
        lds += lds_sites_for(list_site, ("key", "next"))
        return factory, lds


class Perlbench(Workload):
    """Interpreter analog: symbol-table chains plus string streaming."""

    name = "perlbench"
    suite = "spec2006"

    def _build(self, ctx: BuildContext):
        n_buckets = ctx.n(512, minimum=16)
        n_keys = ctx.n(5000, minimum=64)
        table = build_hash_table(
            ctx.memory,
            ctx.arena("symtab_buckets", n_buckets * WORD_SIZE + 64),
            ctx.arena("symtab_nodes", n_keys * 16 + 64),
            n_buckets,
            n_keys,
            rng=ctx.rng,
            data_allocator=ctx.arena("symtab_values", n_keys * 2 * 16 + 64),
        )
        strings = build_array(
            ctx.memory, ctx.arena("strings", 500_000), ctx.n(26000), rng=ctx.rng
        )
        n_lookups = ctx.n(700, minimum=20)
        hash_site = "perlbench.symtab"
        string_site = "perlbench.strings"
        rng = random.Random(ctx.rng.randrange(1 << 30))

        def lookups(program: Program) -> Iterator[None]:
            for __ in range(n_lookups):
                if rng.random() < 0.8:
                    key = rng.choice(table.keys)
                else:
                    key = rng.randrange(1, max(4 * n_keys, 16))
                yield from hash_lookup(
                    program, ctx.pcs, table, key, hash_site,
                    work_per_probe=45, data_are_pointers=True,
                )
                yield

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            return emit(
                program,
                interleave(
                    program,
                    [
                        lookups(program),
                        sequential_walk(
                            program, ctx.pcs, strings, string_site,
                            n_passes=1, work_per_access=10,
                        ),
                    ],
                    rng,
                ),
            )

        lds = lds_sites_for(
            hash_site, ("bucket_head", "key", "next", "d1", "d2", "data_deref")
        )
        return factory, lds


class Gcc(Workload):
    """Compiler analog: heavy IR-array streaming, light tree walking.

    The stream prefetcher already covers most of gcc (57 % coverage in
    paper Figure 1) — the LDS part is small, so ECDP must mostly stay out
    of the way here.
    """

    name = "gcc"
    suite = "spec2006"

    def _build(self, ctx: BuildContext):
        ir_a = build_array(
            ctx.memory, ctx.arena("ir_a", 700_000), ctx.n(40000), rng=ctx.rng
        )
        ir_b = build_array(
            ctx.memory, ctx.arena("ir_b", 500_000), ctx.n(26000), rng=ctx.rng
        )
        tree = build_balanced_tree(
            ctx.memory, ctx.arena("ast", 200_000), ctx.n(5600), rng=ctx.rng
        )
        rng = random.Random(ctx.rng.randrange(1 << 30))
        site_a, site_b = "gcc.rtl_pass", "gcc.df_pass"
        tree_site = "gcc.ast"

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            return emit(
                program,
                interleave(
                    program,
                    [
                        sequential_walk(
                            program, ctx.pcs, ir_a, site_a,
                            n_passes=2, work_per_access=10,
                        ),
                        sequential_walk(
                            program, ctx.pcs, ir_b, site_b, stride_words=2,
                            n_passes=2, work_per_access=10,
                        ),
                        inorder_walk(program, ctx.pcs, tree, tree_site, work_per_node=50),
                    ],
                    rng,
                ),
            )

        return factory, lds_sites_for(tree_site, ("key", "data", "left", "right"))
