"""Additional Olden benchmark analogs: treeadd, em3d, bh.

These are not part of the paper's 15-benchmark evaluation set (Section 5
selects only the pointer-intensive ones by its 10 %-ideal-gain criterion),
but they are standard LDS-prefetching workloads and round out the library
for users studying other prefetchers:

* **treeadd** — recursive sum over a balanced binary tree: every pointer
  loaded is followed, CDP-friendly like perimeter.
* **em3d** — electromagnetic wave propagation on a bipartite graph: each
  node's value is recomputed from a fixed out-neighbour list; pointer
  arrays make regular-but-scattered access.
* **bh** — Barnes-Hut n-body: an octree is rebuilt and walked with
  cell-opening tests, so only a data-dependent subset of children is
  visited (mixed PG usefulness).
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.core.instruction import MemOp
from repro.memory.address import WORD_SIZE
from repro.structures.base import Program, SilentWriter, StructLayout
from repro.structures.binary_tree import build_balanced_tree, inorder_walk
from repro.workloads.base import BuildContext, Workload, emit, lds_sites_for


class Treeadd(Workload):
    """Full recursive tree sum — every child pointer is dereferenced."""

    name = "treeadd"
    suite = "olden-extra"

    def _build(self, ctx: BuildContext):
        n_nodes = ctx.n(12000)
        arena = ctx.arena("tree", n_nodes * 32)
        tree = build_balanced_tree(
            ctx.memory, arena, n_nodes, data_words=1, rng=ctx.rng
        )
        rounds = 2
        site = "treeadd.sum"

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            walks = [
                inorder_walk(
                    program, ctx.pcs, tree, site,
                    touch_data=True, work_per_node=45,
                )
                for __ in range(rounds)
            ]
            return emit(program, *walks)

        return factory, lds_sites_for(site, ("key", "data", "left", "right"))


class Em3d(Workload):
    """Bipartite-graph wave propagation with out-neighbour pointer lists."""

    name = "em3d"
    suite = "olden-extra"

    NODE = StructLayout(
        "em3d_node",
        ("value", "from_count") + tuple(f"from_{i}" for i in range(4)),
    )

    def _build(self, ctx: BuildContext):
        n_per_side = ctx.n(5200)
        arena_e = ctx.arena("enodes", n_per_side * self.NODE.size + 64)
        arena_h = ctx.arena("hnodes", n_per_side * self.NODE.size + 64)
        writer = SilentWriter(ctx.memory)

        def build_side(arena, others: List[int]) -> List[int]:
            nodes = [arena.allocate(self.NODE.size) for __ in range(n_per_side)]
            for node in nodes:
                fields = {"value": ctx.rng.randrange(1, 1000), "from_count": 4}
                for i in range(4):
                    fields[f"from_{i}"] = (
                        ctx.rng.choice(others) if others else 0
                    )
                writer.store_fields(self.NODE, node, fields)
            return nodes

        e_nodes = build_side(arena_e, [])
        h_nodes = build_side(arena_h, e_nodes)
        # Wire the E side to H now that H exists.
        for node in e_nodes:
            for i in range(4):
                ctx.memory.write_word(
                    self.NODE.addr_of(node, f"from_{i}"), ctx.rng.choice(h_nodes)
                )

        iterations = 2
        site = "em3d.compute"

        def compute(program: Program) -> Iterator[None]:
            pcs = ctx.pcs
            pc_from = [pcs.pc(f"{site}.from_{i}") for i in range(4)]
            pc_value = pcs.pc(f"{site}.value")
            pc_update = pcs.pc(f"{site}.update")
            for __ in range(iterations):
                for side in (e_nodes, h_nodes):
                    for node in side:
                        program.work(40)
                        total = 0
                        for i in range(4):
                            neighbour = program.load(
                                pc_from[i],
                                self.NODE.addr_of(node, f"from_{i}"),
                                base=node,
                            )
                            total += program.load(
                                pc_value,
                                self.NODE.addr_of(neighbour, "value"),
                                base=neighbour,
                            )
                        program.store(
                            pc_update,
                            self.NODE.addr_of(node, "value"),
                            total & 0xFFF,
                        )
                        yield

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            return emit(program, compute(program))

        lds = [f"{site}.from_{i}" for i in range(4)] + [f"{site}.value"]
        return factory, lds


class BarnesHut(Workload):
    """Octree force walk with data-dependent cell opening."""

    name = "bh"
    suite = "olden-extra"

    CELL = StructLayout(
        "bh_cell",
        ("mass", "pos") + tuple(f"child_{i}" for i in range(8)),
    )

    def _build(self, ctx: BuildContext):
        n_cells = ctx.n(6000)
        arena = ctx.arena("octree", n_cells * self.CELL.size + 64)
        writer = SilentWriter(ctx.memory)
        cells = [arena.allocate(self.CELL.size) for __ in range(n_cells)]
        for index, cell in enumerate(cells):
            fields = {
                "mass": ctx.rng.randrange(1, 1 << 12),
                "pos": ctx.rng.randrange(1, 1 << 12),
            }
            for c in range(8):
                child_index = index * 8 + 1 + c
                fields[f"child_{c}"] = (
                    cells[child_index] if child_index < n_cells else 0
                )
            writer.store_fields(self.CELL, cell, fields)

        n_bodies = ctx.n(260, minimum=8)
        site = "bh.force"
        rng = random.Random(ctx.rng.randrange(1 << 30))
        root = cells[0]

        def force_walks(program: Program) -> Iterator[None]:
            pcs = ctx.pcs
            pc_mass = pcs.pc(f"{site}.mass")
            pc_pos = pcs.pc(f"{site}.pos")
            pc_child = [pcs.pc(f"{site}.child_{c}") for c in range(8)]
            for __ in range(n_bodies):
                stack = [root]
                while stack:
                    cell = stack.pop()
                    if not cell:
                        continue
                    program.work(35)
                    program.load(pc_mass, self.CELL.addr_of(cell, "mass"), base=cell)
                    pos = program.load(
                        pc_pos, self.CELL.addr_of(cell, "pos"), base=cell
                    )
                    # Cell-opening test: far cells are approximated by
                    # their aggregate (children skipped); near cells open.
                    if (pos ^ rng.getrandbits(12)) & 0x3:
                        continue
                    for c in range(8):
                        child = program.load(
                            pc_child[c],
                            self.CELL.addr_of(cell, f"child_{c}"),
                            base=cell,
                        )
                        if child:
                            stack.append(child)
                yield

        def factory() -> Iterator[MemOp]:
            program = Program(ctx.memory)
            return emit(program, force_walks(program))

        lds = [f"{site}.mass", f"{site}.pos"]
        lds += [f"{site}.child_{c}" for c in range(8)]
        return factory, lds
