"""Workload registry: every benchmark analog by name, grouped as the paper
groups them (pointer-intensive evaluation set vs. the rest)."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.errors import UnknownNameError
from repro.workloads.base import Workload
from repro.workloads.olden import Bisort, Health, Mst, Perimeter, Voronoi
from repro.workloads.olden_extra import BarnesHut, Em3d, Treeadd
from repro.workloads.pfast import Pfast
from repro.workloads.spec_fp import Ammp, Art
from repro.workloads.spec_int import (
    Astar,
    Gcc,
    Mcf,
    Omnetpp,
    Parser,
    Perlbench,
    Xalancbmk,
)
from repro.workloads.streaming import (
    Bwaves,
    Gemsfdtd,
    H264ref,
    Libquantum,
    Milc,
    Sjeng,
)

#: paper Section 5's evaluation order (Table 1 / Table 6 column order)
POINTER_INTENSIVE_ORDER: List[str] = [
    "perlbench",
    "gcc",
    "mcf",
    "astar",
    "xalancbmk",
    "omnetpp",
    "parser",
    "art",
    "ammp",
    "bisort",
    "health",
    "mst",
    "perimeter",
    "voronoi",
    "pfast",
]

_ALL_CLASSES: List[Type[Workload]] = [
    Perlbench,
    Gcc,
    Mcf,
    Astar,
    Xalancbmk,
    Omnetpp,
    Parser,
    Art,
    Ammp,
    Bisort,
    Health,
    Mst,
    Perimeter,
    Voronoi,
    Pfast,
    Libquantum,
    Gemsfdtd,
    H264ref,
    Bwaves,
    Milc,
    Sjeng,
    # Extra Olden analogs — not part of the paper's 15-benchmark set but
    # available for further study (suite "olden-extra").
    Treeadd,
    Em3d,
    BarnesHut,
]

REGISTRY: Dict[str, Type[Workload]] = {cls.name: cls for cls in _ALL_CLASSES}


def get_workload(name: str) -> Workload:
    """Instantiate the workload class registered under *name*."""
    try:
        return REGISTRY[name]()
    except KeyError:
        raise UnknownNameError(
            f"unknown workload {name!r}; known: {sorted(REGISTRY)}"
        ) from None


def pointer_intensive_names() -> List[str]:
    """The paper's 15-benchmark evaluation set, in reporting order."""
    return list(POINTER_INTENSIVE_ORDER)


def non_pointer_names() -> List[str]:
    """The Section 6.7 set: analogs with little LDS prefetching potential."""
    return [
        cls.name for cls in _ALL_CLASSES if not cls.pointer_intensive
    ]


def all_names() -> List[str]:
    return [cls.name for cls in _ALL_CLASSES]
