"""Base machinery for linked data structures living in simulated memory.

Structures are built of fixed-layout records (a C struct of 4-byte fields).
Construction writes real pointer values into the backing store — this is
what the content-directed prefetcher later scans for — and traversal goes
through a :class:`Program`, which reads the same memory *and* emits the
``MemOp`` trace the timing simulator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.instruction import MemOp
from repro.memory.address import WORD_SIZE
from repro.memory.backing import SimulatedMemory


@dataclass(frozen=True)
class StructLayout:
    """A C-like record layout: named 4-byte fields at fixed offsets.

    The constant field offsets are what give rise to pointer groups: every
    dynamic instance of ``node->next`` sits at the same byte offset from
    the field a traversal load touches (paper Figure 3).
    """

    name: str
    fields: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.fields)) != len(self.fields):
            raise ValueError(f"duplicate field names in struct {self.name!r}")

    @property
    def size(self) -> int:
        return len(self.fields) * WORD_SIZE

    def offset(self, field: str) -> int:
        """Byte offset of *field* within the record."""
        return self.fields.index(field) * WORD_SIZE

    def addr_of(self, base: int, field: str) -> int:
        """Address of *field* in the record at *base*."""
        return base + self.offset(field)


class Program:
    """Execution context that turns structure traversals into traces.

    The workload calls :meth:`load` / :meth:`store`; the Program reads or
    writes the backing store (so data-dependent control flow works — e.g.
    hash-chain walks follow the *actual* pointers) and buffers a ``MemOp``
    per call.  ``work(n)`` accounts n non-memory instructions, which attach
    to the next memory op.

    Address dependences: a traversal passes ``base=node`` when a load's
    address was computed from a previously *loaded* pointer; the Program
    resolves the producing load and stamps the op's ``dep`` field so the
    timing model serializes the pointer chain, as real hardware must.
    """

    #: values below this are never pointers, so never tracked as producers
    _MIN_POINTER = 0x1000

    def __init__(self, memory: SimulatedMemory) -> None:
        self.memory = memory
        self._pending_work = 0
        self._ops: List[MemOp] = []
        self._load_seq = 0
        self._producers: Dict[int, int] = {}  # loaded value -> load seq

    def work(self, instructions: int) -> None:
        """Account *instructions* of non-memory work before the next op."""
        self._pending_work += instructions

    def load(self, pc: int, addr: int, base: Optional[int] = None) -> int:
        """Emit a load at *pc* from *addr*; return the value read.

        ``base``: the pointer value this address was derived from (e.g.
        the node whose field is being read), used to stamp the load-load
        dependence.
        """
        dep = -1
        if base is not None:
            dep = self._producers.get(base, -1)
        seq = self._load_seq
        self._load_seq = seq + 1
        self._ops.append(MemOp(pc, addr, True, self._pending_work, dep))
        self._pending_work = 0
        value = self.memory.read_word(addr)
        if value >= self._MIN_POINTER:
            self._producers[value] = seq
        return value

    def store(self, pc: int, addr: int, value: int) -> None:
        """Emit a store at *pc*; write *value* to the backing store."""
        self.memory.write_word(addr, value)
        self._ops.append(MemOp(pc, addr, False, self._pending_work, -1))
        self._pending_work = 0

    def drain(self) -> List[MemOp]:
        """Take the buffered ops (workload generators drain per step)."""
        ops = self._ops
        self._ops = []
        return ops

    def __len__(self) -> int:
        return len(self._ops)


class SilentWriter:
    """Builds structures without emitting trace ops (the setup phase).

    The paper's measured region is the traversal, not the allocation; using
    a silent writer for construction keeps traces focused on the behaviour
    under study while still leaving real pointers in memory.
    """

    def __init__(self, memory: SimulatedMemory) -> None:
        self.memory = memory

    def store_fields(
        self, layout: StructLayout, base: int, values: Dict[str, int]
    ) -> None:
        """Write the given field values of the record at *base*."""
        for field, value in values.items():
            self.memory.write_word(layout.addr_of(base, field), value)


def run_steps(
    program: Program, steps: Iterator[None]
) -> Iterator[MemOp]:
    """Adapt a step-wise traversal into a flat MemOp stream.

    Workload traversals are written as generators that yield once per
    logical step; after each step the ops buffered in *program* are
    flushed.  This keeps peak memory bounded for long traces.
    """
    for _ in steps:
        for op in program.drain():
            yield op
    for op in program.drain():
        yield op
