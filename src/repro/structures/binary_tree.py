"""Binary trees in simulated memory, including bisort's subtree swapping.

bisort is the paper's poster child for harmful content-directed prefetching
(Section 2.3): it swaps subtrees while traversing, so pointers greedily
prefetched under a node become useless the moment its subtree is swapped
out.  We reproduce the structure (a binary tree whose traversal performs
frequent random subtree swaps) so that effect emerges from the simulation
rather than being scripted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.core.instruction import PcAllocator
from repro.structures.base import Program, SilentWriter, StructLayout


def tree_layout(data_words: int = 1, name: str = "tree_node") -> StructLayout:
    """Node layout: key, data..., left, right."""
    fields = (
        ("key",)
        + tuple(f"data_{i}" for i in range(data_words))
        + ("left", "right")
    )
    return StructLayout(name, fields)


@dataclass
class BinaryTree:
    layout: StructLayout
    root: int
    nodes: List[int]  # all node addresses, BFS order of construction

    def __len__(self) -> int:
        return len(self.nodes)


def build_balanced_tree(
    memory,
    allocator,
    n_nodes: int,
    data_words: int = 1,
    rng: Optional[random.Random] = None,
    name: str = "tree_node",
) -> BinaryTree:
    """Build a balanced binary tree of *n_nodes*, allocated in BFS order.

    BFS allocation packs siblings and near cousins into the same cache
    blocks, which is what makes greedy CDP scan whole sub-levels at once.
    """
    layout = tree_layout(data_words, name)
    writer = SilentWriter(memory)
    rng = rng or random.Random(0)
    addrs = [allocator.allocate(layout.size) for _ in range(n_nodes)]
    for i, addr in enumerate(addrs):
        left_i, right_i = 2 * i + 1, 2 * i + 2
        fields = {
            "key": rng.randrange(1, 1 << 20),
            "left": addrs[left_i] if left_i < n_nodes else 0,
            "right": addrs[right_i] if right_i < n_nodes else 0,
        }
        for d in range(data_words):
            fields[f"data_{d}"] = rng.randrange(1, 1000)
        writer.store_fields(layout, addr, fields)
    return BinaryTree(layout, addrs[0] if addrs else 0, addrs)


def descend(
    program: Program,
    pcs: PcAllocator,
    tree: BinaryTree,
    rng: random.Random,
    site: str,
    n_descents: int,
    work_per_node: int = 10,
) -> Iterator[None]:
    """Random root-to-leaf searches (key compare, then one child).

    Each visited node reads ``key`` and exactly one of ``left``/``right``;
    the untaken child's pointer group is ~50 % useful, the taken one's is
    useful — the mixed-PG situation ECDP's profiling sorts out.
    """
    layout = tree.layout
    pc_key = pcs.pc(f"{site}.key")
    pc_left = pcs.pc(f"{site}.left")
    pc_right = pcs.pc(f"{site}.right")
    for _ in range(n_descents):
        node = tree.root
        while node:
            program.work(work_per_node)
            program.load(pc_key, layout.addr_of(node, "key"), base=node)
            if rng.random() < 0.5:
                node = program.load(pc_left, layout.addr_of(node, "left"), base=node)
            else:
                node = program.load(pc_right, layout.addr_of(node, "right"), base=node)
        yield


def bitonic_sort_traversal(
    program: Program,
    pcs: PcAllocator,
    tree: BinaryTree,
    rng: random.Random,
    site: str,
    n_rounds: int,
    swap_probability: float = 0.45,
    work_per_node: int = 12,
) -> Iterator[None]:
    """bisort-style traversal: root-to-leaf merge passes with subtree swaps.

    Each round is one bitonic merge path: descend from the root reading
    key/left/right; with *swap_probability* the node's children are
    swapped (two stores) before choosing which child to follow.  Both
    child pointers are loaded at every node but only one path is taken,
    and swaps constantly redirect that path — so pointers greedily
    prefetched under a node are mostly never visited, reproducing the
    pathology of paper Section 2.3.
    """
    layout = tree.layout
    pc_key = pcs.pc(f"{site}.key")
    pc_left = pcs.pc(f"{site}.left")
    pc_right = pcs.pc(f"{site}.right")
    pc_swap_l = pcs.pc(f"{site}.swap_left")
    pc_swap_r = pcs.pc(f"{site}.swap_right")
    for _ in range(n_rounds):
        node = tree.root
        while node:
            program.work(work_per_node)
            key = program.load(pc_key, layout.addr_of(node, "key"), base=node)
            left = program.load(pc_left, layout.addr_of(node, "left"), base=node)
            right = program.load(pc_right, layout.addr_of(node, "right"), base=node)
            if rng.random() < swap_probability:
                program.store(pc_swap_l, layout.addr_of(node, "left"), right)
                program.store(pc_swap_r, layout.addr_of(node, "right"), left)
                left, right = right, left
            # The merge direction is data-dependent (key parity).
            node = left if (key ^ rng.getrandbits(1)) & 1 else right
        yield


def inorder_walk(
    program: Program,
    pcs: PcAllocator,
    tree: BinaryTree,
    site: str,
    touch_data: bool = True,
    work_per_node: int = 8,
) -> Iterator[None]:
    """Full in-order traversal touching every node (perimeter-like usage)."""
    layout = tree.layout
    pc_key = pcs.pc(f"{site}.key")
    pc_data = pcs.pc(f"{site}.data") if touch_data else 0
    pc_left = pcs.pc(f"{site}.left")
    pc_right = pcs.pc(f"{site}.right")
    stack = []
    node = tree.root
    while stack or node:
        while node:
            program.work(work_per_node)
            stack.append(node)
            node = program.load(pc_left, layout.addr_of(node, "left"), base=node)
        node = stack.pop()
        program.load(pc_key, layout.addr_of(node, "key"), base=node)
        if touch_data:
            program.load(pc_data, layout.addr_of(node, "data_0"), base=node)
        node = program.load(pc_right, layout.addr_of(node, "right"), base=node)
        yield
