"""Singly linked lists in simulated memory.

The workhorse LDS: health's hierarchical patient lists, parser's dictionary
chains and pfast's alignment candidate lists are all built from these.  A
node is ``{key, data..., next}``; because nodes of one list are allocated
from one arena, the ``next`` field of every node in a fetched cache block
sits at a constant offset from the field a traversal load touches — the
pointer-group property of paper Figure 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.core.instruction import PcAllocator
from repro.memory.address import WORD_SIZE
from repro.structures.base import Program, SilentWriter, StructLayout


def list_layout(
    data_words: int, name: str = "list_node", with_satellite: bool = False
) -> StructLayout:
    """Node layout: key, data_0..data_{n-1}, [rec,] next.

    ``rec`` is a pointer to a satellite record in a separate arena —
    the object the node *describes* (a patient's record, an atom's
    coordinates).  Satellite pointers are where content-directed
    prefetching shines: the demand walk must serialize node -> record,
    while CDP fetches every record in a scanned block in parallel.
    """
    fields = ("key",) + tuple(f"data_{i}" for i in range(data_words))
    if with_satellite:
        fields += ("rec",)
    return StructLayout(name, fields + ("next",))


@dataclass
class LinkedList:
    """A built list: head address plus its node layout."""

    layout: StructLayout
    head: int
    nodes: List[int]  # addresses in list order

    def __len__(self) -> int:
        return len(self.nodes)


def build_list(
    memory,
    allocator,
    n_nodes: int,
    data_words: int = 2,
    keys: Optional[List[int]] = None,
    rng: Optional[random.Random] = None,
    shuffle_allocation: bool = False,
    chunk_nodes: int = 0,
    name: str = "list_node",
    satellite_allocator=None,
    satellite_words: int = 8,
) -> LinkedList:
    """Allocate and link *n_nodes* records; return the built list.

    Layout options model different heap histories:

    * default — link order == allocation order (a fresh heap; paper
      Figure 3's assumption);
    * ``chunk_nodes=K`` — runs of K consecutively-allocated nodes with the
      runs themselves scattered (a heap that grew the list in bursts):
      stream prefetchers lose the scent at every run boundary but pointer
      groups stay intact;
    * ``shuffle_allocation`` — fully scattered (an aged, churned heap;
      paper footnote 3).
    """
    layout = list_layout(data_words, name, with_satellite=satellite_allocator is not None)
    writer = SilentWriter(memory)
    rng = rng or random.Random(0)
    addrs = [allocator.allocate(layout.size) for _ in range(n_nodes)]
    if shuffle_allocation:
        rng.shuffle(addrs)
    elif chunk_nodes > 1:
        chunks = [
            addrs[i:i + chunk_nodes] for i in range(0, n_nodes, chunk_nodes)
        ]
        rng.shuffle(chunks)
        addrs = [addr for chunk in chunks for addr in chunk]
    if keys is None:
        keys = list(range(n_nodes))
    records: List[int] = []
    if satellite_allocator is not None:
        # Records are placed independently of list order (objects allocated
        # at different program times), so record derefs look random to a
        # stream prefetcher while staying one pointer hop away from CDP.
        records = [
            satellite_allocator.allocate(satellite_words * WORD_SIZE)
            for __ in range(n_nodes)
        ]
        rng.shuffle(records)
        for record in records:
            for word in range(satellite_words):
                memory.write_word(
                    record + word * WORD_SIZE, rng.randrange(1, 1000)
                )
    for i, addr in enumerate(addrs):
        fields = {"key": keys[i] if i < len(keys) else i, "next": 0}
        for d in range(data_words):
            fields[f"data_{d}"] = rng.randrange(1, 1000)
        if records:
            fields["rec"] = records[i]
        writer.store_fields(layout, addr, fields)
    for prev, nxt in zip(addrs, addrs[1:]):
        writer.store_fields(layout, prev, {"next": nxt})
    return LinkedList(layout, addrs[0] if addrs else 0, addrs)


def walk(
    program: Program,
    pcs: PcAllocator,
    lst: LinkedList,
    site: str,
    touch_data: bool = False,
    work_per_node: int = 8,
    max_nodes: Optional[int] = None,
    deref_satellite: bool = False,
    satellite_touch_words: int = 2,
) -> Iterator[None]:
    """Traverse the list front to back, reading key then next.

    ``touch_data`` additionally loads the first data word of each node,
    the access a search hit would make.  ``deref_satellite`` follows each
    node's ``rec`` pointer and reads the satellite record — the pattern
    where the demand stream serializes two misses per node but CDP
    prefetches all the records in a scanned block at once.
    """
    layout = lst.layout
    pc_key = pcs.pc(f"{site}.key")
    pc_data = pcs.pc(f"{site}.data") if touch_data else 0
    pc_next = pcs.pc(f"{site}.next")
    pc_rec = pcs.pc(f"{site}.rec") if deref_satellite else 0
    pc_rec_data = pcs.pc(f"{site}.rec_data") if deref_satellite else 0
    node = lst.head
    visited = 0
    while node:
        program.work(work_per_node)
        program.load(pc_key, layout.addr_of(node, "key"), base=node)
        if touch_data:
            program.load(pc_data, layout.addr_of(node, "data_0"), base=node)
        if deref_satellite:
            record = program.load(pc_rec, layout.addr_of(node, "rec"), base=node)
            for word in range(satellite_touch_words):
                program.load(pc_rec_data, record + word * 4, base=record)
        node = program.load(pc_next, layout.addr_of(node, "next"), base=node)
        visited += 1
        if max_nodes is not None and visited >= max_nodes:
            break
        yield


def search(
    program: Program,
    pcs: PcAllocator,
    lst: LinkedList,
    target_key: int,
    site: str,
    work_per_node: int = 6,
) -> Iterator[None]:
    """Walk the chain until *target_key* matches, then touch its data.

    This is the HashLookup pattern of paper Figure 5: the data fields of
    non-matching nodes are never read, so prefetching them (PG1/PG2 in the
    paper) is harmful while prefetching ``next`` (PG3) is beneficial.
    """
    layout = lst.layout
    pc_key = pcs.pc(f"{site}.key")
    pc_next = pcs.pc(f"{site}.next")
    pc_hit = pcs.pc(f"{site}.hit_data")
    node = lst.head
    while node:
        program.work(work_per_node)
        key = program.load(pc_key, layout.addr_of(node, "key"), base=node)
        if key == target_key:
            program.load(pc_hit, layout.addr_of(node, "data_0"), base=node)
            return
        node = program.load(pc_next, layout.addr_of(node, "next"), base=node)
        yield
