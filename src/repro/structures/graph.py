"""Pointer graphs — mcf's network and similar irregular structures.

mcf (network simplex) chases arcs through a large node/arc graph with
data-dependent, effectively unpredictable choices of which pointer to follow
next.  Most pointers in a fetched block are *not* the one the algorithm
follows, so greedy CDP accuracy collapses (1.4 % in paper Table 1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.core.instruction import PcAllocator
from repro.structures.base import Program, SilentWriter, StructLayout


def graph_node_layout(n_ptr_fields: int, data_words: int = 2,
                      name: str = "graph_node") -> StructLayout:
    """Node: cost words, then several out-pointer fields."""
    fields = (
        tuple(f"cost_{i}" for i in range(data_words))
        + tuple(f"arc_{i}" for i in range(n_ptr_fields))
    )
    return StructLayout(name, fields)


@dataclass
class PointerGraph:
    layout: StructLayout
    nodes: List[int]
    n_arcs: int

    def __len__(self) -> int:
        return len(self.nodes)


def build_graph(
    memory,
    allocator,
    n_nodes: int,
    n_arcs_per_node: int = 4,
    data_words: int = 2,
    rng: Optional[random.Random] = None,
    name: str = "graph_node",
) -> PointerGraph:
    """Random directed graph with *n_arcs_per_node* out-edges per node."""
    layout = graph_node_layout(n_arcs_per_node, data_words, name)
    writer = SilentWriter(memory)
    rng = rng or random.Random(0)
    addrs = [allocator.allocate(layout.size) for _ in range(n_nodes)]
    for addr in addrs:
        fields = {}
        for d in range(data_words):
            fields[f"cost_{d}"] = rng.randrange(1, 1 << 16)
        for a in range(n_arcs_per_node):
            fields[f"arc_{a}"] = rng.choice(addrs)
        writer.store_fields(layout, addr, fields)
    return PointerGraph(layout, addrs, n_arcs_per_node)


def pivot_walk(
    program: Program,
    pcs: PcAllocator,
    graph: PointerGraph,
    rng: random.Random,
    site: str,
    n_steps: int,
    work_per_step: int = 14,
) -> Iterator[None]:
    """Chase arcs choosing a *data-dependent* (pseudo-random) arc each step.

    Reads one cost word and one arc pointer per step; which arc is chosen
    depends on the data just read, so no prefetcher knows in advance, and
    the 3 unfollowed arc pointers in each node make greedy CDP mostly
    wrong.
    """
    layout = graph.layout
    pc_cost = pcs.pc(f"{site}.cost")
    pc_arcs = [
        pcs.pc(f"{site}.arc_{a}") for a in range(graph.n_arcs)
    ]
    node = graph.nodes[0] if graph.nodes else 0
    for _ in range(n_steps):
        if not node:
            node = rng.choice(graph.nodes)
        program.work(work_per_step)
        cost = program.load(pc_cost, layout.addr_of(node, "cost_0"), base=node)
        arc_index = (cost + rng.randrange(graph.n_arcs)) % graph.n_arcs
        node = program.load(
            pc_arcs[arc_index], layout.addr_of(node, f"arc_{arc_index}"),
            base=node,
        )
        yield
