"""Flat arrays in simulated memory — the streaming side of the workloads.

Stream-prefetcher-friendly access patterns (sequential and strided walks)
come from these; they also provide array-of-pointers structures (xalancbmk's
DOM child vectors, mst's bucket array) whose *contents* are pointers even
though the access pattern is regular.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.core.instruction import PcAllocator
from repro.memory.address import WORD_SIZE
from repro.structures.base import Program


@dataclass
class Array:
    base: int
    n_words: int

    def addr(self, index: int) -> int:
        return self.base + index * WORD_SIZE

    @property
    def size_bytes(self) -> int:
        return self.n_words * WORD_SIZE


def build_array(
    memory,
    allocator,
    n_words: int,
    rng: Optional[random.Random] = None,
    fill: str = "random",
) -> Array:
    """Allocate an *n_words* array.

    fill: "random" small integers (never look like pointers), "zero", or
    "iota".
    """
    base = allocator.allocate(n_words * WORD_SIZE)
    rng = rng or random.Random(0)
    if fill == "random":
        for i in range(n_words):
            memory.write_word(base + i * WORD_SIZE, rng.randrange(1, 1 << 12))
    elif fill == "iota":
        for i in range(n_words):
            memory.write_word(base + i * WORD_SIZE, i)
    elif fill == "zero":
        for i in range(n_words):
            memory.write_word(base + i * WORD_SIZE, 0)
    else:
        raise ValueError(f"unknown fill {fill!r}")
    return Array(base, n_words)


def build_pointer_array(
    memory, allocator, targets: List[int]
) -> Array:
    """An array whose elements are the given target addresses."""
    base = allocator.allocate(len(targets) * WORD_SIZE)
    for i, target in enumerate(targets):
        memory.write_word(base + i * WORD_SIZE, target)
    return Array(base, len(targets))


def sequential_walk(
    program: Program,
    pcs: PcAllocator,
    array: Array,
    site: str,
    stride_words: int = 1,
    work_per_access: int = 4,
    n_passes: int = 1,
    store_fraction: float = 0.0,
    rng: Optional[random.Random] = None,
) -> Iterator[None]:
    """Stream through the array with a fixed word stride.

    The bread-and-butter pattern the baseline stream prefetcher covers.
    """
    pc_load = pcs.pc(f"{site}.load")
    pc_store = pcs.pc(f"{site}.store")
    rng = rng or random.Random(1)
    for _ in range(n_passes):
        for i in range(0, array.n_words, stride_words):
            program.work(work_per_access)
            addr = array.addr(i)
            if store_fraction and rng.random() < store_fraction:
                program.store(pc_store, addr, rng.randrange(1, 1 << 12))
            else:
                program.load(pc_load, addr)
            yield


def random_walk(
    program: Program,
    pcs: PcAllocator,
    array: Array,
    rng: random.Random,
    site: str,
    n_accesses: int,
    work_per_access: int = 6,
) -> Iterator[None]:
    """Uniformly random indexed accesses — defeats every prefetcher."""
    pc_load = pcs.pc(f"{site}.load")
    for _ in range(n_accesses):
        program.work(work_per_access)
        program.load(pc_load, array.addr(rng.randrange(array.n_words)))
        yield
