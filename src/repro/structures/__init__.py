"""Linked data structures and arrays built in simulated memory."""

from repro.structures.arrays import (
    Array,
    build_array,
    build_pointer_array,
    random_walk,
    sequential_walk,
)
from repro.structures.base import Program, SilentWriter, StructLayout, run_steps
from repro.structures.binary_tree import (
    BinaryTree,
    bitonic_sort_traversal,
    build_balanced_tree,
    descend,
    inorder_walk,
    tree_layout,
)
from repro.structures.graph import PointerGraph, build_graph, pivot_walk
from repro.structures.hash_table import (
    HashTable,
    build_hash_table,
    hash_lookup,
    hash_node_layout,
)
from repro.structures.linked_list import (
    LinkedList,
    build_list,
    list_layout,
    search,
    walk,
)
from repro.structures.quadtree import (
    QuadTree,
    build_quadtree,
    perimeter_walk,
    quadtree_layout,
)

__all__ = [
    "Array",
    "BinaryTree",
    "HashTable",
    "LinkedList",
    "PointerGraph",
    "Program",
    "QuadTree",
    "SilentWriter",
    "StructLayout",
    "bitonic_sort_traversal",
    "build_array",
    "build_balanced_tree",
    "build_graph",
    "build_hash_table",
    "build_list",
    "build_pointer_array",
    "build_quadtree",
    "descend",
    "hash_lookup",
    "hash_node_layout",
    "inorder_walk",
    "list_layout",
    "perimeter_walk",
    "pivot_walk",
    "quadtree_layout",
    "random_walk",
    "run_steps",
    "search",
    "sequential_walk",
    "tree_layout",
    "walk",
]
