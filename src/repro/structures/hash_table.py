"""Chained hash table — the mst example of paper Figure 5.

An array of bucket head pointers, each heading a linked chain of
``{key, d1, d2, next}`` nodes.  ``HashLookup`` walks a chain comparing keys;
only the matching node's data is touched.  Hence PG(key-load, offset-of-d1)
and PG(key-load, offset-of-d2) are harmful while PG(key-load,
offset-of-next) is beneficial — exactly the paper's worked example.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.core.instruction import PcAllocator
from repro.memory.address import WORD_SIZE
from repro.structures.base import Program, SilentWriter, StructLayout


def hash_node_layout(name: str = "hash_node") -> StructLayout:
    """Figure 5's node: key, two data words, next."""
    return StructLayout(name, ("key", "d1", "d2", "next"))


@dataclass
class HashTable:
    layout: StructLayout
    buckets_base: int  # address of the bucket-pointer array
    n_buckets: int
    chains: List[List[int]]  # node addresses per bucket
    keys: List[int]  # all inserted keys

    def bucket_addr(self, index: int) -> int:
        return self.buckets_base + index * WORD_SIZE

    def bucket_of(self, key: int) -> int:
        return key % self.n_buckets


def build_hash_table(
    memory,
    bucket_allocator,
    node_allocator,
    n_buckets: int,
    n_keys: int,
    rng: Optional[random.Random] = None,
    name: str = "hash_node",
    data_allocator=None,
    data_record_words: int = 4,
) -> HashTable:
    """Insert *n_keys* distinct keys; chains grow at the head.

    Bucket array, nodes, and data records come from separate arenas, as in
    a real process image.  When *data_allocator* is given, the ``d1`` and
    ``d2`` fields hold *pointers* to data records — exactly the layout of
    paper Figure 5, where CDP greedily (and uselessly) prefetches D1/D2
    even though only the matching node's data is ever read.
    """
    layout = hash_node_layout(name)
    writer = SilentWriter(memory)
    rng = rng or random.Random(0)
    buckets_base = bucket_allocator.allocate(n_buckets * WORD_SIZE)
    for i in range(n_buckets):
        memory.write_word(buckets_base + i * WORD_SIZE, 0)
    chains: List[List[int]] = [[] for _ in range(n_buckets)]
    keys = rng.sample(range(1, max(4 * n_keys, 16)), n_keys)

    def new_data_field() -> int:
        if data_allocator is None:
            return rng.randrange(1, 1000)
        record = data_allocator.allocate(data_record_words * WORD_SIZE)
        for word in range(data_record_words):
            memory.write_word(record + word * WORD_SIZE, rng.randrange(1, 1000))
        return record

    for key in keys:
        bucket = key % n_buckets
        head_addr = buckets_base + bucket * WORD_SIZE
        node = node_allocator.allocate(layout.size)
        writer.store_fields(
            layout,
            node,
            {
                "key": key,
                "d1": new_data_field(),
                "d2": new_data_field(),
                "next": memory.read_word(head_addr),
            },
        )
        memory.write_word(head_addr, node)
        chains[bucket].insert(0, node)
    return HashTable(layout, buckets_base, n_buckets, chains, keys)


def hash_lookup(
    program: Program,
    pcs: PcAllocator,
    table: HashTable,
    key: int,
    site: str,
    work_per_probe: int = 6,
    data_are_pointers: bool = False,
) -> Iterator[None]:
    """The HashLookup function of paper Figure 5(a).

    Loads the bucket head, then walks ``ent->Key != Key`` until a match;
    on a match reads both data fields (and, when they are pointers,
    dereferences them — the consumer of the found entry).
    """
    layout = table.layout
    pc_head = pcs.pc(f"{site}.bucket_head")
    pc_key = pcs.pc(f"{site}.key")
    pc_next = pcs.pc(f"{site}.next")
    pc_d1 = pcs.pc(f"{site}.d1")
    pc_d2 = pcs.pc(f"{site}.d2")
    pc_deref = pcs.pc(f"{site}.data_deref")
    program.work(work_per_probe)
    node = program.load(pc_head, table.bucket_addr(table.bucket_of(key)))
    while node:
        program.work(work_per_probe)
        found = program.load(pc_key, layout.addr_of(node, "key"), base=node)
        if found == key:
            d1 = program.load(pc_d1, layout.addr_of(node, "d1"), base=node)
            d2 = program.load(pc_d2, layout.addr_of(node, "d2"), base=node)
            if data_are_pointers:
                program.load(pc_deref, d1, base=d1)
                program.load(pc_deref, d2, base=d2)
            return
        node = program.load(pc_next, layout.addr_of(node, "next"), base=node)
        yield
