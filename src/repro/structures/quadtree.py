"""Quadtrees — the Olden perimeter benchmark's structure.

perimeter computes the perimeter of a region in a quadtree-encoded image by
recursively visiting *all four* children of every node.  Because every child
pointer loaded is subsequently dereferenced, greedy content-directed
prefetching is highly accurate here (83.3 % in paper Table 1) — the useful
counterpoint to bisort/mst.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.core.instruction import PcAllocator
from repro.structures.base import Program, SilentWriter, StructLayout

CHILD_FIELDS = ("nw", "ne", "sw", "se")


def quadtree_layout(name: str = "quad_node") -> StructLayout:
    """Node: color, level, then four child pointers."""
    return StructLayout(name, ("color", "level") + CHILD_FIELDS)


@dataclass
class QuadTree:
    layout: StructLayout
    root: int
    nodes: List[int]

    def __len__(self) -> int:
        return len(self.nodes)


def build_quadtree(
    memory,
    allocator,
    depth: int,
    leaf_probability: float = 0.25,
    rng: Optional[random.Random] = None,
    name: str = "quad_node",
) -> QuadTree:
    """Build a quadtree of at most *depth* levels.

    Interior nodes always have all four children (perimeter's trees are
    dense); a node becomes a leaf early with *leaf_probability*, bounding
    size while keeping realistic shape.
    """
    layout = quadtree_layout(name)
    writer = SilentWriter(memory)
    rng = rng or random.Random(0)
    nodes: List[int] = []

    def make(level: int) -> int:
        addr = allocator.allocate(layout.size)
        nodes.append(addr)
        is_leaf = level >= depth or (level > 1 and rng.random() < leaf_probability)
        fields = {"color": rng.randrange(0, 3), "level": level}
        if not is_leaf:
            # Children are constructed (and therefore allocated) in a
            # random order, decorrelating memory layout from the fixed
            # NW/NE/SW/SE visit order — a DFS-sequential layout would let
            # a stream prefetcher cover the whole walk.
            order = list(CHILD_FIELDS)
            rng.shuffle(order)
            for child in order:
                fields[child] = make(level + 1)
        else:
            for child in CHILD_FIELDS:
                fields[child] = 0
        writer.store_fields(layout, addr, fields)
        return addr

    root = make(0)
    return QuadTree(layout, root, nodes)


def perimeter_walk(
    program: Program,
    pcs: PcAllocator,
    tree: QuadTree,
    site: str,
    work_per_node: int = 9,
) -> Iterator[None]:
    """Visit every node, reading color and all four children.

    Every loaded child pointer is dereferenced on a later iteration, so
    all four child PGs are beneficial.
    """
    layout = tree.layout
    pc_color = pcs.pc(f"{site}.color")
    pc_children = {c: pcs.pc(f"{site}.{c}") for c in CHILD_FIELDS}
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if not node:
            continue
        program.work(work_per_node)
        program.load(pc_color, layout.addr_of(node, "color"), base=node)
        for child in CHILD_FIELDS:
            ptr = program.load(pc_children[child], layout.addr_of(node, child), base=node)
            if ptr:
                stack.append(ptr)
        yield
