"""Trace serialization: save and load MemOp streams.

Workload traces are normally generated on the fly, but a standalone
simulator needs to exchange traces with the outside world — to archive a
profiling input, to replay a trace from another tool, or to diff two runs.

Two formats:

* **binary** (default) — fixed 17-byte little-endian records
  ``<pc:u32, addr:u32, flags:u8, work:u32, dep:i32>``, streamed, with a
  magic header carrying a format version.  Compact and fast.
* **text** — one ``pc addr kind work dep`` line per op (hex addresses),
  greppable and diffable.

Both round-trip exactly, including dependence edges.  Loading is lazy
(generators), so multi-million-op traces never fully materialize.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.core.instruction import MemOp

MAGIC = b"RPTR\x01"
_RECORD = struct.Struct("<IIBIi")

_FLAG_LOAD = 0x1

PathLike = Union[str, Path]


def save_trace(path: PathLike, trace: Iterable[MemOp]) -> int:
    """Write *trace* in binary format; returns the number of ops written."""
    count = 0
    with open(path, "wb") as stream:
        stream.write(MAGIC)
        for op in trace:
            stream.write(
                _RECORD.pack(
                    op.pc,
                    op.addr,
                    _FLAG_LOAD if op.is_load else 0,
                    op.work,
                    op.dep,
                )
            )
            count += 1
    return count


def load_trace(path: PathLike) -> Iterator[MemOp]:
    """Stream MemOps back from a binary trace file."""
    with open(path, "rb") as stream:
        header = stream.read(len(MAGIC))
        if header != MAGIC:
            raise ValueError(
                f"{path}: not a repro trace file (bad magic {header!r})"
            )
        while True:
            record = stream.read(_RECORD.size)
            if not record:
                break
            if len(record) != _RECORD.size:
                raise ValueError(f"{path}: truncated trace record")
            pc, addr, flags, work, dep = _RECORD.unpack(record)
            yield MemOp(pc, addr, bool(flags & _FLAG_LOAD), work, dep)


def save_trace_text(path: PathLike, trace: Iterable[MemOp]) -> int:
    """Write *trace* as text, one op per line."""
    count = 0
    with open(path, "w") as stream:
        stream.write("# pc addr kind work dep\n")
        for op in trace:
            kind = "L" if op.is_load else "S"
            stream.write(
                f"{op.pc:#x} {op.addr:#x} {kind} {op.work} {op.dep}\n"
            )
            count += 1
    return count


def load_trace_text(path: PathLike) -> Iterator[MemOp]:
    """Stream MemOps back from a text trace file."""
    with open(path) as stream:
        for line_number, line in enumerate(stream, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 5 or fields[2] not in ("L", "S"):
                raise ValueError(
                    f"{path}:{line_number}: malformed trace line {line!r}"
                )
            pc, addr = int(fields[0], 16), int(fields[1], 16)
            yield MemOp(
                pc, addr, fields[2] == "L", int(fields[3]), int(fields[4])
            )


def trace_summary(trace: Iterable[MemOp]) -> dict:
    """Aggregate statistics of a trace (for quick sanity checks)."""
    ops = loads = stores = instructions = dependent = 0
    min_addr, max_addr = None, None
    for op in trace:
        ops += 1
        instructions += 1 + op.work
        if op.is_load:
            loads += 1
            if op.dep >= 0:
                dependent += 1
        else:
            stores += 1
        if min_addr is None or op.addr < min_addr:
            min_addr = op.addr
        if max_addr is None or op.addr > max_addr:
            max_addr = op.addr
    return {
        "ops": ops,
        "loads": loads,
        "stores": stores,
        "instructions": instructions,
        "dependent_loads": dependent,
        "min_addr": min_addr,
        "max_addr": max_addr,
    }
