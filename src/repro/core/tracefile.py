"""Trace serialization: save and load MemOp streams.

Workload traces are normally generated on the fly, but a standalone
simulator needs to exchange traces with the outside world — to archive a
profiling input, to replay a trace from another tool, or to diff two runs.

Two formats:

* **binary** (default) — fixed 17-byte little-endian records
  ``<pc:u32, addr:u32, flags:u8, work:u32, dep:i32>``, streamed, with a
  magic header carrying a format version.  Compact and fast.
* **text** — one ``pc addr kind work dep`` line per op (hex addresses),
  greppable and diffable.

Both round-trip exactly, including dependence edges.  Loading is lazy
(generators), so multi-million-op traces never fully materialize.

For the batch engine there is a third, columnar representation:
:class:`TraceArrays` holds the whole trace as five parallel numpy
arrays (struct-of-arrays), and :func:`load_trace_arrays` decodes a
binary trace file into it in one ``np.frombuffer`` pass over the
packed records — no per-record ``iter_unpack`` at all.  numpy is an
optional dependency (the ``[perf]`` extra); everything else in this
module works without it.

Corruption is reported as :class:`~repro.errors.TraceFormatError` (a
``ValueError`` subclass) carrying the byte offset and record index of the
first bad record.  Both loaders also accept ``strict=False``, which skips
corrupt records with a warning — the pragmatic mode for salvaging the
intact prefix of a truncated archive.
"""

from __future__ import annotations

import struct
import warnings
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.core.instruction import MemOp
from repro.errors import TraceFormatError

MAGIC = b"RPTR\x01"
_RECORD = struct.Struct("<IIBIi")

_FLAG_LOAD = 0x1

#: records decoded per read in the batched loader (~68 KB per chunk)
_CHUNK_RECORDS = 4096

PathLike = Union[str, Path]


def save_trace(path: PathLike, trace: Iterable[MemOp]) -> int:
    """Write *trace* in binary format; returns the number of ops written."""
    count = 0
    with open(path, "wb") as stream:
        stream.write(MAGIC)
        for op in trace:
            stream.write(
                _RECORD.pack(
                    op.pc,
                    op.addr,
                    _FLAG_LOAD if op.is_load else 0,
                    op.work,
                    op.dep,
                )
            )
            count += 1
    return count


def load_trace(path: PathLike, strict: bool = True) -> Iterator[MemOp]:
    """Stream MemOps back from a binary trace file.

    Decoding is batched: records are read in ~68 KB chunks and unpacked
    with ``Struct.iter_unpack`` rather than one 17-byte ``read`` +
    ``unpack`` per record, which dominates replay time on multi-million
    op traces.  Laziness is preserved — each chunk's ops are yielded
    before the next chunk is read.

    With ``strict=False`` a truncated tail record is skipped with a
    warning instead of raising, yielding the intact prefix.
    """
    record_size = _RECORD.size
    chunk_bytes = record_size * _CHUNK_RECORDS
    with open(path, "rb") as stream:
        header = stream.read(len(MAGIC))
        if header != MAGIC:
            raise TraceFormatError(
                f"{path}: not a repro trace file (bad magic {header!r})",
                path=path,
                offset=0,
                record_index=0,
            )
        offset = len(MAGIC)
        index = 0
        leftover = b""
        while True:
            chunk = stream.read(chunk_bytes)
            if not chunk:
                if leftover:
                    message = (
                        f"{path}: truncated trace record {index} at byte "
                        f"offset {offset} ({len(leftover)} of {record_size} "
                        "bytes)"
                    )
                    if strict:
                        raise TraceFormatError(
                            message,
                            path=path,
                            offset=offset,
                            record_index=index,
                        )
                    warnings.warn(f"{message}; dropping corrupt tail")
                break
            if leftover:
                chunk = leftover + chunk
            usable = len(chunk) - len(chunk) % record_size
            leftover = chunk[usable:]
            if not usable:
                continue
            for pc, addr, flags, work, dep in _RECORD.iter_unpack(
                chunk[:usable]
            ):
                yield MemOp(pc, addr, bool(flags & _FLAG_LOAD), work, dep)
            decoded = usable // record_size
            offset += usable
            index += decoded


def _numpy():
    """The optional numpy dependency, with an actionable error."""
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - exercised without numpy
        raise ImportError(
            "columnar trace decoding requires numpy; install the [perf] "
            "extra (pip install repro[perf])"
        ) from exc
    return numpy


#: numpy view of one packed binary record (matches ``_RECORD`` exactly)
_NP_RECORD_FIELDS = [
    ("pc", "<u4"),
    ("addr", "<u4"),
    ("flags", "u1"),
    ("work", "<u4"),
    ("dep", "<i4"),
]


class TraceArrays:
    """A whole trace as five parallel (columnar) numpy arrays.

    The batch engine's native input: ``pc``/``addr``/``work``/``dep``
    are int64 arrays, ``is_load`` a bool array, all of equal length.
    int64 everywhere keeps arithmetic on the columns exact Python-int
    arithmetic (no silent uint wraparound for in-memory traces), at
    8 bytes per field per op.

    Iterating yields :class:`MemOp`\\ s, so a ``TraceArrays`` can be fed
    to *any* engine — the reference and fast engines just stream it.
    """

    __slots__ = ("pc", "addr", "is_load", "work", "dep")

    def __init__(self, pc, addr, is_load, work, dep) -> None:
        n = len(pc)
        if not (len(addr) == len(is_load) == len(work) == len(dep) == n):
            raise ValueError("trace columns must have equal length")
        self.pc = pc
        self.addr = addr
        self.is_load = is_load
        self.work = work
        self.dep = dep

    def __len__(self) -> int:
        return len(self.addr)

    def __iter__(self) -> Iterator[MemOp]:
        for pc, addr, is_load, work, dep in zip(
            self.pc.tolist(),
            self.addr.tolist(),
            self.is_load.tolist(),
            self.work.tolist(),
            self.dep.tolist(),
        ):
            yield MemOp(pc, addr, is_load, work, dep)

    @classmethod
    def from_ops(cls, ops: Iterable[MemOp]) -> "TraceArrays":
        """Decode an in-memory op stream into columns (one pass per field)."""
        np = _numpy()
        if not isinstance(ops, (list, tuple)):
            ops = list(ops)
        n = len(ops)
        return cls(
            np.fromiter((op.pc for op in ops), dtype=np.int64, count=n),
            np.fromiter((op.addr for op in ops), dtype=np.int64, count=n),
            np.fromiter((op.is_load for op in ops), dtype=np.bool_, count=n),
            np.fromiter((op.work for op in ops), dtype=np.int64, count=n),
            np.fromiter((op.dep for op in ops), dtype=np.int64, count=n),
        )


def load_trace_arrays(path: PathLike, strict: bool = True) -> TraceArrays:
    """Decode a whole binary trace file into :class:`TraceArrays`.

    One ``np.frombuffer`` view over the packed records replaces the
    per-chunk ``Struct.iter_unpack`` of :func:`load_trace`; the int64
    column copies are the only per-op work.  Raises the same
    :class:`~repro.errors.TraceFormatError`\\ s as the streaming loader
    (bad magic, truncated tail), and ``strict=False`` likewise salvages
    the intact prefix of a truncated file.
    """
    np = _numpy()
    data = Path(path).read_bytes()
    if data[: len(MAGIC)] != MAGIC:
        raise TraceFormatError(
            f"{path}: not a repro trace file (bad magic "
            f"{data[:len(MAGIC)]!r})",
            path=path,
            offset=0,
            record_index=0,
        )
    record_size = _RECORD.size
    body = memoryview(data)[len(MAGIC):]
    extra = len(body) % record_size
    if extra:
        usable = len(body) - extra
        index = usable // record_size
        offset = len(MAGIC) + usable
        message = (
            f"{path}: truncated trace record {index} at byte offset "
            f"{offset} ({extra} of {record_size} bytes)"
        )
        if strict:
            raise TraceFormatError(
                message, path=path, offset=offset, record_index=index
            )
        warnings.warn(f"{message}; dropping corrupt tail")
        body = body[:usable]
    records = np.frombuffer(body, dtype=np.dtype(_NP_RECORD_FIELDS))
    return TraceArrays(
        records["pc"].astype(np.int64),
        records["addr"].astype(np.int64),
        (records["flags"] & _FLAG_LOAD).astype(np.bool_),
        records["work"].astype(np.int64),
        records["dep"].astype(np.int64),
    )


def save_trace_text(path: PathLike, trace: Iterable[MemOp]) -> int:
    """Write *trace* as text, one op per line."""
    count = 0
    with open(path, "w") as stream:
        stream.write("# pc addr kind work dep\n")
        for op in trace:
            kind = "L" if op.is_load else "S"
            stream.write(
                f"{op.pc:#x} {op.addr:#x} {kind} {op.work} {op.dep}\n"
            )
            count += 1
    return count


def load_trace_text(path: PathLike, strict: bool = True) -> Iterator[MemOp]:
    """Stream MemOps back from a text trace file.

    With ``strict=False`` malformed lines are skipped with a warning
    instead of raising.
    """
    offset = 0
    with open(path, "rb") as stream:
        for line_number, raw in enumerate(stream, 1):
            line_offset = offset
            offset += len(raw)
            line = raw.decode("utf-8", errors="replace").strip()
            if not line or line.startswith("#"):
                continue
            op = None
            fields = line.split()
            if len(fields) == 5 and fields[2] in ("L", "S"):
                try:
                    op = MemOp(
                        int(fields[0], 16),
                        int(fields[1], 16),
                        fields[2] == "L",
                        int(fields[3]),
                        int(fields[4]),
                    )
                except ValueError:
                    op = None
            if op is None:
                message = (
                    f"{path}:{line_number}: malformed trace line {line!r} "
                    f"at byte offset {line_offset}"
                )
                if strict:
                    raise TraceFormatError(
                        message,
                        path=path,
                        offset=line_offset,
                        record_index=line_number,
                    )
                warnings.warn(f"{message}; skipping corrupt record")
                continue
            yield op


def trace_summary(trace: Iterable[MemOp]) -> dict:
    """Aggregate statistics of a trace (for quick sanity checks)."""
    ops = loads = stores = instructions = dependent = 0
    min_addr, max_addr = None, None
    for op in trace:
        ops += 1
        instructions += 1 + op.work
        if op.is_load:
            loads += 1
            if op.dep >= 0:
                dependent += 1
        else:
            stores += 1
        if min_addr is None or op.addr < min_addr:
            min_addr = op.addr
        if max_addr is None or op.addr > max_addr:
            max_addr = op.addr
    return {
        "ops": ops,
        "loads": loads,
        "stores": stores,
        "instructions": instructions,
        "dependent_loads": dependent,
        "min_addr": min_addr,
        "max_addr": max_addr,
    }
