"""Core model: trace records, configuration, the cycle-approximate CPU,
and multi-core composition."""

from repro.core.config import SystemConfig
from repro.core.cpu import Core
from repro.core.fastcpu import FastCore
from repro.core.instruction import (
    MemOp,
    PcAllocator,
    count_instructions,
    materialize,
)
from repro.core.stats import CoreResult, PrefetcherResult
from repro.core.system import MultiCoreSystem

__all__ = [
    "Core",
    "CoreResult",
    "FastCore",
    "MemOp",
    "MultiCoreSystem",
    "PcAllocator",
    "PrefetcherResult",
    "SystemConfig",
    "count_instructions",
    "materialize",
]
