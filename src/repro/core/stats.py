"""End-of-run results: IPC, BPKI, per-prefetcher accuracy and coverage.

These are the paper's reported metrics:

* IPC — retired instructions / cycles (Figure 7 top, normalized).
* BPKI — bus accesses per thousand retired instructions (Figure 7 bottom);
  every core<->memory transfer counts: demand fills, prefetch fills,
  writebacks.
* Prefetcher accuracy — used / issued (Figure 8).
* Prefetcher coverage — used / (used + demand misses) (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class PrefetcherResult:
    """Lifetime outcome of one prefetcher in one run."""

    issued: int = 0
    used: int = 0
    late: int = 0

    @property
    def accuracy(self) -> float:
        return self.used / self.issued if self.issued else 0.0


@dataclass
class CoreResult:
    """Everything measured for one core over one trace."""

    name: str = "core0"
    retired_instructions: int = 0
    cycles: float = 0.0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_demand_misses: int = 0
    bus_transfers: int = 0
    prefetchers: Dict[str, PrefetcherResult] = field(default_factory=dict)
    #: feedback intervals fully rolled over (tail flush not counted)
    intervals_completed: int = 0

    @property
    def ipc(self) -> float:
        return self.retired_instructions / self.cycles if self.cycles else 0.0

    @property
    def bpki(self) -> float:
        if not self.retired_instructions:
            return 0.0
        return self.bus_transfers / (self.retired_instructions / 1000.0)

    def coverage(self, owner: str) -> float:
        """used / (used + demand misses), per paper Eq. 2 at run scope."""
        result = self.prefetchers.get(owner)
        if result is None:
            return 0.0
        denominator = result.used + self.l2_demand_misses
        return result.used / denominator if denominator else 0.0

    def accuracy(self, owner: str) -> float:
        result = self.prefetchers.get(owner)
        return result.accuracy if result is not None else 0.0

    def speedup_over(self, baseline: "CoreResult") -> float:
        """IPC ratio vs a baseline run of the same trace."""
        return self.ipc / baseline.ipc if baseline.ipc else 0.0
