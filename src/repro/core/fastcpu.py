"""Fast-path simulation kernel: the ``engine="fast"`` core model.

:class:`FastCore` executes exactly the algorithm of
:class:`~repro.core.cpu.Core` — same event ordering, same arithmetic,
same feedback/throttling hooks — but restructured for speed:

* caches are :class:`~repro.cache.set_assoc.FlatSetAssociativeCache`
  instances (tag->slot dicts plus flat metadata arrays) instead of
  per-block :class:`~repro.cache.block.CacheBlock` objects;
* the per-op hot path (``step``) is one inlined function: no
  ``lookup``/``insert``/``_l2_hit_load`` call chain, no dataclass
  construction, no repeated ``block_address`` calls;
* per-op prefetcher observation dispatch is precomputed once
  (``_train_dispatch``) instead of re-resolving attribute chains per
  access;
* demand misses use :meth:`DramController.demand_access_fast`, the
  flattened form of the controller/bank/bus composition.

The two engines must stay *bit-identical* on every CoreResult /
PrefetcherResult statistic, throttle trajectory, and cache/DRAM counter;
``tests/differential/`` enforces this over a (workload x mechanism x
throttling) matrix.  Any optimization that changes a number is a bug
here, never a tolerable drift.  Cold paths (deferred CDP scans, prefetch
issue, value hooks, result assembly) are inherited from ``Core``
unchanged.

Telemetry contract: ``run`` binds ``feedback.record_use`` /
``record_demand_miss`` / ``record_eviction`` as locals once at entry, so
a :class:`~repro.telemetry.tracer.TracingFeedbackCollector` (chosen at
construction time when event tracing is on) binds transparently — and
``self.cycle`` / ``self.retired`` are flushed from the loop-local copies
before every ``record_*`` call site, so event timestamps are
bit-identical to the reference engine.  With telemetry disabled this hot
loop is byte-for-byte the pre-telemetry path.
"""

from __future__ import annotations

from typing import Iterable

from repro.cache.set_assoc import FlatSetAssociativeCache
from repro.core.cpu import Core
from repro.core.instruction import MemOp
from repro.core.stats import CoreResult


class FastCore(Core):
    """Behavior-identical, flat-state reimplementation of ``Core``."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        cfg = self.config
        # hot-loop constants, hoisted out of the per-op path
        self._blk = cfg.block_size
        self._tag_mask = ~(cfg.block_size - 1)
        self._offset_mask = cfg.block_size - 1
        self._block_shift = cfg.block_size.bit_length() - 1
        self._l1_set_mask = self.l1.n_sets - 1
        self._l2_set_mask = self.l2.n_sets - 1
        self._l1_ways = cfg.l1_ways
        self._l2_ways = cfg.l2_ways
        self._l1_latency = cfg.l1_latency
        self._l2_latency = cfg.l2_latency
        self._l2_mshrs = cfg.l2_mshrs
        self._rob_size = cfg.rob_size
        self._train_on_stores = cfg.train_on_stores
        #: constant: the reference path recomputes this per late merge
        self._unloaded_latency = self.dram.unloaded_latency()
        #: precomputed per-op observation dispatch (paper's trained set)
        self._train_dispatch = tuple(
            (p.name, p.on_demand_access) for p in self._trained_prefetchers
        )
        #: skip the training call entirely when nothing is trained
        self._has_train = bool(self._train_dispatch)
        self._has_value_hooks = self.dbp is not None or bool(
            self.value_observers
        )
        self._cdp_name = self.cdp.name if self.cdp is not None else None

    def _make_cache(self, size_bytes: int, ways: int, name: str):
        return FlatSetAssociativeCache(
            size_bytes, ways, self.config.block_size, name
        )

    # -- public driving interface -------------------------------------------

    def run(self, trace: Iterable[MemOp]) -> CoreResult:
        """Drive the whole trace through one localized loop.

        Per-op algorithm identical to :meth:`step`, but hot mutable
        state (cycle, retired instructions, load sequence, the
        completion map, cache hit/miss counters) lives in locals across
        ops and is flushed to ``self`` around every cold-path call, so
        the common case runs with no attribute traffic.  ``step``
        remains the one-op-at-a-time path (``MultiCoreSystem``
        interleaves cores through it).
        """
        # loop-invariant bindings
        l1 = self.l1
        l2 = self.l2
        l1_sets = l1._sets
        l2_sets = l2._sets
        l1_free = l1._free
        l1_dirty = l1.dirty
        l1_fill = l1.fill_time
        l1_owner = l1.owner
        l1_demand_pc = l1.demand_pc
        l1_ways = self._l1_ways
        l2_dirty = l2.dirty
        l2_owner = l2.owner
        l2_fill = l2.fill_time
        dram_writeback = self.dram.writeback
        dispatch_cost = self._dispatch_cost
        rob_size = self._rob_size
        tag_mask = self._tag_mask
        offset_mask = self._offset_mask
        shift = self._block_shift
        l1_set_mask = self._l1_set_mask
        l2_set_mask = self._l2_set_mask
        l1_latency = self._l1_latency
        l2_latency = self._l2_latency
        unloaded = self._unloaded_latency
        mshrs = self._l2_mshrs
        prune_at = self._completion_prune_at
        prune_keep = prune_at // 2
        train_on_stores = self._train_on_stores
        has_train = self._has_train
        has_value_hooks = self._has_value_hooks
        blk = self._blk
        cdp = self.cdp
        cdp_name = self._cdp_name
        gendler = self.gendler
        pg_observer = self.pg_observer
        hw_filter = self.hw_filter
        oracle_pcs = self.oracle_pcs
        memory = self.memory
        deferred = self._deferred
        outstanding = self._outstanding
        feedback = self.feedback
        record_use = feedback.record_use
        record_demand_miss = feedback.record_demand_miss
        demand_access = self.dram.demand_access_fast
        drain_deferred = self._drain_deferred
        fill_l2 = self._fill_l2
        fast_train = self._fast_train
        mshr_bound = self._mshr_bound
        issue_prefetch = self._issue_prefetch
        value_hooks = self._value_hooks

        # hot mutable state, flushed around cold calls and at the end
        cycle = self.cycle
        retired = self.retired
        seq = self._load_seq
        completions = self._completions
        l1_hits = l1.hits
        l1_misses = l1.misses
        l1_evictions = l1.evictions
        l2_hits = l2.hits
        l2_misses = l2.misses

        for op in trace:
            if deferred and deferred[0][0] <= cycle:
                self.cycle = cycle
                self.retired = retired
                drain_deferred()
            work = op.work + 1
            cycle += work * dispatch_cost
            retired += work
            if outstanding:
                # == Core._enforce_rob_span
                horizon = retired - rob_size
                while outstanding and outstanding[0][1] <= horizon:
                    completion = outstanding.popleft()[0]
                    if completion > cycle:
                        cycle = completion

            addr = op.addr
            tag = addr & tag_mask
            l1_set_index = (tag >> shift) & l1_set_mask
            l1_set = l1_sets[l1_set_index]

            if not op.is_load:
                # ---- store path (== Core._store) ------------------------
                slot = l1_set.get(tag)
                if slot is not None:
                    l1_hits += 1
                    l1_set[tag] = l1_set.pop(tag)  # LRU touch
                    l1_dirty[slot] = 1
                    continue
                l1_misses += 1
                l2_set = l2_sets[(tag >> shift) & l2_set_mask]
                slot = l2_set.get(tag)
                self.cycle = cycle
                self.retired = retired
                if slot is not None:
                    l2_hits += 1
                    l2_set[tag] = l2_set.pop(tag)
                    owner = l2_owner[slot]
                    if owner is not None:  # == CacheBlock.mark_used
                        l2_owner[slot] = None
                        record_use(owner, late=l2_fill[slot] > cycle)
                        if gendler is not None:
                            gendler.record_use(owner)
                        if owner == cdp_name and pg_observer is not None:
                            pg_observer.on_use(tag)
                    # == FastCore._fast_fill_l1 (dirty store fill)
                    if len(l1_set) >= l1_ways:
                        victim_tag = next(iter(l1_set))  # LRU victim
                        slot = l1_set.pop(victim_tag)
                        l1_evictions += 1
                        if l1_dirty[slot]:
                            victim_slot = l2_sets[
                                (victim_tag >> shift) & l2_set_mask
                            ].get(victim_tag)
                            if victim_slot is not None:
                                l2_dirty[victim_slot] = 1
                            else:
                                dram_writeback(cycle, victim_tag)
                                self.bus_transfers += 1
                    else:
                        slot = l1_free[l1_set_index].pop()
                    l1_fill[slot] = cycle
                    l1_owner[slot] = None
                    l1_dirty[slot] = 1
                    l1_demand_pc[slot] = 0
                    l1_set[tag] = slot
                    if train_on_stores and has_train:
                        fast_train(addr, op.pc, True)
                    continue
                l2_misses += 1
                record_demand_miss(tag)
                demand_access(cycle, tag)
                self.bus_transfers += 1
                fill_l2(tag, fill_time=cycle, demand_pc=op.pc)
                # == FastCore._fast_fill_l1 (dirty store fill)
                if len(l1_set) >= l1_ways:
                    victim_tag = next(iter(l1_set))  # LRU victim
                    slot = l1_set.pop(victim_tag)
                    l1_evictions += 1
                    if l1_dirty[slot]:
                        victim_slot = l2_sets[
                            (victim_tag >> shift) & l2_set_mask
                        ].get(victim_tag)
                        if victim_slot is not None:
                            l2_dirty[victim_slot] = 1
                        else:
                            dram_writeback(cycle, victim_tag)
                            self.bus_transfers += 1
                else:
                    slot = l1_free[l1_set_index].pop()
                l1_fill[slot] = cycle
                l1_owner[slot] = None
                l1_dirty[slot] = 1
                l1_demand_pc[slot] = 0
                l1_set[tag] = slot
                if train_on_stores and has_train:
                    fast_train(addr, op.pc, False)
                continue

            # ---- load path (== Core._load) ------------------------------
            load_seq = seq
            seq += 1
            dep = op.dep
            if dep < 0:
                ready = cycle
            else:  # == Core._ready_time
                ready = completions.get(dep, 0.0)
                if ready < cycle:
                    ready = cycle

            slot = l1_set.get(tag)
            if slot is not None:
                l1_hits += 1
                l1_set[tag] = l1_set.pop(tag)
                completion = ready + l1_latency
                completions[load_seq] = completion
                if len(completions) >= prune_at:
                    horizon = load_seq - prune_keep
                    completions = {
                        s: c for s, c in completions.items() if s > horizon
                    }
                    self._completions = completions
                if completion > cycle:
                    # == Core._push_outstanding
                    while outstanding and outstanding[0][0] <= cycle:
                        outstanding.popleft()
                    outstanding.append((completion, retired))
                    if len(outstanding) > mshrs:
                        self.cycle = cycle
                        mshr_bound()
                        cycle = self.cycle
                if has_value_hooks:
                    self.cycle = cycle
                    self.retired = retired
                    value_hooks(op, completion)
                continue

            l1_misses += 1
            l2_set = l2_sets[(tag >> shift) & l2_set_mask]
            slot = l2_set.get(tag)
            self.cycle = cycle
            self.retired = retired
            if slot is not None:
                # ---- L2 hit (== Core._l2_hit_load) ----------------------
                l2_hits += 1
                l2_set[tag] = l2_set.pop(tag)
                fill_time = l2_fill[slot]
                late = fill_time > ready
                if late:
                    data_ready = ready + unloaded
                    if fill_time < data_ready:
                        data_ready = fill_time
                    l2_fill[slot] = data_ready
                else:
                    data_ready = ready
                completion = data_ready + l2_latency
                owner = l2_owner[slot]
                if owner is not None:  # == CacheBlock.mark_used
                    l2_owner[slot] = None
                    record_use(owner, late=late)
                    if gendler is not None:
                        gendler.record_use(owner)
                    if owner == cdp_name:
                        if hw_filter is not None:
                            hw_filter.on_prefetch_used(tag)
                        if pg_observer is not None:
                            pg_observer.on_use(tag)
                # == FastCore._fast_fill_l1 (clean load fill)
                if len(l1_set) >= l1_ways:
                    victim_tag = next(iter(l1_set))  # LRU victim
                    slot = l1_set.pop(victim_tag)
                    l1_evictions += 1
                    if l1_dirty[slot]:
                        victim_slot = l2_sets[
                            (victim_tag >> shift) & l2_set_mask
                        ].get(victim_tag)
                        if victim_slot is not None:
                            l2_dirty[victim_slot] = 1
                        else:
                            dram_writeback(cycle, victim_tag)
                            self.bus_transfers += 1
                else:
                    slot = l1_free[l1_set_index].pop()
                l1_fill[slot] = cycle
                l1_owner[slot] = None
                l1_dirty[slot] = 0
                l1_demand_pc[slot] = 0
                l1_set[tag] = slot
                while outstanding and outstanding[0][0] <= cycle:
                    outstanding.popleft()
                outstanding.append((completion, retired))
                if len(outstanding) > mshrs:
                    mshr_bound()
                    cycle = self.cycle
                if has_train:
                    fast_train(addr, op.pc, True)
            else:
                # ---- L2 miss (== Core._l2_miss_load) --------------------
                l2_misses += 1
                record_demand_miss(tag)
                if op.pc in oracle_pcs:
                    completion = ready + l2_latency
                    fill_l2(tag, fill_time=ready, demand_pc=op.pc)
                else:
                    arrival = demand_access(ready, tag)
                    self.bus_transfers += 1
                    completion = arrival + l2_latency
                    fill_l2(tag, fill_time=arrival, demand_pc=op.pc)
                    if cdp is not None and self._prefetcher_enabled(cdp.name):
                        words = memory.read_block_words(tag, blk)
                        requests = cdp.scan_fill(
                            tag,
                            words,
                            depth=1,
                            demand_pc=op.pc,
                            accessed_offset=addr & offset_mask,
                        )
                        for request in requests:
                            issue_prefetch(request, ready)
                # == FastCore._fast_fill_l1 (clean load fill)
                if len(l1_set) >= l1_ways:
                    victim_tag = next(iter(l1_set))  # LRU victim
                    slot = l1_set.pop(victim_tag)
                    l1_evictions += 1
                    if l1_dirty[slot]:
                        victim_slot = l2_sets[
                            (victim_tag >> shift) & l2_set_mask
                        ].get(victim_tag)
                        if victim_slot is not None:
                            l2_dirty[victim_slot] = 1
                        else:
                            dram_writeback(cycle, victim_tag)
                            self.bus_transfers += 1
                else:
                    slot = l1_free[l1_set_index].pop()
                l1_fill[slot] = cycle
                l1_owner[slot] = None
                l1_dirty[slot] = 0
                l1_demand_pc[slot] = 0
                l1_set[tag] = slot
                while outstanding and outstanding[0][0] <= cycle:
                    outstanding.popleft()
                outstanding.append((completion, retired))
                if len(outstanding) > mshrs:
                    mshr_bound()
                    cycle = self.cycle
                if has_train:
                    fast_train(addr, op.pc, False)

            completions[load_seq] = completion
            if len(completions) >= prune_at:
                horizon = load_seq - prune_keep
                completions = {
                    s: c for s, c in completions.items() if s > horizon
                }
                self._completions = completions
            if has_value_hooks:
                value_hooks(op, completion)

        self.cycle = cycle
        self.retired = retired
        self._load_seq = seq
        self._completions = completions
        l1.hits = l1_hits
        l1.misses = l1_misses
        l1.evictions = l1_evictions
        l2.hits = l2_hits
        l2.misses = l2_misses
        return self.finish()

    def step(self, op: MemOp) -> None:  # noqa: C901 - deliberately inlined
        """One memory op; semantically identical to ``Core.step``."""
        deferred = self._deferred
        if deferred and deferred[0][0] <= self.cycle:
            self._drain_deferred()
        work = op.work + 1
        cycle = self.cycle + work * self._dispatch_cost
        retired = self.retired + work
        self.retired = retired
        outstanding = self._outstanding
        if outstanding:
            # == Core._enforce_rob_span
            horizon = retired - self._rob_size
            while outstanding and outstanding[0][1] <= horizon:
                completion = outstanding.popleft()[0]
                if completion > cycle:
                    cycle = completion
        self.cycle = cycle

        addr = op.addr
        tag = addr & self._tag_mask
        shift = self._block_shift
        l1 = self.l1
        l1_set_index = (tag >> shift) & self._l1_set_mask
        l1_set = l1._sets[l1_set_index]

        if not op.is_load:
            # ---- store path (== Core._store) ----------------------------
            slot = l1_set.get(tag)
            if slot is not None:
                l1.hits += 1
                l1_set[tag] = l1_set.pop(tag)  # LRU touch
                l1.dirty[slot] = 1
                return
            l1.misses += 1
            l2 = self.l2
            l2_set = l2._sets[(tag >> shift) & self._l2_set_mask]
            slot = l2_set.get(tag)
            if slot is not None:
                l2.hits += 1
                l2_set[tag] = l2_set.pop(tag)
                owner_arr = l2.owner
                owner = owner_arr[slot]
                if owner is not None:  # == CacheBlock.mark_used
                    owner_arr[slot] = None
                    self.feedback.record_use(
                        owner, late=l2.fill_time[slot] > cycle
                    )
                    gendler = self.gendler
                    if gendler is not None:
                        gendler.record_use(owner)
                    if owner == self._cdp_name and self.pg_observer is not None:
                        self.pg_observer.on_use(tag)
                self._fast_fill_l1(tag, l1_set_index, 1)
                if self._train_on_stores and self._has_train:
                    self._fast_train(addr, op.pc, True)
                return
            l2.misses += 1
            self.feedback.record_demand_miss(tag)
            self.dram.demand_access_fast(cycle, tag)
            self.bus_transfers += 1
            self._fill_l2(tag, fill_time=cycle, demand_pc=op.pc)
            self._fast_fill_l1(tag, l1_set_index, 1)
            if self._train_on_stores and self._has_train:
                self._fast_train(addr, op.pc, False)
            return

        # ---- load path (== Core._load) ----------------------------------
        seq = self._load_seq
        self._load_seq = seq + 1
        dep = op.dep
        if dep < 0:
            ready = cycle
        else:  # == Core._ready_time: max(cycle, completion of producer)
            ready = self._completions.get(dep, 0.0)
            if ready < cycle:
                ready = cycle

        slot = l1_set.get(tag)
        if slot is not None:
            l1.hits += 1
            l1_set[tag] = l1_set.pop(tag)
            completion = ready + self._l1_latency
            completions = self._completions
            completions[seq] = completion
            if len(completions) >= self._completion_prune_at:
                horizon = seq - self._completion_prune_at // 2
                self._completions = {
                    s: c for s, c in completions.items() if s > horizon
                }
            if completion > cycle:
                # == Core._push_outstanding (MSHR overflow out of line)
                while outstanding and outstanding[0][0] <= cycle:
                    outstanding.popleft()
                outstanding.append((completion, retired))
                if len(outstanding) > self._l2_mshrs:
                    self._mshr_bound()
            if self._has_value_hooks:
                self._value_hooks(op, completion)
            return

        l1.misses += 1
        l2 = self.l2
        l2_set = l2._sets[(tag >> shift) & self._l2_set_mask]
        slot = l2_set.get(tag)
        if slot is not None:
            # ---- L2 hit (== Core._l2_hit_load) --------------------------
            l2.hits += 1
            l2_set[tag] = l2_set.pop(tag)
            fill_arr = l2.fill_time
            fill_time = fill_arr[slot]
            late = fill_time > ready
            if late:
                # demand merge with the in-flight fill, promoted to
                # demand priority (bounded by a fresh demand fetch)
                data_ready = ready + self._unloaded_latency
                if fill_time < data_ready:
                    data_ready = fill_time
                fill_arr[slot] = data_ready
            else:
                data_ready = ready
            completion = data_ready + self._l2_latency
            owner_arr = l2.owner
            owner = owner_arr[slot]
            if owner is not None:  # == CacheBlock.mark_used
                owner_arr[slot] = None
                self.feedback.record_use(owner, late=late)
                gendler = self.gendler
                if gendler is not None:
                    gendler.record_use(owner)
                if owner == self._cdp_name:
                    if self.hw_filter is not None:
                        self.hw_filter.on_prefetch_used(tag)
                    if self.pg_observer is not None:
                        self.pg_observer.on_use(tag)
            self._fast_fill_l1(tag, l1_set_index, 0)
            while outstanding and outstanding[0][0] <= cycle:
                outstanding.popleft()
            outstanding.append((completion, retired))
            if len(outstanding) > self._l2_mshrs:
                self._mshr_bound()
            if self._has_train:
                self._fast_train(addr, op.pc, True)
        else:
            # ---- L2 miss (== Core._l2_miss_load) ------------------------
            l2.misses += 1
            self.feedback.record_demand_miss(tag)
            if op.pc in self.oracle_pcs:
                # ideal-LDS oracle: the miss becomes a hit
                completion = ready + self._l2_latency
                self._fill_l2(tag, fill_time=ready, demand_pc=op.pc)
            else:
                arrival = self.dram.demand_access_fast(ready, tag)
                self.bus_transfers += 1
                completion = arrival + self._l2_latency
                self._fill_l2(tag, fill_time=arrival, demand_pc=op.pc)
                cdp = self.cdp
                if cdp is not None and self._prefetcher_enabled(cdp.name):
                    words = self.memory.read_block_words(tag, self._blk)
                    requests = cdp.scan_fill(
                        tag,
                        words,
                        depth=1,
                        demand_pc=op.pc,
                        accessed_offset=addr & self._offset_mask,
                    )
                    for request in requests:
                        self._issue_prefetch(request, ready)
            self._fast_fill_l1(tag, l1_set_index, 0)
            while outstanding and outstanding[0][0] <= cycle:
                outstanding.popleft()
            outstanding.append((completion, retired))
            if len(outstanding) > self._l2_mshrs:
                self._mshr_bound()
            if self._has_train:
                self._fast_train(addr, op.pc, False)

        completions = self._completions
        completions[seq] = completion
        if len(completions) >= self._completion_prune_at:
            horizon = seq - self._completion_prune_at // 2
            self._completions = {
                s: c for s, c in completions.items() if s > horizon
            }
        if self._has_value_hooks:
            self._value_hooks(op, completion)

    # -- fills (flat-state forms of Core._fill_l1 / Core._fill_l2) ----------

    def _fast_fill_l1(self, tag: int, set_index: int, dirty: int) -> None:
        l1 = self.l1
        l1_set = l1._sets[set_index]
        if len(l1_set) >= self._l1_ways:
            victim_tag = next(iter(l1_set))  # LRU victim
            slot = l1_set.pop(victim_tag)
            l1.evictions += 1
            if l1.dirty[slot]:
                # write-back to L2: update the L2 copy if still resident;
                # otherwise the dirty data goes all the way to memory
                l2 = self.l2
                victim_slot = l2._sets[
                    (victim_tag >> self._block_shift) & self._l2_set_mask
                ].get(victim_tag)
                if victim_slot is not None:
                    l2.dirty[victim_slot] = 1
                else:
                    self.dram.writeback(self.cycle, victim_tag)
                    self.bus_transfers += 1
        else:
            slot = l1._free[set_index].pop()
        l1.fill_time[slot] = self.cycle
        l1.owner[slot] = None
        l1.dirty[slot] = dirty
        l1.demand_pc[slot] = 0
        l1_set[tag] = slot

    def _fill_l2(
        self,
        block_addr: int,
        fill_time: float,
        prefetch_owner=None,
        demand_pc: int = 0,
    ) -> None:
        l2 = self.l2
        set_index = (block_addr >> self._block_shift) & self._l2_set_mask
        cache_set = l2._sets[set_index]
        slot = cache_set.get(block_addr)
        if slot is not None:
            # a fill racing a fill refreshes in place, evicts nothing
            cache_set[block_addr] = cache_set.pop(block_addr)
            return
        if len(cache_set) >= self._l2_ways:
            victim_tag = next(iter(cache_set))  # LRU victim
            slot = cache_set.pop(victim_tag)
            l2.evictions += 1
            victim_owner = l2.owner[slot]
            victim_dirty = l2.dirty[slot]
            self.feedback.record_eviction(
                victim_tag,
                by_prefetch=prefetch_owner is not None,
                victim_was_demand=victim_owner is None,
            )
            if victim_owner is not None and victim_owner == self._cdp_name:
                if self.hw_filter is not None:
                    self.hw_filter.on_prefetch_evicted_unused(victim_tag)
                if self.pg_observer is not None:
                    self.pg_observer.on_evict(victim_tag)
            if victim_dirty:
                self.dram.writeback(self.cycle, victim_tag)
                self.bus_transfers += 1
        else:
            slot = l2._free[set_index].pop()
        l2.fill_time[slot] = fill_time
        l2.owner[slot] = prefetch_owner
        l2.dirty[slot] = 0
        l2.demand_pc[slot] = demand_pc
        if prefetch_owner is not None:
            l2.prefetch_fills += 1
        cache_set[block_addr] = slot

    # -- prefetcher training (== Core._train_prefetchers) -------------------

    def _fast_train(self, addr: int, pc: int, l2_hit: bool) -> None:
        cycle = self.cycle
        gendler = self.gendler
        issue = self._issue_prefetch
        for name, observe in self._train_dispatch:
            requests = observe(cycle, addr, pc, l2_hit)
            if requests and (gendler is None or gendler.is_enabled(name)):
                for request in requests:
                    issue(request, cycle)

    def _push_outstanding(self, completion: float) -> None:
        # same as Core._push_outstanding with the MSHR bound hoisted;
        # ``step`` inlines this, but cold paths may still call it
        outstanding = self._outstanding
        cycle = self.cycle
        while outstanding and outstanding[0][0] <= cycle:
            outstanding.popleft()
        outstanding.append((completion, self.retired))
        if len(outstanding) > self._l2_mshrs:
            self._mshr_bound()

    def _mshr_bound(self) -> None:
        # rare: enforce the L2 MSHR cap (tail of Core._push_outstanding)
        outstanding = self._outstanding
        cycle = self.cycle
        mshrs = self._l2_mshrs
        while len(outstanding) > mshrs:
            head_completion = outstanding.popleft()[0]
            if head_completion > cycle:
                cycle = head_completion
                while outstanding and outstanding[0][0] <= cycle:
                    outstanding.popleft()
        self.cycle = cycle
