"""Cycle-approximate out-of-order core with a full memory hierarchy.

The model follows the standard MLP-interval approximation of an OoO
processor: dispatch advances at ``issue_width`` instructions per cycle;
demand-load misses overlap up to the L2 MSHR count within a ROB-sized
instruction window; when the window saturates, dispatch stalls until the
oldest miss completes (in-order retirement).  All prefetch traffic flows
through the same prefetch queue, DRAM banks and bus as demand traffic, so
inter-prefetcher interference — the paper's subject — is structural, not
scripted.

Event ordering per memory op:

1. fire any deferred CDP block scans whose fills have arrived,
2. advance dispatch by the op's work,
3. demand access walks L1 -> L2 -> DRAM (demands first on the bus),
4. prefetchers observe the access and their requests issue afterwards.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.cache.set_assoc import SetAssociativeCache
from repro.core.config import SystemConfig
from repro.core.instruction import MemOp
from repro.core.stats import CoreResult, PrefetcherResult
from repro.dram.controller import DramController
from repro.memory.address import block_address, block_offset
from repro.memory.backing import SimulatedMemory
from repro.prefetch.base import Prefetcher, PrefetchQueue, PrefetchRequest
from repro.prefetch.cdp import CDP_LEVELS, ContentDirectedPrefetcher
from repro.prefetch.dbp import DependenceBasedPrefetcher
from repro.prefetch.filter_hw import HardwarePrefetchFilter
from repro.throttle.feedback import FeedbackCollector
from repro.throttle.gendler import GendlerSelector


class Core:
    """One core: private L1/L2, its prefetchers, and a share of the DRAM."""

    def __init__(
        self,
        config: SystemConfig,
        memory: SimulatedMemory,
        dram: DramController,
        name: str = "core0",
        stream: Optional[Prefetcher] = None,
        cdp: Optional[ContentDirectedPrefetcher] = None,
        correlation_prefetchers: Sequence[Prefetcher] = (),
        dbp: Optional[DependenceBasedPrefetcher] = None,
        hw_filter: Optional[HardwarePrefetchFilter] = None,
        gendler: Optional[GendlerSelector] = None,
        oracle_pcs: Optional[Set[int]] = None,
        value_observers: Sequence = (),
        telemetry=None,
    ) -> None:
        self.config = config
        self.memory = memory
        self.dram = dram
        self.name = name
        self.stream = stream
        self.cdp = cdp
        self.correlation = list(correlation_prefetchers)
        self.dbp = dbp
        self.hw_filter = hw_filter
        self.gendler = gendler
        self.oracle_pcs = oracle_pcs or set()
        #: prefetchers trained on retiring load values (pointer cache, AVD)
        self.value_observers = list(value_observers)
        #: optional informing-load profiling hook (compiler.informing)
        self.pg_observer = None

        self.l1 = self._make_cache(config.l1_size, config.l1_ways, f"{name}-l1")
        self.l2 = self._make_cache(config.l2_size, config.l2_ways, f"{name}-l2")
        self.pf_queue = PrefetchQueue(config.prefetch_queue_size)

        trained: List[Prefetcher] = []
        if stream is not None:
            trained.append(stream)
        trained.extend(self.correlation)
        if dbp is not None:
            trained.append(dbp)
        self._trained_prefetchers = trained
        names = [p.name for p in trained]
        if cdp is not None:
            names.append(cdp.name)
        #: optional telemetry stream (repro.telemetry.CoreTelemetry).
        #: None (the default) keeps every hot path exactly as before:
        #: the plain collector below and a no-op tracer guard on the
        #: prefetch-issue cold path are the entire disabled footprint.
        self.telemetry = telemetry
        self._tracer = telemetry.tracer if telemetry is not None else None
        if telemetry is None:
            self.feedback = FeedbackCollector(names, config.interval_evictions)
        else:
            self.feedback = telemetry.make_collector(
                names, config.interval_evictions, clock=self
            )

        self.cycle = 0.0
        self.retired = 0
        self.bus_transfers = 0
        self._dispatch_cost = 1.0 / config.issue_width
        self._outstanding: Deque[Tuple[float, int]] = deque()
        self._deferred: List[Tuple[float, int, int, int]] = []  # CDP scans
        self._seq = 0
        self._finished = False
        # Load-load dependence tracking: completion time per load sequence
        # number, so a pointer-chasing load issues only after its producer.
        self._load_seq = 0
        self._completions: Dict[int, float] = {}
        self._completion_prune_at = 8192

    def _make_cache(self, size_bytes: int, ways: int, name: str):
        """Cache factory hook; the fast engine substitutes its flat cache."""
        return SetAssociativeCache(
            size_bytes, ways, self.config.block_size, name
        )

    # -- public driving interface ---------------------------------------------

    def run(self, trace: Iterable[MemOp]) -> CoreResult:
        """Run a whole trace to completion and return the results."""
        for op in trace:
            self.step(op)
        return self.finish()

    def step(self, op: MemOp) -> None:
        """Execute one memory operation (plus its preceding work)."""
        if self._deferred and self._deferred[0][0] <= self.cycle:
            self._drain_deferred()
        work = op.work + 1
        self.cycle += work * self._dispatch_cost
        self.retired += work
        self._enforce_rob_span()
        if op.is_load:
            self._load(op)
        else:
            self._store(op)

    def finish(self) -> CoreResult:
        """Retire all outstanding work and assemble the results."""
        if not self._finished:
            for completion, __ in self._outstanding:
                if completion > self.cycle:
                    self.cycle = completion
            self._outstanding.clear()
            self._finished = True
            # Fold the trailing partial interval into the smoothed
            # counters (and the recorded series, when telemetry is on).
            # The throttling controller is deliberately not invoked.
            self.feedback.flush_partial_interval()
        return self.result()

    def result(self) -> CoreResult:
        prefetchers: Dict[str, PrefetcherResult] = {}
        for owner, counters in self.feedback.counters.items():
            prefetchers[owner] = PrefetcherResult(
                issued=counters.lifetime_prefetched,
                used=counters.lifetime_used,
                late=counters.lifetime_late,
            )
        return CoreResult(
            name=self.name,
            retired_instructions=self.retired,
            cycles=self.cycle,
            l1_hits=self.l1.stats.hits,
            l1_misses=self.l1.stats.misses,
            l2_hits=self.l2.stats.hits,
            l2_demand_misses=self.feedback.lifetime_misses,
            bus_transfers=self.bus_transfers,
            prefetchers=prefetchers,
            intervals_completed=self.feedback.intervals_completed,
        )

    # -- dispatch window -------------------------------------------------------

    def _enforce_rob_span(self) -> None:
        """Stall dispatch on misses older than one ROB of instructions."""
        outstanding = self._outstanding
        horizon = self.retired - self.config.rob_size
        while outstanding and outstanding[0][1] <= horizon:
            completion, __ = outstanding.popleft()
            if completion > self.cycle:
                self.cycle = completion

    def _push_outstanding(self, completion: float) -> None:
        outstanding = self._outstanding
        cycle = self.cycle
        while outstanding and outstanding[0][0] <= cycle:
            outstanding.popleft()
        outstanding.append((completion, self.retired))
        while len(outstanding) > self.config.l2_mshrs:
            head_completion, __ = outstanding.popleft()
            if head_completion > self.cycle:
                self.cycle = head_completion
                cycle = head_completion
                while outstanding and outstanding[0][0] <= cycle:
                    outstanding.popleft()

    # -- demand path -------------------------------------------------------------

    def _ready_time(self, op: MemOp) -> float:
        """Earliest cycle this load's address is available.

        A dependent load (pointer chase) waits for its producer load to
        complete; an independent load issues at the dispatch frontier.
        """
        if op.dep < 0:
            return self.cycle
        return max(self.cycle, self._completions.get(op.dep, 0.0))

    def _record_completion(self, seq: int, completion: float) -> None:
        self._completions[seq] = completion
        if len(self._completions) >= self._completion_prune_at:
            # Dependences are short-range; drop the older half.
            horizon = seq - self._completion_prune_at // 2
            self._completions = {
                s: c for s, c in self._completions.items() if s > horizon
            }

    def _load(self, op: MemOp) -> None:
        cfg = self.config
        seq = self._load_seq
        self._load_seq = seq + 1
        ready = self._ready_time(op)
        if self.l1.lookup(op.addr) is not None:
            completion = ready + cfg.l1_latency
            self._record_completion(seq, completion)
            if completion > self.cycle:
                self._push_outstanding(completion)
            self._value_hooks(op, completion)
            return
        block = self.l2.lookup(op.addr)
        if block is not None:
            completion = self._l2_hit_load(op, block, ready)
        else:
            completion = self._l2_miss_load(op, ready)
        self._record_completion(seq, completion)
        self._value_hooks(op, completion)

    def _l2_hit_load(self, op: MemOp, block, ready: float) -> float:
        cfg = self.config
        late = block.fill_time > ready
        if late:
            # Demand merge with an in-flight (usually prefetch) fill.  A
            # real controller promotes the merged request to demand
            # priority, so the wait is bounded by what a fresh demand
            # fetch would have cost.
            data_ready = min(block.fill_time, ready + self.dram.unloaded_latency())
            block.fill_time = data_ready
        else:
            data_ready = ready
        completion = data_ready + cfg.l2_latency
        owner = block.mark_used()
        if owner is not None:
            self.feedback.record_use(owner, late=late)
            if self.gendler is not None:
                self.gendler.record_use(owner)
            if self.cdp is not None and owner == self.cdp.name:
                if self.hw_filter is not None:
                    self.hw_filter.on_prefetch_used(block.addr)
                if self.pg_observer is not None:
                    self.pg_observer.on_use(block.addr)
        self._fill_l1(op.addr)
        self._push_outstanding(completion)
        self._train_prefetchers(op, l2_hit=True)
        return completion

    def _l2_miss_load(self, op: MemOp, ready: float) -> float:
        cfg = self.config
        block_addr = block_address(op.addr, cfg.block_size)
        self.feedback.record_demand_miss(block_addr)
        if op.pc in self.oracle_pcs:
            # Ideal-LDS oracle (paper Figure 1 bottom): the miss becomes a
            # hit — no DRAM access, no bus transfer.
            completion = ready + cfg.l2_latency
            self._fill_l2(block_addr, fill_time=ready, demand_pc=op.pc)
        else:
            arrival = self.dram.access(ready, block_addr, is_demand=True)
            self.bus_transfers += 1
            completion = arrival + cfg.l2_latency
            self._fill_l2(block_addr, fill_time=arrival, demand_pc=op.pc)
            if self.cdp is not None and self._prefetcher_enabled(self.cdp.name):
                # The scan conceptually happens when the fill arrives; the
                # resulting prefetches are issued then.  Issuing at the
                # miss's ready time keeps arrival order consistent with
                # the dependent demand stream (see DESIGN.md Section 5).
                words = self.memory.read_block_words(block_addr, cfg.block_size)
                requests = self.cdp.scan_fill(
                    block_addr,
                    words,
                    depth=1,
                    demand_pc=op.pc,
                    accessed_offset=block_offset(op.addr, cfg.block_size),
                )
                for request in requests:
                    self._issue_prefetch(request, ready)
        self._fill_l1(op.addr)
        self._push_outstanding(completion)
        self._train_prefetchers(op, l2_hit=False)
        return completion

    def _store(self, op: MemOp) -> None:
        cfg = self.config
        l1_block = self.l1.lookup(op.addr)
        if l1_block is not None:
            l1_block.dirty = True
            return
        block = self.l2.lookup(op.addr)
        if block is not None:
            owner = block.mark_used()
            if owner is not None:
                self.feedback.record_use(owner, late=block.fill_time > self.cycle)
                if self.gendler is not None:
                    self.gendler.record_use(owner)
                if (
                    self.cdp is not None
                    and owner == self.cdp.name
                    and self.pg_observer is not None
                ):
                    self.pg_observer.on_use(block.addr)
            self._fill_l1(op.addr, dirty=True)
            if cfg.train_on_stores:
                self._train_prefetchers(op, l2_hit=True)
            return
        block_addr = block_address(op.addr, cfg.block_size)
        self.feedback.record_demand_miss(block_addr)
        self.dram.access(self.cycle, block_addr, is_demand=True)
        self.bus_transfers += 1
        self._fill_l2(block_addr, fill_time=self.cycle, demand_pc=op.pc)
        self._fill_l1(op.addr, dirty=True)
        if cfg.train_on_stores:
            self._train_prefetchers(op, l2_hit=False)

    # -- fills and evictions -------------------------------------------------------

    def _fill_l1(self, addr: int, dirty: bool = False) -> None:
        victim = self.l1.insert(addr, fill_time=self.cycle, dirty=dirty)
        if victim is not None and victim.dirty:
            # Write-back to L2: update the L2 copy if still resident;
            # otherwise the dirty data must go all the way to memory.
            l2_block = self.l2.peek(victim.addr)
            if l2_block is not None:
                l2_block.dirty = True
            else:
                self.dram.writeback(self.cycle, victim.addr)
                self.bus_transfers += 1

    def _fill_l2(
        self,
        block_addr: int,
        fill_time: float,
        prefetch_owner: Optional[str] = None,
        demand_pc: int = 0,
    ) -> None:
        victim = self.l2.insert(
            block_addr,
            fill_time=fill_time,
            prefetch_owner=prefetch_owner,
            demand_pc=demand_pc,
        )
        if victim is None:
            return
        self.feedback.record_eviction(
            victim.addr,
            by_prefetch=prefetch_owner is not None,
            victim_was_demand=victim.prefetch_owner is None,
        )
        if victim.prefetch_owner is not None:
            if self.cdp is not None and victim.prefetch_owner == self.cdp.name:
                if self.hw_filter is not None:
                    self.hw_filter.on_prefetch_evicted_unused(victim.addr)
                if self.pg_observer is not None:
                    self.pg_observer.on_evict(victim.addr)
        if victim.dirty:
            self.dram.writeback(self.cycle, victim.addr)
            self.bus_transfers += 1

    # -- prefetch path ------------------------------------------------------------

    def _prefetcher_enabled(self, owner: str) -> bool:
        if self.gendler is None:
            return True
        return self.gendler.is_enabled(owner)

    def _train_prefetchers(self, op: MemOp, l2_hit: bool) -> None:
        for prefetcher in self._trained_prefetchers:
            requests = prefetcher.on_demand_access(
                self.cycle, op.addr, op.pc, l2_hit
            )
            if requests and self._prefetcher_enabled(prefetcher.name):
                for request in requests:
                    self._issue_prefetch(request, self.cycle)

    def _value_hooks(self, op: MemOp, completion: float) -> None:
        """Value hooks: every retiring load exposes its loaded value to
        the value-trained prefetchers (DBP producers, pointer cache, AVD).

        The value is only available when the load *completes*, so
        producer-triggered prefetches (DBP) are issued at the completion
        time — this is precisely why DBP "cannot prefetch far ahead
        enough to cover modern memory latencies" (paper Section 6.3):
        its one-hop lookahead starts a full miss latency late."""
        if self.dbp is None and not self.value_observers:
            return
        value = self.memory.read_word(op.addr)
        if self.dbp is not None:
            requests = self.dbp.on_load_value(completion, op.pc, value)
            if requests and self._prefetcher_enabled(self.dbp.name):
                for request in requests:
                    self._issue_prefetch(request, completion)
        for observer in self.value_observers:
            observer.on_load_value(completion, op.pc, op.addr, value)

    def _issue_prefetch(
        self,
        request: PrefetchRequest,
        now: float,
        parent_addr: Optional[int] = None,
    ) -> None:
        block_addr = request.block_addr
        is_cdp = self.cdp is not None and request.owner == self.cdp.name
        if (
            is_cdp
            and self.hw_filter is not None
            and not self.hw_filter.allows(block_addr)
        ):
            return
        # "This prefetch request first accesses the last-level cache; if it
        # misses, a memory request is issued" (paper Section 2.2).
        if self.l2.contains(block_addr):
            return
        if not self.pf_queue.try_admit(now):
            return
        completion = self.dram.access(now, block_addr, is_demand=False)
        if completion is None:
            return  # dropped: memory request buffer full
        self.pf_queue.commit(completion)
        self.bus_transfers += 1
        self.feedback.record_issue(request.owner)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(now, "prefetch", request.owner, block_addr,
                        completion - now)
        if self.gendler is not None:
            self.gendler.record_issue(request.owner)
        if is_cdp and self.pg_observer is not None:
            self.pg_observer.on_issue(block_addr, request.root, parent_addr)
        self._fill_l2(block_addr, fill_time=completion, prefetch_owner=request.owner)
        if is_cdp and request.depth < CDP_LEVELS[-1]:
            self._seq += 1
            heapq.heappush(
                self._deferred, (completion, self._seq, block_addr, request.depth)
            )

    def _drain_deferred(self) -> None:
        """Scan CDP-prefetched blocks whose fills have now arrived."""
        cfg = self.config
        deferred = self._deferred
        while deferred and deferred[0][0] <= self.cycle:
            when, __, block_addr, depth = heapq.heappop(deferred)
            if self.cdp is None or not self._prefetcher_enabled(self.cdp.name):
                continue
            words = self.memory.read_block_words(block_addr, cfg.block_size)
            requests = self.cdp.scan_fill(
                block_addr, words, depth=depth + 1, demand_pc=None
            )
            for request in requests:
                self._issue_prefetch(request, when, parent_addr=block_addr)
