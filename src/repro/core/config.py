"""System configuration (paper Table 5) with paper-scale and scaled presets.

``SystemConfig.paper()`` reproduces Table 5 exactly.  ``SystemConfig.scaled()``
shrinks caches, DRAM latency and the feedback interval together so that
scaled-down traces (10^4-10^5 memory ops instead of 200M instructions) show
the same miss, pollution and contention behaviour in tractable time — the
substitution DESIGN.md Section 2 documents.  All mechanism parameters
(thresholds, aggressiveness ladders, compare bits) are identical at both
scales.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.errors import ConfigError

#: fields that must be strictly positive integers
_POSITIVE_FIELDS = (
    "issue_width",
    "rob_size",
    "block_size",
    "l1_size",
    "l1_ways",
    "l1_latency",
    "l2_size",
    "l2_ways",
    "l2_latency",
    "l2_mshrs",
    "dram_banks",
    "dram_bank_occupancy",
    "bus_bytes_per_cycle",
    "bus_frequency_ratio",
    "request_buffer_per_core",
    "prefetch_queue_size",
    "stream_count",
    "cdp_compare_bits",
    "interval_evictions",
)


#: valid simulation engines: the readable object-per-block reference
#: model, the flat array-backed fast kernel, and the numpy columnar batch
#: engine (see DESIGN.md, "Engine internals & performance").  All three
#: produce bit-identical results, enforced by tests/differential/.
#: "batch" requires numpy (the optional ``[perf]`` extra).
ENGINES = ("reference", "fast", "batch")


@dataclass(frozen=True)
class SystemConfig:
    """Every knob of the simulated machine."""

    # -- engine ---------------------------------------------------------------
    #: which core/cache implementation executes the trace.  "reference" is
    #: the original object-per-access model; "fast" is the flat-array
    #: kernel; "batch" decodes the trace into numpy columns up front and
    #: vectorizes the per-op derivations (requires numpy).  All three are
    #: behavior-identical (differential-tested), so this knob trades
    #: readability for speed, never results.
    engine: str = "reference"

    # -- core ---------------------------------------------------------------
    issue_width: int = 4  # decode/retire up to 4 instructions (Table 5)
    rob_size: int = 256  # reorder buffer entries (Table 5)

    # -- caches ---------------------------------------------------------------
    block_size: int = 128  # L2 line size (Table 5)
    l1_size: int = 32 * 1024
    l1_ways: int = 4
    l1_latency: int = 2
    l2_size: int = 1024 * 1024
    l2_ways: int = 8
    l2_latency: int = 15
    l2_mshrs: int = 32  # bounds demand MLP (Table 5: 32 L2 MSHRs)

    # -- DRAM -----------------------------------------------------------------
    dram_banks: int = 8
    dram_controller_overhead: int = 20
    dram_bank_occupancy: int = 350
    bus_bytes_per_cycle: int = 8  # 8B-wide bus (Table 5)
    bus_frequency_ratio: int = 5  # 5:1 core-to-bus ratio (Table 5)
    request_buffer_per_core: int = 32  # buffer = 32 * core count (Table 5)

    # -- prefetching ----------------------------------------------------------
    prefetch_queue_size: int = 128  # per core (Table 5)
    stream_count: int = 32  # 32 streams (Table 5)
    cdp_compare_bits: int = 8  # Section 5
    train_on_stores: bool = True

    # -- throttling -----------------------------------------------------------
    interval_evictions: int = 8192  # Section 4.1
    # Table 4 thresholds.  The paper notes (Section 4.2) that in systems
    # with a relatively small last-level cache or limited bandwidth,
    # "T_coverage and A_low can be increased to trigger Case 2 of Table 3
    # sooner" — the scaled preset does exactly that.
    t_coverage: float = 0.2
    a_low: float = 0.4
    a_high: float = 0.7
    # Which controller sits between the feedback collector and the
    # aggressiveness ladders (see repro.policy).  "table3" is the paper's
    # heuristic and the bit-identical default; policy_params is a
    # "key=value,key=value" string (kept a string so the frozen config
    # stays hashable for the result cache and content-addressed job
    # identity — a trained Q table embeds here and hashes with the job).
    throttle_policy: str = "table3"
    policy_params: str = ""

    @property
    def min_memory_latency(self) -> float:
        """Unloaded DRAM latency implied by the component latencies."""
        transfer = (self.block_size // self.bus_bytes_per_cycle) * self.bus_frequency_ratio
        return self.dram_controller_overhead + self.dram_bank_occupancy + transfer

    @classmethod
    def paper(cls) -> "SystemConfig":
        """Table 5 exactly; min memory latency composes to 450 cycles."""
        return cls()

    @classmethod
    def scaled(cls) -> "SystemConfig":
        """Proportionally shrunk system for tractable Python simulation.

        L2 shrinks 16x (1 MB -> 64 KB); DRAM latency roughly 2.4x shorter;
        the feedback interval shrinks with the cache so a scaled run still
        completes tens of intervals.  Blocks shrink to 64 B, which is also
        the size used for the paper's FDP comparison (Section 6.5) and the
        hint-vector example (Figure 6: 16-bit vectors).
        """
        return cls(
            block_size=64,
            l1_size=4 * 1024,
            l1_ways=4,
            l2_size=64 * 1024,
            l2_ways=8,
            l2_mshrs=32,
            dram_controller_overhead=10,
            dram_bank_occupancy=120,
            request_buffer_per_core=32,
            interval_evictions=256,
            t_coverage=0.35,
            a_low=0.45,
        )

    def with_overrides(self, **kwargs) -> "SystemConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    def validate(self) -> "SystemConfig":
        """Check every knob; raise :class:`ConfigError` naming each bad one.

        Catching bad values here — with field-level messages — is what
        keeps an invalid sweep config from surfacing hours later as a
        deep assert inside the cache or DRAM model.  Returns ``self`` so
        call sites can chain: ``config.validate()``.
        """
        problems: Dict[str, str] = {}
        if self.engine not in ENGINES:
            problems["engine"] = (
                f"must be one of {ENGINES} (got {self.engine!r})"
            )
        for name in _POSITIVE_FIELDS:
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                problems[name] = f"must be an integer (got {value!r})"
            elif value <= 0:
                problems[name] = f"must be positive (got {value})"

        def ok(*names: str) -> bool:
            return not any(name in problems for name in names)

        if ok("block_size") and self.block_size & (self.block_size - 1):
            problems["block_size"] = (
                f"must be a power of two (got {self.block_size})"
            )
        if ok("dram_controller_overhead") and not (
            isinstance(self.dram_controller_overhead, int)
            and self.dram_controller_overhead >= 0
        ):
            problems["dram_controller_overhead"] = (
                f"must be a non-negative integer "
                f"(got {self.dram_controller_overhead!r})"
            )
        if ok("block_size", "bus_bytes_per_cycle") and (
            self.block_size % self.bus_bytes_per_cycle
        ):
            problems["bus_bytes_per_cycle"] = (
                f"must divide block_size ({self.block_size}); "
                f"got {self.bus_bytes_per_cycle}"
            )
        for level in ("l1", "l2"):
            size = getattr(self, f"{level}_size")
            ways = getattr(self, f"{level}_ways")
            if not ok(f"{level}_size", f"{level}_ways", "block_size"):
                continue
            if size % self.block_size:
                problems[f"{level}_size"] = (
                    f"must be a multiple of block_size "
                    f"({self.block_size}); got {size}"
                )
            elif ways > size // self.block_size:
                problems[f"{level}_ways"] = (
                    f"exceeds the cache's {size // self.block_size} "
                    f"blocks ({level}_size/block_size); got {ways}"
                )
        if ok("cdp_compare_bits") and self.cdp_compare_bits > 32:
            problems["cdp_compare_bits"] = (
                f"addresses are 32-bit; got {self.cdp_compare_bits}"
            )
        for name in ("t_coverage", "a_low", "a_high"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
                problems[name] = f"must be a fraction in [0, 1] (got {value!r})"
        if ok("a_low", "a_high") and self.a_low >= self.a_high:
            problems["a_low"] = (
                f"must be below a_high ({self.a_high}); got {self.a_low}"
            )
        if not isinstance(self.throttle_policy, str):
            problems["throttle_policy"] = (
                f"must be a string (got {self.throttle_policy!r})"
            )
        elif not isinstance(self.policy_params, str):
            problems["policy_params"] = (
                f"must be a 'key=value,...' string "
                f"(got {self.policy_params!r})"
            )
        else:
            # imported lazily: repro.policy imports prefetcher/throttle
            # modules, which must not load just to construct a config
            from repro.policy.registry import validate_policy

            problems.update(
                validate_policy(self.throttle_policy, self.policy_params)
            )
        if problems:
            details = "; ".join(
                f"{name}: {message}"
                for name, message in sorted(problems.items())
            )
            raise ConfigError(f"invalid SystemConfig: {details}", problems)
        return self
