"""System configuration (paper Table 5) with paper-scale and scaled presets.

``SystemConfig.paper()`` reproduces Table 5 exactly.  ``SystemConfig.scaled()``
shrinks caches, DRAM latency and the feedback interval together so that
scaled-down traces (10^4-10^5 memory ops instead of 200M instructions) show
the same miss, pollution and contention behaviour in tractable time — the
substitution DESIGN.md Section 2 documents.  All mechanism parameters
(thresholds, aggressiveness ladders, compare bits) are identical at both
scales.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SystemConfig:
    """Every knob of the simulated machine."""

    # -- core ---------------------------------------------------------------
    issue_width: int = 4  # decode/retire up to 4 instructions (Table 5)
    rob_size: int = 256  # reorder buffer entries (Table 5)

    # -- caches ---------------------------------------------------------------
    block_size: int = 128  # L2 line size (Table 5)
    l1_size: int = 32 * 1024
    l1_ways: int = 4
    l1_latency: int = 2
    l2_size: int = 1024 * 1024
    l2_ways: int = 8
    l2_latency: int = 15
    l2_mshrs: int = 32  # bounds demand MLP (Table 5: 32 L2 MSHRs)

    # -- DRAM -----------------------------------------------------------------
    dram_banks: int = 8
    dram_controller_overhead: int = 20
    dram_bank_occupancy: int = 350
    bus_bytes_per_cycle: int = 8  # 8B-wide bus (Table 5)
    bus_frequency_ratio: int = 5  # 5:1 core-to-bus ratio (Table 5)
    request_buffer_per_core: int = 32  # buffer = 32 * core count (Table 5)

    # -- prefetching ----------------------------------------------------------
    prefetch_queue_size: int = 128  # per core (Table 5)
    stream_count: int = 32  # 32 streams (Table 5)
    cdp_compare_bits: int = 8  # Section 5
    train_on_stores: bool = True

    # -- throttling -----------------------------------------------------------
    interval_evictions: int = 8192  # Section 4.1
    # Table 4 thresholds.  The paper notes (Section 4.2) that in systems
    # with a relatively small last-level cache or limited bandwidth,
    # "T_coverage and A_low can be increased to trigger Case 2 of Table 3
    # sooner" — the scaled preset does exactly that.
    t_coverage: float = 0.2
    a_low: float = 0.4
    a_high: float = 0.7

    @property
    def min_memory_latency(self) -> float:
        """Unloaded DRAM latency implied by the component latencies."""
        transfer = (self.block_size // self.bus_bytes_per_cycle) * self.bus_frequency_ratio
        return self.dram_controller_overhead + self.dram_bank_occupancy + transfer

    @classmethod
    def paper(cls) -> "SystemConfig":
        """Table 5 exactly; min memory latency composes to 450 cycles."""
        return cls()

    @classmethod
    def scaled(cls) -> "SystemConfig":
        """Proportionally shrunk system for tractable Python simulation.

        L2 shrinks 16x (1 MB -> 64 KB); DRAM latency roughly 2.4x shorter;
        the feedback interval shrinks with the cache so a scaled run still
        completes tens of intervals.  Blocks shrink to 64 B, which is also
        the size used for the paper's FDP comparison (Section 6.5) and the
        hint-vector example (Figure 6: 16-bit vectors).
        """
        return cls(
            block_size=64,
            l1_size=4 * 1024,
            l1_ways=4,
            l2_size=64 * 1024,
            l2_ways=8,
            l2_mshrs=32,
            dram_controller_overhead=10,
            dram_bank_occupancy=120,
            request_buffer_per_core=32,
            interval_evictions=256,
            t_coverage=0.35,
            a_low=0.45,
        )

    def with_overrides(self, **kwargs) -> "SystemConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)
