"""Multi-core system: private caches per core, one shared DRAM controller.

Cores interleave in global-cycle order (the core with the smallest local
clock steps next), so requests reach the shared banks, bus and request
buffer in approximately true time order and inter-core contention emerges
from the same structures single-core contention does (paper Section 6.6).

Each benchmark in a multiprogrammed workload runs its own trace to
completion; per-benchmark IPC is taken at its own finish, the standard
methodology behind weighted speedup [Snavely & Tullsen].
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.core.cpu import Core
from repro.core.instruction import MemOp
from repro.core.stats import CoreResult


class MultiCoreSystem:
    """Steps several cores against one shared memory system."""

    def __init__(self, cores: Sequence[Core]) -> None:
        if not cores:
            raise ValueError("need at least one core")
        self.cores = list(cores)

    def run(self, traces: Sequence[Iterable[MemOp]]) -> List[CoreResult]:
        """Run each core's trace; returns per-core results in core order."""
        if len(traces) != len(self.cores):
            raise ValueError("one trace per core required")
        active: List[Tuple[Core, Iterator[MemOp]]] = [
            (core, iter(trace)) for core, trace in zip(self.cores, traces)
        ]
        results: dict = {}
        while active:
            index = min(range(len(active)), key=lambda i: active[i][0].cycle)
            core, trace = active[index]
            op = next(trace, None)
            if op is None:
                results[core.name] = core.finish()
                active.pop(index)
            else:
                core.step(op)
        return [results[core.name] for core in self.cores]
