"""Vectorized batch engine: the ``engine="batch"`` core model.

:class:`BatchCore` executes exactly the algorithm of
:class:`~repro.core.cpu.Core` — same event ordering, same arithmetic,
same feedback/throttling hooks — but consumes the trace as columns
(:class:`~repro.core.tracefile.TraceArrays`) instead of one
:class:`~repro.core.instruction.MemOp` object at a time:

* the whole trace is decoded into flat numpy arrays up front (or
  arrives pre-decoded from :func:`~repro.core.tracefile.
  load_trace_arrays`);
* per-op derived values — block tag, L1 set index, dispatch-cycle cost —
  are computed *vectorized* per chunk (``chunk_ops`` ops at a time) and
  handed to the scalar loop as plain Python lists via a lazy ``zip``,
  so the hot loop never touches an object attribute or a numpy scalar;
* consecutive ops touching the same block (``tag == prev_tag``) skip
  the L1 dict probe entirely: the previous op left that block resident
  at MRU, so a hit is guaranteed and the LRU touch is the identity;
* for the raw-kernel configuration (no prefetchers, no tracer) the
  loop runs a *specialized kernel* with the DRAM controller, bus,
  writeback, cache-fill and feedback-counter paths fully inlined over
  loop-local state; simulation drops back to object-level code only at
  the scalar-fallback points: feedback-interval boundaries (where the
  Table 3 controller and the telemetry recorder fire against fully
  flushed state) and end of run.

Bit-identity invariants the kernel relies on (each enforced or gated):

* same-tag-as-previous implies a guaranteed L1 hit at MRU — no dict
  operations are observable;
* the load-completion map can be a flat ``array('d')`` instead of the
  pruned dict **iff** ``rob_size <= 4096`` (half the prune threshold):
  any dependence older than that has been forced below ``cycle`` by
  ROB-span enforcement, so the pruned dict's 0.0 default and the
  array's true value produce the same ``max(cycle, ...)``.  Larger ROBs
  fall back to the general loop;
* with no prefetchers the pollution filter can never have a bit set
  (only prefetch-caused evictions set bits), so the demand-miss filter
  probe is dropped;
* numpy float64 arithmetic on the precomputed dispatch costs is
  IEEE-identical to the Python-float arithmetic of the other engines.

Everything not specialized (mechanisms with prefetchers, event tracing,
oracle LDS, huge ROBs) runs the *general* loop — a mechanical port of
:meth:`FastCore.run` over the same column zip, preserving every
telemetry flush point — so ``engine="batch"`` accepts every
configuration the other engines do.  ``tests/differential/`` enforces
bit-identical results across all three engines; any drift is a bug,
never a tolerable difference.  ``step()`` is inherited from
:class:`FastCore`, so ``MultiCoreSystem`` interleaving works unchanged.
"""

from __future__ import annotations

from array import array
from collections import deque
from heapq import heappop, heappush
from typing import Iterable, Union

import numpy as np

from repro.core.fastcpu import FastCore
from repro.core.instruction import MemOp
from repro.core.stats import CoreResult
from repro.core.tracefile import TraceArrays
from repro.throttle.feedback import FeedbackCollector


class BatchCore(FastCore):
    """Columnar-trace, behavior-identical reimplementation of ``Core``."""

    #: ops decoded (numpy -> Python lists) per segment; results are
    #: invariant to this value (hypothesis-tested), it only bounds the
    #: peak size of the per-chunk column lists
    DEFAULT_CHUNK_OPS = 1 << 16

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.chunk_ops = self.DEFAULT_CHUNK_OPS

    # -- public driving interface -------------------------------------------

    def run(self, trace: Union[TraceArrays, Iterable[MemOp]]) -> CoreResult:
        """Decode the whole trace to columns, then simulate it.

        Accepts a pre-decoded :class:`TraceArrays` (the zero-decode path
        the kernel benchmark times) or any MemOp iterable (decoded here).
        """
        arrays = (
            trace
            if isinstance(trace, TraceArrays)
            else TraceArrays.from_ops(trace)
        )
        if len(arrays):
            if self._kernel_eligible():
                # all-load traces with a fresh machine take the even
                # leaner loads-only loop; its cached ROB-trigger
                # sentinel is stale for one op after a push into an
                # empty MSHR queue, which is harmless iff no single op
                # can retire a whole ROB span (max(work)+1 < rob_size)
                if (
                    bool(arrays.is_load.all())
                    and not self.dram._in_flight
                    and not self._outstanding
                    and int(arrays.work.max()) + 1 < self._rob_size
                ):
                    self._run_kernel_loads(arrays)
                else:
                    self._run_kernel(arrays)
            else:
                self._run_general(arrays)
        return self.finish()

    def _kernel_eligible(self) -> bool:
        """Can the fully inlined kernel loop run this configuration?

        Requires the raw-kernel machine (no trained prefetchers, no CDP,
        no value hooks, no selector/filter/profiling observers, no
        oracle) with the *plain* feedback collector (event tracing swaps
        in a subclass and must see every record call), a ROB small
        enough for the flat completion array to be equivalent to the
        pruned dict, and a fresh core (no prior stepped state).
        """
        return (
            type(self.feedback) is FeedbackCollector
            and not self._has_train
            and self.cdp is None
            and not self._has_value_hooks
            and self.gendler is None
            and self.hw_filter is None
            and self.pg_observer is None
            and not self.oracle_pcs
            and self._rob_size <= self._completion_prune_at // 2
            and self._load_seq == 0
            and not self._completions
        )

    # -- the specialized kernel loop ----------------------------------------

    def _run_kernel(self, arrays: TraceArrays) -> None:  # noqa: C901
        """Raw-kernel hot loop: everything inlined, locals everywhere.

        All mutable machine state (cycle, counters, DRAM/bus cursors,
        feedback tallies) lives in locals; it is flushed back to the
        objects only at feedback-interval boundaries — right before the
        real ``record_eviction`` fires the controller/telemetry hooks —
        and at end of run.  Between those scalar-fallback points the
        loop performs no attribute stores at all.
        """
        n = len(arrays)
        # -- loop-invariant bindings
        l1 = self.l1
        l2 = self.l2
        l1_sets = l1._sets
        l2_sets = l2._sets
        l1_free = l1._free
        l2_free = l2._free
        l1_dirty = l1.dirty
        l2_dirty = l2.dirty
        l1_fill = l1.fill_time
        l2_fill = l2.fill_time
        l1_owner = l1.owner
        l2_owner = l2.owner
        l1_demand_pc = l1.demand_pc
        l2_demand_pc = l2.demand_pc
        l1_ways = self._l1_ways
        l2_ways = self._l2_ways
        rob_size = self._rob_size
        shift = self._block_shift
        l2_set_mask = self._l2_set_mask
        l1_latency = self._l1_latency
        l2_latency = self._l2_latency
        unloaded = self._unloaded_latency
        mshrs = self._l2_mshrs
        outstanding = self._outstanding
        feedback = self.feedback
        record_eviction = feedback.record_eviction
        interval_evictions = feedback.interval_evictions
        total_misses = feedback.total_misses
        dram = self.dram
        dstats = dram.stats
        heap = dram._in_flight
        buffer_size = dram.request_buffer_size
        ctrl_overhead = dram.controller_overhead
        banks = dram.banks
        busy_until = banks._busy_until
        n_banks = banks.n_banks
        bank_occ = banks.occupancy_cycles
        bus = dram.bus
        xfer = dram._block_transfer_cycles

        # -- flat completion map (valid because rob_size <= prune_at/2)
        completions = array("d", bytes(8 * n))

        # -- hot mutable state, flushed at interval boundaries + the end
        cycle = self.cycle
        retired = self.retired
        seq = self._load_seq
        l1_hits = l1.hits
        l1_misses = l1.misses
        l1_evictions = l1.evictions
        l2_hits = l2.hits
        l2_misses = l2.misses
        l2_evictions = l2.evictions
        bus_transfers = self.bus_transfers
        misses_during = total_misses.during
        lifetime_misses = feedback.lifetime_misses
        ev_count = feedback._evictions_this_interval
        demand_requests = dstats.demand_requests
        total_demand_latency = dstats.total_demand_latency
        buffer_stalls = dstats.buffer_full_stalls
        wb_count = dstats.writebacks
        conflicts = banks.conflicts
        demand_busy = bus._demand_busy_until
        any_busy = bus._any_busy_until
        bus_xfers = bus.transfers
        prev_tag = -1
        prev_slot = -1

        # -- columnar input (int64/float64; see module docstring)
        addr_col = arrays.addr
        work_col = arrays.work
        tag_mask = self._tag_mask
        l1_set_mask = self._l1_set_mask
        dispatch_cost = self._dispatch_cost
        # forward/out-of-range deps read 0.0 from the zero-initialized
        # array, exactly the pruned dict's .get default — clamp only
        # indices past the array
        dep_col = np.where(arrays.dep >= n, np.int64(-1), arrays.dep)
        chunk = max(1, int(self.chunk_ops))

        for begin in range(0, n, chunk):
            stop = begin + chunk
            tag_np = addr_col[begin:stop] & tag_mask
            w1_np = work_col[begin:stop] + 1
            for tag, si1, pc, w1, wc, is_load, d in zip(
                tag_np.tolist(),
                ((tag_np >> shift) & l1_set_mask).tolist(),
                arrays.pc[begin:stop].tolist(),
                w1_np.tolist(),
                (w1_np * dispatch_cost).tolist(),
                arrays.is_load[begin:stop].tolist(),
                dep_col[begin:stop].tolist(),
            ):
                cycle += wc
                retired += w1
                if outstanding:
                    # == Core._enforce_rob_span
                    horizon = retired - rob_size
                    while outstanding and outstanding[0][1] <= horizon:
                        completion = outstanding.popleft()[0]
                        if completion > cycle:
                            cycle = completion

                if is_load:
                    # ---- load path (== Core._load) ----------------------
                    load_seq = seq
                    seq += 1
                    if d < 0:
                        ready = cycle
                    else:  # == Core._ready_time
                        ready = completions[d]
                        if ready < cycle:
                            ready = cycle

                    if tag == prev_tag:
                        # previous op left this block resident at MRU:
                        # guaranteed hit, LRU touch is the identity
                        l1_hits += 1
                        completion = ready + l1_latency
                        completions[load_seq] = completion
                        if completion > cycle:
                            # == Core._push_outstanding
                            while outstanding and outstanding[0][0] <= cycle:
                                outstanding.popleft()
                            outstanding.append((completion, retired))
                            if len(outstanding) > mshrs:
                                # == FastCore._mshr_bound
                                while len(outstanding) > mshrs:
                                    head = outstanding.popleft()[0]
                                    if head > cycle:
                                        cycle = head
                                        while (
                                            outstanding
                                            and outstanding[0][0] <= cycle
                                        ):
                                            outstanding.popleft()
                        continue

                    l1_set = l1_sets[si1]
                    slot = l1_set.get(tag)
                    if slot is not None:
                        l1_hits += 1
                        l1_set[tag] = l1_set.pop(tag)  # LRU touch
                        prev_tag = tag
                        prev_slot = slot
                        completion = ready + l1_latency
                        completions[load_seq] = completion
                        if completion > cycle:
                            while outstanding and outstanding[0][0] <= cycle:
                                outstanding.popleft()
                            outstanding.append((completion, retired))
                            if len(outstanding) > mshrs:
                                while len(outstanding) > mshrs:
                                    head = outstanding.popleft()[0]
                                    if head > cycle:
                                        cycle = head
                                        while (
                                            outstanding
                                            and outstanding[0][0] <= cycle
                                        ):
                                            outstanding.popleft()
                        continue

                    l1_misses += 1
                    si2 = (tag >> shift) & l2_set_mask
                    l2_set = l2_sets[si2]
                    slot = l2_set.get(tag)
                    if slot is not None:
                        # ---- L2 hit (== Core._l2_hit_load) --------------
                        l2_hits += 1
                        l2_set[tag] = l2_set.pop(tag)
                        fill_time = l2_fill[slot]
                        if fill_time > ready:
                            # late merge, promoted to demand priority
                            data_ready = ready + unloaded
                            if fill_time < data_ready:
                                data_ready = fill_time
                            l2_fill[slot] = data_ready
                        else:
                            data_ready = ready
                        completion = data_ready + l2_latency
                        # owner is always None here: no prefetchers
                    else:
                        # ---- L2 miss (== Core._l2_miss_load) ------------
                        l2_misses += 1
                        # record_demand_miss: the pollution filter can
                        # have no bits set without prefetchers
                        misses_during += 1
                        lifetime_misses += 1
                        # demand_access_fast inlined
                        start = ready
                        while True:
                            while heap and heap[0] <= start:
                                heappop(heap)
                            if len(heap) < buffer_size:
                                break
                            buffer_stalls += 1
                            start = heap[0]
                        bank_ready = start + ctrl_overhead
                        bank = (tag >> shift) % n_banks
                        bank_start = busy_until[bank]
                        if bank_start > bank_ready:
                            conflicts += 1
                        else:
                            bank_start = bank_ready
                        bank_done = bank_start + bank_occ
                        busy_until[bank] = bank_done
                        if demand_busy < bank_done:
                            arrival = bank_done + xfer
                        else:
                            arrival = demand_busy + xfer
                        demand_busy = arrival
                        if any_busy < arrival:
                            any_busy = arrival
                        bus_xfers += 1
                        heappush(heap, arrival)
                        demand_requests += 1
                        total_demand_latency += arrival - ready
                        bus_transfers += 1
                        completion = arrival + l2_latency
                        # _fill_l2 inlined (tag just missed: no refresh)
                        if len(l2_set) >= l2_ways:
                            victim_tag = next(iter(l2_set))  # LRU victim
                            vslot = l2_set.pop(victim_tag)
                            l2_evictions += 1
                            vdirty = l2_dirty[vslot]
                            ev_count += 1
                            if ev_count >= interval_evictions:
                                # interval boundary: sync everything,
                                # let the real collector roll and fire
                                # the controller/telemetry hooks
                                self.cycle = cycle
                                self.retired = retired
                                self._load_seq = seq
                                l1.hits = l1_hits
                                l1.misses = l1_misses
                                l1.evictions = l1_evictions
                                l2.hits = l2_hits
                                l2.misses = l2_misses
                                l2.evictions = l2_evictions
                                self.bus_transfers = bus_transfers
                                total_misses.during = misses_during
                                feedback.lifetime_misses = lifetime_misses
                                feedback._evictions_this_interval = (
                                    ev_count - 1
                                )
                                dstats.demand_requests = demand_requests
                                dstats.total_demand_latency = (
                                    total_demand_latency
                                )
                                dstats.buffer_full_stalls = buffer_stalls
                                dstats.writebacks = wb_count
                                banks.conflicts = conflicts
                                bus._demand_busy_until = demand_busy
                                bus._any_busy_until = any_busy
                                bus.transfers = bus_xfers
                                record_eviction(
                                    victim_tag,
                                    False,
                                    l2_owner[vslot] is None,
                                )
                                misses_during = total_misses.during
                                lifetime_misses = feedback.lifetime_misses
                                ev_count = (
                                    feedback._evictions_this_interval
                                )
                            if vdirty:
                                # dram.writeback inlined (non-demand bus)
                                wb_count += 1
                                if any_busy > cycle:
                                    any_busy += xfer
                                else:
                                    any_busy = cycle + xfer
                                bus_xfers += 1
                                bus_transfers += 1
                            slot = vslot
                        else:
                            slot = l2_free[si2].pop()
                        l2_fill[slot] = arrival
                        l2_owner[slot] = None
                        l2_dirty[slot] = 0
                        l2_demand_pc[slot] = pc
                        l2_set[tag] = slot

                    # == FastCore._fast_fill_l1 (clean load fill)
                    if len(l1_set) >= l1_ways:
                        victim_tag = next(iter(l1_set))  # LRU victim
                        slot = l1_set.pop(victim_tag)
                        l1_evictions += 1
                        if l1_dirty[slot]:
                            victim_slot = l2_sets[
                                (victim_tag >> shift) & l2_set_mask
                            ].get(victim_tag)
                            if victim_slot is not None:
                                l2_dirty[victim_slot] = 1
                            else:
                                wb_count += 1
                                if any_busy > cycle:
                                    any_busy += xfer
                                else:
                                    any_busy = cycle + xfer
                                bus_xfers += 1
                                bus_transfers += 1
                    else:
                        slot = l1_free[si1].pop()
                    l1_fill[slot] = cycle
                    l1_owner[slot] = None
                    l1_dirty[slot] = 0
                    l1_demand_pc[slot] = 0
                    l1_set[tag] = slot
                    prev_tag = tag
                    prev_slot = slot
                    while outstanding and outstanding[0][0] <= cycle:
                        outstanding.popleft()
                    outstanding.append((completion, retired))
                    if len(outstanding) > mshrs:
                        while len(outstanding) > mshrs:
                            head = outstanding.popleft()[0]
                            if head > cycle:
                                cycle = head
                                while (
                                    outstanding
                                    and outstanding[0][0] <= cycle
                                ):
                                    outstanding.popleft()
                    completions[load_seq] = completion
                    continue

                # ---- store path (== Core._store) ------------------------
                if tag == prev_tag:
                    l1_hits += 1
                    l1_dirty[prev_slot] = 1
                    continue
                l1_set = l1_sets[si1]
                slot = l1_set.get(tag)
                if slot is not None:
                    l1_hits += 1
                    l1_set[tag] = l1_set.pop(tag)  # LRU touch
                    l1_dirty[slot] = 1
                    prev_tag = tag
                    prev_slot = slot
                    continue
                l1_misses += 1
                si2 = (tag >> shift) & l2_set_mask
                l2_set = l2_sets[si2]
                slot = l2_set.get(tag)
                if slot is not None:
                    l2_hits += 1
                    l2_set[tag] = l2_set.pop(tag)
                    # owner is always None here: no prefetchers
                else:
                    l2_misses += 1
                    misses_during += 1
                    lifetime_misses += 1
                    # demand_access_fast inlined (stores issue at cycle)
                    start = cycle
                    while True:
                        while heap and heap[0] <= start:
                            heappop(heap)
                        if len(heap) < buffer_size:
                            break
                        buffer_stalls += 1
                        start = heap[0]
                    bank_ready = start + ctrl_overhead
                    bank = (tag >> shift) % n_banks
                    bank_start = busy_until[bank]
                    if bank_start > bank_ready:
                        conflicts += 1
                    else:
                        bank_start = bank_ready
                    bank_done = bank_start + bank_occ
                    busy_until[bank] = bank_done
                    if demand_busy < bank_done:
                        arrival = bank_done + xfer
                    else:
                        arrival = demand_busy + xfer
                    demand_busy = arrival
                    if any_busy < arrival:
                        any_busy = arrival
                    bus_xfers += 1
                    heappush(heap, arrival)
                    demand_requests += 1
                    total_demand_latency += arrival - cycle
                    bus_transfers += 1
                    # _fill_l2 inlined (store fill stamps cycle)
                    if len(l2_set) >= l2_ways:
                        victim_tag = next(iter(l2_set))  # LRU victim
                        vslot = l2_set.pop(victim_tag)
                        l2_evictions += 1
                        vdirty = l2_dirty[vslot]
                        ev_count += 1
                        if ev_count >= interval_evictions:
                            self.cycle = cycle
                            self.retired = retired
                            self._load_seq = seq
                            l1.hits = l1_hits
                            l1.misses = l1_misses
                            l1.evictions = l1_evictions
                            l2.hits = l2_hits
                            l2.misses = l2_misses
                            l2.evictions = l2_evictions
                            self.bus_transfers = bus_transfers
                            total_misses.during = misses_during
                            feedback.lifetime_misses = lifetime_misses
                            feedback._evictions_this_interval = ev_count - 1
                            dstats.demand_requests = demand_requests
                            dstats.total_demand_latency = (
                                total_demand_latency
                            )
                            dstats.buffer_full_stalls = buffer_stalls
                            dstats.writebacks = wb_count
                            banks.conflicts = conflicts
                            bus._demand_busy_until = demand_busy
                            bus._any_busy_until = any_busy
                            bus.transfers = bus_xfers
                            record_eviction(
                                victim_tag, False, l2_owner[vslot] is None
                            )
                            misses_during = total_misses.during
                            lifetime_misses = feedback.lifetime_misses
                            ev_count = feedback._evictions_this_interval
                        if vdirty:
                            wb_count += 1
                            if any_busy > cycle:
                                any_busy += xfer
                            else:
                                any_busy = cycle + xfer
                            bus_xfers += 1
                            bus_transfers += 1
                        slot = vslot
                    else:
                        slot = l2_free[si2].pop()
                    l2_fill[slot] = cycle
                    l2_owner[slot] = None
                    l2_dirty[slot] = 0
                    l2_demand_pc[slot] = pc
                    l2_set[tag] = slot
                # == FastCore._fast_fill_l1 (dirty store fill)
                if len(l1_set) >= l1_ways:
                    victim_tag = next(iter(l1_set))  # LRU victim
                    slot = l1_set.pop(victim_tag)
                    l1_evictions += 1
                    if l1_dirty[slot]:
                        victim_slot = l2_sets[
                            (victim_tag >> shift) & l2_set_mask
                        ].get(victim_tag)
                        if victim_slot is not None:
                            l2_dirty[victim_slot] = 1
                        else:
                            wb_count += 1
                            if any_busy > cycle:
                                any_busy += xfer
                            else:
                                any_busy = cycle + xfer
                            bus_xfers += 1
                            bus_transfers += 1
                else:
                    slot = l1_free[si1].pop()
                l1_fill[slot] = cycle
                l1_owner[slot] = None
                l1_dirty[slot] = 1
                l1_demand_pc[slot] = 0
                l1_set[tag] = slot
                prev_tag = tag
                prev_slot = slot

        # -- final flush
        self.cycle = cycle
        self.retired = retired
        self._load_seq = seq
        l1.hits = l1_hits
        l1.misses = l1_misses
        l1.evictions = l1_evictions
        l2.hits = l2_hits
        l2.misses = l2_misses
        l2.evictions = l2_evictions
        self.bus_transfers = bus_transfers
        total_misses.during = misses_during
        feedback.lifetime_misses = lifetime_misses
        feedback._evictions_this_interval = ev_count
        dstats.demand_requests = demand_requests
        dstats.total_demand_latency = total_demand_latency
        dstats.buffer_full_stalls = buffer_stalls
        dstats.writebacks = wb_count
        banks.conflicts = conflicts
        bus._demand_busy_until = demand_busy
        bus._any_busy_until = any_busy
        bus.transfers = bus_xfers

    # -- the loads-only kernel loop ------------------------------------------

    def _run_kernel_loads(self, arrays: TraceArrays) -> None:  # noqa: C901
        """Raw-kernel hot loop specialized for all-load traces.

        The pointer-chase kernels the paper targets are pure load
        streams; with no stores (and no prefetchers) several machine
        facts become loop invariants that let this variant shed nearly
        all remaining per-op bookkeeping while staying observably
        bit-identical to the other engines:

        * no block is ever dirty, so every dirty probe, dirty store and
          writeback branch is dead and L1 eviction is a bare dict pop;
        * ``owner``/``demand_pc``/L1 ``fill_time`` metadata is written
          but never read anywhere (no prefetch attribution, no
          profiling observers), so those stores are skipped — the
          arrays keep their initial values;
        * most counters are linear in one another: every op probes the
          L1, every L1 miss probes the L2, and every L2 miss is exactly
          one demand request and one bus transfer.  So ``l1.hits``,
          ``l1.misses``, ``misses_during``, ``lifetime_misses``,
          ``demand_requests`` and both bus-transfer counters are
          *derived* from the op index and the two L2 counters at sync
          points instead of incremented per op;
        * ``retired`` is a pure prefix sum of per-op instruction counts
          (stalls never change it), so it is a precomputed cumsum
          column rather than a per-op addition, and the load sequence
          number is the zip index;
        * the in-order MSHR list is *implicit*: every load pushes
          exactly one entry (see the always-pending bullet below), so
          the k-th entry ever pushed belongs to op k — its completion
          is ``completions[k]`` and its retired stamp is the
          precomputed ``retired_col[k]``.  The whole queue reduces to
          a single ``head`` cursor (the tail is the current op index)
          and a push costs nothing beyond the completion store the
          dependency map needs anyway;
        * the load-completion map is a plain Python list (``dep`` is
          pre-clamped so "no/unknown producer" indexes a slot that
          provably still holds 0.0, matching ``dict.get(d, 0.0)``);
        * DRAM demand completions are pushed in strictly increasing
          order (each new bus arrival exceeds ``_demand_busy_until``,
          i.e. the previous push), so the controller's in-flight heap
          degenerates to a FIFO — a deque with O(1) ends replaces
          every heappush/heappop;
        * a load's completion is always ``>= ready + latency > cycle``,
          so the reference engines' "only track still-pending loads"
          guard is always taken and every load pushes one MSHR entry.

        The shared ``_outstanding`` deque and ``dram._in_flight`` heap
        are rebuilt from the implicit queue/FIFO at every interval
        boundary and at the end of the run, so telemetry samples (MSHR
        occupancy, DRAM occupancy) and ``finish()`` observe exactly the
        state the other engines would expose.  A sorted list is a valid min-heap,
        so handing the FIFO's contents back to ``_in_flight`` preserves
        the heap invariant.
        """
        n = len(arrays)
        # -- loop-invariant bindings
        l1 = self.l1
        l2 = self.l2
        l1_sets = l1._sets
        l2_sets = l2._sets
        l1_free = l1._free
        l2_free = l2._free
        l2_fill = l2.fill_time
        l1_ways = self._l1_ways
        l2_ways = self._l2_ways
        rob_size = self._rob_size
        shift = self._block_shift
        l2_set_mask = self._l2_set_mask
        l1_latency = self._l1_latency
        l2_latency = self._l2_latency
        unloaded = self._unloaded_latency
        mshrs = self._l2_mshrs
        outstanding = self._outstanding
        feedback = self.feedback
        record_eviction = feedback.record_eviction
        interval_evictions = feedback.interval_evictions
        total_misses = feedback.total_misses
        dram = self.dram
        dstats = dram.stats
        heap = dram._in_flight
        buffer_size = dram.request_buffer_size
        ctrl_overhead = dram.controller_overhead
        banks = dram.banks
        busy_until = banks._busy_until
        n_banks = banks.n_banks
        bank_occ = banks.occupancy_cycles
        bus = dram.bus
        xfer = dram._block_transfer_cycles

        # -- flat completion map; a list so stores keep the float object
        completions = [0.0] * n
        # -- implicit MSHR queue: op indexes [head, load_seq) are the
        # outstanding entries, oldest first (the current op joins the
        # queue the moment its completion slot is written)
        head = 0
        # cached views of the queue head: ``head_c`` is its completion
        # (-inf = empty/just-pushed, forcing the next pre-drain to look)
        # and ``rob_trigger`` the retired count at which it must pop.
        # Refreshed only inside pop branches; exact except for the one
        # op after a push into an empty queue, which the dispatch gate
        # (max(work)+1 < rob_size) makes unobservable.
        NEG_INF = float("-inf")
        BIG = 1 << 62
        head_c = NEG_INF
        rob_trigger = BIG
        mshr_limit = head + mshrs
        # -- DRAM in-flight FIFO (monotone completions; see docstring)
        inflight = deque()

        # -- hot mutable state, flushed at interval boundaries + the end
        cycle = self.cycle
        retired = self.retired
        l2_hits = l2.hits
        l2_misses = l2.misses
        l2_evictions = l2.evictions
        l1_evictions = l1.evictions
        total_demand_latency = dstats.total_demand_latency
        buffer_stalls = dstats.buffer_full_stalls
        conflicts = banks.conflicts
        demand_busy = bus._demand_busy_until
        any_busy = bus._any_busy_until
        prev_tag = -1

        # -- sync-point bases for the derived counters (see docstring)
        sync_seq = self._load_seq  # == 0, by the dispatch gate
        l1_hits_base = l1.hits
        l1_misses_base = l1.misses
        l2h_sync = l2_hits
        l2m_sync = l2_misses
        misses_during_base = total_misses.during
        lifetime_base = feedback.lifetime_misses
        demand_req_base = dstats.demand_requests
        bus_xfers_base = bus.transfers
        core_bus_base = self.bus_transfers
        # the L2-eviction count at which the interval boundary fires
        ev_trigger = l2_evictions + (
            interval_evictions - feedback._evictions_this_interval
        )

        # -- columnar input
        addr_col = arrays.addr
        tag_mask = self._tag_mask
        l1_set_mask = self._l1_set_mask
        w1_col = arrays.work + 1
        # absolute retired-instruction count *after* each op; the flat
        # list doubles as the implicit queue's retired-stamp column
        retired_col = w1_col.cumsum() + retired
        retired_all = retired_col.tolist()
        wc_col = w1_col * self._dispatch_cost
        # clamp every no-producer/out-of-range dep to -1: slot n-1 is
        # written only by the final load, after every possible read of
        # it, so ``completions[-1]`` reads the 0.0 the dict would give
        deps = arrays.dep
        dep_col = np.where((deps < 0) | (deps >= n), np.int64(-1), deps)
        chunk = max(1, int(self.chunk_ops))

        for begin in range(0, n, chunk):
            stop = begin + chunk
            tag_np = addr_col[begin:stop] & tag_mask
            for load_seq, tag, retired, wc, d in zip(
                range(begin, n),
                tag_np.tolist(),
                retired_all[begin:stop],
                wc_col[begin:stop].tolist(),
                dep_col[begin:stop].tolist(),
            ):
                cycle += wc
                if retired >= rob_trigger:
                    # == Core._enforce_rob_span
                    horizon = retired - rob_size
                    while head != load_seq and retired_all[head] <= horizon:
                        completion = completions[head]
                        head += 1
                        if completion > cycle:
                            cycle = completion
                    if head != load_seq:
                        head_c = completions[head]
                        rob_trigger = retired_all[head] + rob_size
                    else:
                        head_c = NEG_INF
                        rob_trigger = BIG
                    mshr_limit = head + mshrs

                ready = completions[d]  # == Core._ready_time
                if ready < cycle:
                    ready = cycle

                if tag == prev_tag:
                    # guaranteed L1 hit at MRU; LRU touch is the identity
                    # (the store below *is* the MSHR push — see docstring)
                    completions[load_seq] = ready + l1_latency
                    # == Core._push_outstanding
                    if head_c <= cycle:
                        while head != load_seq and completions[head] <= cycle:
                            head += 1
                        if head != load_seq:
                            head_c = completions[head]
                            rob_trigger = retired_all[head] + rob_size
                        else:
                            head_c = NEG_INF
                            rob_trigger = BIG
                        mshr_limit = head + mshrs
                    if load_seq >= mshr_limit:
                        # == FastCore._mshr_bound
                        while load_seq - head >= mshrs:
                            hc = completions[head]
                            head += 1
                            if hc > cycle:
                                cycle = hc
                                while (
                                    head != load_seq
                                    and completions[head] <= cycle
                                ):
                                    head += 1
                        head_c = completions[head]
                        rob_trigger = retired_all[head] + rob_size
                        mshr_limit = head + mshrs
                    continue

                si1 = (tag >> shift) & l1_set_mask
                l1_set = l1_sets[si1]
                slot = l1_set.get(tag)
                if slot is not None:
                    l1_set[tag] = l1_set.pop(tag)  # LRU touch
                    prev_tag = tag
                    completions[load_seq] = ready + l1_latency
                    if head_c <= cycle:
                        while head != load_seq and completions[head] <= cycle:
                            head += 1
                        if head != load_seq:
                            head_c = completions[head]
                            rob_trigger = retired_all[head] + rob_size
                        else:
                            head_c = NEG_INF
                            rob_trigger = BIG
                        mshr_limit = head + mshrs
                    if load_seq >= mshr_limit:
                        while load_seq - head >= mshrs:
                            hc = completions[head]
                            head += 1
                            if hc > cycle:
                                cycle = hc
                                while (
                                    head != load_seq
                                    and completions[head] <= cycle
                                ):
                                    head += 1
                        head_c = completions[head]
                        rob_trigger = retired_all[head] + rob_size
                        mshr_limit = head + mshrs
                    continue

                blk = tag >> shift
                l2_set = l2_sets[blk & l2_set_mask]
                slot = l2_set.get(tag)
                if slot is not None:
                    # ---- L2 hit (== Core._l2_hit_load) --------------
                    l2_hits += 1
                    l2_set[tag] = l2_set.pop(tag)
                    fill_time = l2_fill[slot]
                    if fill_time > ready:
                        # late merge, promoted to demand priority
                        data_ready = ready + unloaded
                        if fill_time < data_ready:
                            data_ready = fill_time
                        l2_fill[slot] = data_ready
                    else:
                        data_ready = ready
                    completion = data_ready + l2_latency
                else:
                    # ---- L2 miss (== Core._l2_miss_load) ------------
                    l2_misses += 1
                    # request buffer over the monotone in-flight FIFO
                    start = ready
                    while inflight and inflight[0] <= start:
                        inflight.popleft()
                    if len(inflight) >= buffer_size:
                        while True:
                            buffer_stalls += 1
                            start = inflight[0]
                            while inflight and inflight[0] <= start:
                                inflight.popleft()
                            if len(inflight) < buffer_size:
                                break
                    bank_ready = start + ctrl_overhead
                    bank = blk % n_banks
                    bank_start = busy_until[bank]
                    if bank_start > bank_ready:
                        conflicts += 1
                    else:
                        bank_start = bank_ready
                    bank_done = bank_start + bank_occ
                    busy_until[bank] = bank_done
                    if demand_busy < bank_done:
                        arrival = bank_done + xfer
                    else:
                        arrival = demand_busy + xfer
                    demand_busy = arrival
                    if any_busy < arrival:
                        any_busy = arrival
                    inflight.append(arrival)
                    total_demand_latency += arrival - ready
                    completion = arrival + l2_latency
                    # _fill_l2 inlined; victims are never dirty here
                    if len(l2_set) >= l2_ways:
                        victim_tag = next(iter(l2_set))  # LRU victim
                        slot = l2_set.pop(victim_tag)  # reuse victim slot
                        l2_evictions += 1
                        if l2_evictions >= ev_trigger:
                            # interval boundary: sync everything
                            # (including the shared deque/heap views
                            # of the ring/FIFO and the derived
                            # counters), then let the real collector
                            # roll and fire the hooks
                            ops_d = load_seq + 1 - sync_seq
                            l2m_d = l2_misses - l2m_sync
                            lmiss_d = l2_hits - l2h_sync + l2m_d
                            self.cycle = cycle
                            self.retired = retired
                            self._load_seq = load_seq + 1
                            l1.hits = l1_hits_base + ops_d - lmiss_d
                            l1.misses = l1_misses_base + lmiss_d
                            l1.evictions = l1_evictions
                            l2.hits = l2_hits
                            l2.misses = l2_misses
                            l2.evictions = l2_evictions
                            self.bus_transfers = core_bus_base + l2m_d
                            total_misses.during = (
                                misses_during_base + l2m_d
                            )
                            feedback.lifetime_misses = (
                                lifetime_base + l2m_d
                            )
                            feedback._evictions_this_interval = (
                                interval_evictions - 1
                            )
                            dstats.demand_requests = (
                                demand_req_base + l2m_d
                            )
                            dstats.total_demand_latency = (
                                total_demand_latency
                            )
                            dstats.buffer_full_stalls = buffer_stalls
                            banks.conflicts = conflicts
                            bus._demand_busy_until = demand_busy
                            bus._any_busy_until = any_busy
                            bus.transfers = bus_xfers_base + l2m_d
                            outstanding.clear()
                            for index in range(head, load_seq):
                                outstanding.append(
                                    (completions[index], retired_all[index])
                                )
                            heap[:] = inflight
                            record_eviction(victim_tag, False, True)
                            sync_seq = load_seq + 1
                            l1_hits_base = l1.hits
                            l1_misses_base = l1.misses
                            l2h_sync = l2_hits
                            l2m_sync = l2_misses
                            misses_during_base = total_misses.during
                            lifetime_base = feedback.lifetime_misses
                            demand_req_base = dstats.demand_requests
                            bus_xfers_base = bus.transfers
                            core_bus_base = self.bus_transfers
                            ev_trigger = l2_evictions + (
                                interval_evictions
                                - feedback._evictions_this_interval
                            )
                    else:
                        slot = l2_free[blk & l2_set_mask].pop()
                    l2_fill[slot] = arrival
                    l2_set[tag] = slot

                # == FastCore._fast_fill_l1, clean-loads-only form
                if len(l1_set) >= l1_ways:
                    victim_tag = next(iter(l1_set))  # LRU victim
                    l1_set.pop(victim_tag)
                    l1_evictions += 1
                else:
                    l1_free[si1].pop()
                l1_set[tag] = True
                prev_tag = tag
                completions[load_seq] = completion
                if head_c <= cycle:
                    while head != load_seq and completions[head] <= cycle:
                        head += 1
                    if head != load_seq:
                        head_c = completions[head]
                        rob_trigger = retired_all[head] + rob_size
                    else:
                        head_c = NEG_INF
                        rob_trigger = BIG
                    mshr_limit = head + mshrs
                if load_seq >= mshr_limit:
                    while load_seq - head >= mshrs:
                        hc = completions[head]
                        head += 1
                        if hc > cycle:
                            cycle = hc
                            while head != load_seq and completions[head] <= cycle:
                                head += 1
                    head_c = completions[head]
                    rob_trigger = retired_all[head] + rob_size
                    mshr_limit = head + mshrs

        # -- final flush (rebuild the shared deque/heap for finish())
        ops_d = n - sync_seq
        l2m_d = l2_misses - l2m_sync
        lmiss_d = l2_hits - l2h_sync + l2m_d
        self.cycle = cycle
        self.retired = retired
        self._load_seq = n
        l1.hits = l1_hits_base + ops_d - lmiss_d
        l1.misses = l1_misses_base + lmiss_d
        l1.evictions = l1_evictions
        l2.hits = l2_hits
        l2.misses = l2_misses
        l2.evictions = l2_evictions
        self.bus_transfers = core_bus_base + l2m_d
        total_misses.during = misses_during_base + l2m_d
        feedback.lifetime_misses = lifetime_base + l2m_d
        feedback._evictions_this_interval = (
            interval_evictions - ev_trigger + l2_evictions
        )
        dstats.demand_requests = demand_req_base + l2m_d
        dstats.total_demand_latency = total_demand_latency
        dstats.buffer_full_stalls = buffer_stalls
        banks.conflicts = conflicts
        bus._demand_busy_until = demand_busy
        bus._any_busy_until = any_busy
        bus.transfers = bus_xfers_base + l2m_d
        outstanding.clear()
        for index in range(head, n):
            outstanding.append((completions[index], retired_all[index]))
        heap[:] = inflight

    # -- the general loop ----------------------------------------------------

    def _run_general(self, arrays: TraceArrays) -> None:  # noqa: C901
        """Mechanical port of :meth:`FastCore.run` over column zips.

        Identical statement-for-statement to the fast engine's loop —
        including every ``self.cycle``/``self.retired`` flush before a
        ``record_*`` or cold call, so tracing collectors see identical
        timestamps — with the MemOp attribute reads replaced by tuple
        unpacking from the decoded columns.
        """
        # loop-invariant bindings (== FastCore.run)
        l1 = self.l1
        l2 = self.l2
        l1_sets = l1._sets
        l2_sets = l2._sets
        l1_free = l1._free
        l1_dirty = l1.dirty
        l1_fill = l1.fill_time
        l1_owner = l1.owner
        l1_demand_pc = l1.demand_pc
        l1_ways = self._l1_ways
        l2_dirty = l2.dirty
        l2_owner = l2.owner
        l2_fill = l2.fill_time
        dram_writeback = self.dram.writeback
        rob_size = self._rob_size
        offset_mask = self._offset_mask
        shift = self._block_shift
        l2_set_mask = self._l2_set_mask
        l1_latency = self._l1_latency
        l2_latency = self._l2_latency
        unloaded = self._unloaded_latency
        mshrs = self._l2_mshrs
        prune_at = self._completion_prune_at
        prune_keep = prune_at // 2
        train_on_stores = self._train_on_stores
        has_train = self._has_train
        has_value_hooks = self._has_value_hooks
        blk = self._blk
        cdp = self.cdp
        cdp_name = self._cdp_name
        gendler = self.gendler
        pg_observer = self.pg_observer
        hw_filter = self.hw_filter
        oracle_pcs = self.oracle_pcs
        memory = self.memory
        deferred = self._deferred
        outstanding = self._outstanding
        feedback = self.feedback
        record_use = feedback.record_use
        record_demand_miss = feedback.record_demand_miss
        demand_access = self.dram.demand_access_fast
        drain_deferred = self._drain_deferred
        fill_l2 = self._fill_l2
        fast_train = self._fast_train
        mshr_bound = self._mshr_bound
        issue_prefetch = self._issue_prefetch
        value_hooks = self._value_hooks

        # hot mutable state, flushed around cold calls and at the end
        cycle = self.cycle
        retired = self.retired
        seq = self._load_seq
        completions = self._completions
        l1_hits = l1.hits
        l1_misses = l1.misses
        l1_evictions = l1.evictions
        l2_hits = l2.hits
        l2_misses = l2.misses

        n = len(arrays)
        addr_col = arrays.addr
        work_col = arrays.work
        tag_mask = self._tag_mask
        l1_set_mask = self._l1_set_mask
        dispatch_cost = self._dispatch_cost
        chunk = max(1, int(self.chunk_ops))

        for begin in range(0, n, chunk):
            stop = begin + chunk
            a_np = addr_col[begin:stop]
            tag_np = a_np & tag_mask
            w1_np = work_col[begin:stop] + 1
            for pc, addr, tag, si1, w1, wc, is_load, dep in zip(
                arrays.pc[begin:stop].tolist(),
                a_np.tolist(),
                tag_np.tolist(),
                ((tag_np >> shift) & l1_set_mask).tolist(),
                w1_np.tolist(),
                (w1_np * dispatch_cost).tolist(),
                arrays.is_load[begin:stop].tolist(),
                arrays.dep[begin:stop].tolist(),
            ):
                if deferred and deferred[0][0] <= cycle:
                    self.cycle = cycle
                    self.retired = retired
                    drain_deferred()
                cycle += wc
                retired += w1
                if outstanding:
                    # == Core._enforce_rob_span
                    horizon = retired - rob_size
                    while outstanding and outstanding[0][1] <= horizon:
                        completion = outstanding.popleft()[0]
                        if completion > cycle:
                            cycle = completion

                l1_set = l1_sets[si1]

                if not is_load:
                    # ---- store path (== Core._store) --------------------
                    slot = l1_set.get(tag)
                    if slot is not None:
                        l1_hits += 1
                        l1_set[tag] = l1_set.pop(tag)  # LRU touch
                        l1_dirty[slot] = 1
                        continue
                    l1_misses += 1
                    l2_set = l2_sets[(tag >> shift) & l2_set_mask]
                    slot = l2_set.get(tag)
                    self.cycle = cycle
                    self.retired = retired
                    if slot is not None:
                        l2_hits += 1
                        l2_set[tag] = l2_set.pop(tag)
                        owner = l2_owner[slot]
                        if owner is not None:  # == CacheBlock.mark_used
                            l2_owner[slot] = None
                            record_use(owner, late=l2_fill[slot] > cycle)
                            if gendler is not None:
                                gendler.record_use(owner)
                            if owner == cdp_name and pg_observer is not None:
                                pg_observer.on_use(tag)
                        # == FastCore._fast_fill_l1 (dirty store fill)
                        if len(l1_set) >= l1_ways:
                            victim_tag = next(iter(l1_set))  # LRU victim
                            slot = l1_set.pop(victim_tag)
                            l1_evictions += 1
                            if l1_dirty[slot]:
                                victim_slot = l2_sets[
                                    (victim_tag >> shift) & l2_set_mask
                                ].get(victim_tag)
                                if victim_slot is not None:
                                    l2_dirty[victim_slot] = 1
                                else:
                                    dram_writeback(cycle, victim_tag)
                                    self.bus_transfers += 1
                        else:
                            slot = l1_free[si1].pop()
                        l1_fill[slot] = cycle
                        l1_owner[slot] = None
                        l1_dirty[slot] = 1
                        l1_demand_pc[slot] = 0
                        l1_set[tag] = slot
                        if train_on_stores and has_train:
                            fast_train(addr, pc, True)
                        continue
                    l2_misses += 1
                    record_demand_miss(tag)
                    demand_access(cycle, tag)
                    self.bus_transfers += 1
                    fill_l2(tag, fill_time=cycle, demand_pc=pc)
                    # == FastCore._fast_fill_l1 (dirty store fill)
                    if len(l1_set) >= l1_ways:
                        victim_tag = next(iter(l1_set))  # LRU victim
                        slot = l1_set.pop(victim_tag)
                        l1_evictions += 1
                        if l1_dirty[slot]:
                            victim_slot = l2_sets[
                                (victim_tag >> shift) & l2_set_mask
                            ].get(victim_tag)
                            if victim_slot is not None:
                                l2_dirty[victim_slot] = 1
                            else:
                                dram_writeback(cycle, victim_tag)
                                self.bus_transfers += 1
                    else:
                        slot = l1_free[si1].pop()
                    l1_fill[slot] = cycle
                    l1_owner[slot] = None
                    l1_dirty[slot] = 1
                    l1_demand_pc[slot] = 0
                    l1_set[tag] = slot
                    if train_on_stores and has_train:
                        fast_train(addr, pc, False)
                    continue

                # ---- load path (== Core._load) --------------------------
                load_seq = seq
                seq += 1
                if dep < 0:
                    ready = cycle
                else:  # == Core._ready_time
                    ready = completions.get(dep, 0.0)
                    if ready < cycle:
                        ready = cycle

                slot = l1_set.get(tag)
                if slot is not None:
                    l1_hits += 1
                    l1_set[tag] = l1_set.pop(tag)
                    completion = ready + l1_latency
                    completions[load_seq] = completion
                    if len(completions) >= prune_at:
                        horizon = load_seq - prune_keep
                        completions = {
                            s: c for s, c in completions.items() if s > horizon
                        }
                        self._completions = completions
                    if completion > cycle:
                        # == Core._push_outstanding
                        while outstanding and outstanding[0][0] <= cycle:
                            outstanding.popleft()
                        outstanding.append((completion, retired))
                        if len(outstanding) > mshrs:
                            self.cycle = cycle
                            mshr_bound()
                            cycle = self.cycle
                    if has_value_hooks:
                        self.cycle = cycle
                        self.retired = retired
                        value_hooks(
                            MemOp(pc, addr, True, w1 - 1, dep), completion
                        )
                    continue

                l1_misses += 1
                l2_set = l2_sets[(tag >> shift) & l2_set_mask]
                slot = l2_set.get(tag)
                self.cycle = cycle
                self.retired = retired
                if slot is not None:
                    # ---- L2 hit (== Core._l2_hit_load) ------------------
                    l2_hits += 1
                    l2_set[tag] = l2_set.pop(tag)
                    fill_time = l2_fill[slot]
                    late = fill_time > ready
                    if late:
                        data_ready = ready + unloaded
                        if fill_time < data_ready:
                            data_ready = fill_time
                        l2_fill[slot] = data_ready
                    else:
                        data_ready = ready
                    completion = data_ready + l2_latency
                    owner = l2_owner[slot]
                    if owner is not None:  # == CacheBlock.mark_used
                        l2_owner[slot] = None
                        record_use(owner, late=late)
                        if gendler is not None:
                            gendler.record_use(owner)
                        if owner == cdp_name:
                            if hw_filter is not None:
                                hw_filter.on_prefetch_used(tag)
                            if pg_observer is not None:
                                pg_observer.on_use(tag)
                    # == FastCore._fast_fill_l1 (clean load fill)
                    if len(l1_set) >= l1_ways:
                        victim_tag = next(iter(l1_set))  # LRU victim
                        slot = l1_set.pop(victim_tag)
                        l1_evictions += 1
                        if l1_dirty[slot]:
                            victim_slot = l2_sets[
                                (victim_tag >> shift) & l2_set_mask
                            ].get(victim_tag)
                            if victim_slot is not None:
                                l2_dirty[victim_slot] = 1
                            else:
                                dram_writeback(cycle, victim_tag)
                                self.bus_transfers += 1
                    else:
                        slot = l1_free[si1].pop()
                    l1_fill[slot] = cycle
                    l1_owner[slot] = None
                    l1_dirty[slot] = 0
                    l1_demand_pc[slot] = 0
                    l1_set[tag] = slot
                    while outstanding and outstanding[0][0] <= cycle:
                        outstanding.popleft()
                    outstanding.append((completion, retired))
                    if len(outstanding) > mshrs:
                        mshr_bound()
                        cycle = self.cycle
                    if has_train:
                        fast_train(addr, pc, True)
                else:
                    # ---- L2 miss (== Core._l2_miss_load) ----------------
                    l2_misses += 1
                    record_demand_miss(tag)
                    if pc in oracle_pcs:
                        completion = ready + l2_latency
                        fill_l2(tag, fill_time=ready, demand_pc=pc)
                    else:
                        arrival = demand_access(ready, tag)
                        self.bus_transfers += 1
                        completion = arrival + l2_latency
                        fill_l2(tag, fill_time=arrival, demand_pc=pc)
                        if cdp is not None and self._prefetcher_enabled(
                            cdp.name
                        ):
                            words = memory.read_block_words(tag, blk)
                            requests = cdp.scan_fill(
                                tag,
                                words,
                                depth=1,
                                demand_pc=pc,
                                accessed_offset=addr & offset_mask,
                            )
                            for request in requests:
                                issue_prefetch(request, ready)
                    # == FastCore._fast_fill_l1 (clean load fill)
                    if len(l1_set) >= l1_ways:
                        victim_tag = next(iter(l1_set))  # LRU victim
                        slot = l1_set.pop(victim_tag)
                        l1_evictions += 1
                        if l1_dirty[slot]:
                            victim_slot = l2_sets[
                                (victim_tag >> shift) & l2_set_mask
                            ].get(victim_tag)
                            if victim_slot is not None:
                                l2_dirty[victim_slot] = 1
                            else:
                                dram_writeback(cycle, victim_tag)
                                self.bus_transfers += 1
                    else:
                        slot = l1_free[si1].pop()
                    l1_fill[slot] = cycle
                    l1_owner[slot] = None
                    l1_dirty[slot] = 0
                    l1_demand_pc[slot] = 0
                    l1_set[tag] = slot
                    while outstanding and outstanding[0][0] <= cycle:
                        outstanding.popleft()
                    outstanding.append((completion, retired))
                    if len(outstanding) > mshrs:
                        mshr_bound()
                        cycle = self.cycle
                    if has_train:
                        fast_train(addr, pc, False)

                completions[load_seq] = completion
                if len(completions) >= prune_at:
                    horizon = load_seq - prune_keep
                    completions = {
                        s: c for s, c in completions.items() if s > horizon
                    }
                    self._completions = completions
                if has_value_hooks:
                    value_hooks(MemOp(pc, addr, True, w1 - 1, dep), completion)

        self.cycle = cycle
        self.retired = retired
        self._load_seq = seq
        self._completions = completions
        l1.hits = l1_hits
        l1.misses = l1_misses
        l1.evictions = l1_evictions
        l2.hits = l2_hits
        l2.misses = l2_misses
