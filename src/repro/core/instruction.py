"""Trace representation: the memory operations a workload's execution emits.

Workloads in this reproduction are programs that execute against the
simulated memory (building and traversing real linked data structures) and
emit a stream of :class:`MemOp` records.  Each record carries the static
program counter of the instruction, the effective address, and the amount of
non-memory work (in retired instructions) since the previous memory op —
enough for the cycle-approximate core model and for every mechanism in the
paper (PGs key on static loads; BPKI normalizes by retired instructions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List


@dataclass(frozen=True)
class MemOp:
    """One dynamic memory operation in a workload trace.

    Attributes:
        pc: Static instruction identifier of the load/store.  Pointer
            groups PG(L, X) are keyed on this (paper Section 3).
        addr: Effective virtual byte address accessed.
        is_load: True for loads; stores are modelled write-allocate and
            never block retirement.
        work: Number of non-memory instructions retired since the previous
            memory operation (drives IPC and BPKI denominators).
        dep: Load sequence number of the earlier load that produced this
            op's address (-1 = address-independent).  Pointer chasing is
            *serial*: a dependent load cannot issue before its producer
            completes — the property that makes LDS misses expensive and
            LDS prefetching valuable in the first place.
    """

    __slots__ = ("pc", "addr", "is_load", "work", "dep")

    pc: int
    addr: int
    is_load: bool
    work: int
    dep: int


class PcAllocator:
    """Hands out unique static PCs, one per named load/store site.

    A workload asks for a PC per syntactic access site so that re-running
    the generator (profiling run vs. measured run) yields identical PCs —
    a requirement for the compiler's hint table to transfer between runs.
    """

    def __init__(self, base: int = 0x400000, stride: int = 4) -> None:
        self._base = base
        self._stride = stride
        self._by_name: dict = {}
        self._count = 0

    def pc(self, site_name: str) -> int:
        """Return the stable PC for access site *site_name*."""
        existing = self._by_name.get(site_name)
        if existing is not None:
            return existing
        pc = self._base + self._count * self._stride
        self._by_name[site_name] = pc
        self._count += 1
        return pc

    def name_of(self, pc: int) -> str:
        """Reverse lookup, for diagnostics."""
        for name, assigned in self._by_name.items():
            if assigned == pc:
                return name
        raise KeyError(f"unknown pc {pc:#x}")

    def __len__(self) -> int:
        return self._count


def count_instructions(trace: Iterable[MemOp]) -> int:
    """Total retired instructions a trace represents (memory ops + work)."""
    total = 0
    for op in trace:
        total += 1 + op.work
    return total


def materialize(trace: Iterator[MemOp]) -> List[MemOp]:
    """Force a trace generator into a list (used by tests and profiling)."""
    return list(trace)
