"""Miss Status Holding Registers.

The MSHR file bounds how many misses a core can have outstanding (which is
what caps memory-level parallelism in the timing model) and is where the
hint bit vector of the missing load is parked until its fill returns so the
content-directed prefetcher can filter the block scan (paper Table 7 charges
``32 entries x (7 + 16 bits)`` for exactly this storage).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class MshrEntry:
    """One outstanding miss: where it is going and what it carries."""

    block_addr: int
    completion: float
    is_demand: bool
    pc: int = 0  # missing load's PC (demand misses only)
    block_offset: int = 0  # byte offset the load accessed within the block


class MshrFile:
    """Tracks outstanding misses with a hard capacity.

    Entries retire lazily: callers advance time with :meth:`expire` before
    asking for occupancy.  ``allocate`` refuses when full — the core model
    turns that into a dispatch stall, and the prefetch path turns it into a
    dropped prefetch.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._heap: List[Tuple[float, int]] = []  # (completion, block_addr)
        self._entries: dict = {}  # block_addr -> MshrEntry

    def expire(self, now: float) -> None:
        """Retire entries whose fills have arrived by *now*."""
        heap = self._heap
        while heap and heap[0][0] <= now:
            __, block_addr = heapq.heappop(heap)
            entry = self._entries.get(block_addr)
            # The heap can hold stale keys after re-allocation; only drop
            # the entry if this pop corresponds to its current completion.
            if entry is not None and entry.completion <= now:
                del self._entries[block_addr]

    def occupancy(self, now: float) -> int:
        self.expire(now)
        return len(self._entries)

    def is_full(self, now: float) -> bool:
        return self.occupancy(now) >= self.capacity

    def lookup(self, block_addr: int) -> Optional[MshrEntry]:
        """Return the in-flight entry for *block_addr*, if any."""
        return self._entries.get(block_addr)

    def earliest_completion(self) -> Optional[float]:
        """Completion time of the oldest in-flight miss (None if idle)."""
        while self._heap:
            completion, block_addr = self._heap[0]
            entry = self._entries.get(block_addr)
            if entry is not None and entry.completion == completion:
                return completion
            heapq.heappop(self._heap)  # stale
        return None

    def allocate(
        self,
        now: float,
        block_addr: int,
        completion: float,
        is_demand: bool,
        pc: int = 0,
        block_offset: int = 0,
    ) -> bool:
        """Try to allocate an entry; False when the file is full.

        A request to a block already in flight merges (no new entry).
        """
        self.expire(now)
        if block_addr in self._entries:
            return True
        if len(self._entries) >= self.capacity:
            return False
        entry = MshrEntry(block_addr, completion, is_demand, pc, block_offset)
        self._entries[block_addr] = entry
        heapq.heappush(self._heap, (completion, block_addr))
        return True
