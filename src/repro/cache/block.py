"""Cache block metadata.

Each tag entry carries one *prefetched* bit per prefetcher (paper Section
4.1: ``prefetched-CDP`` and ``prefetched-stream``) so that demand hits can
credit the owning prefetcher's ``total-used`` counter.  Blocks also record a
``fill_time``: blocks are inserted at request time and a demand hit before
``fill_time`` models an MSHR merge with the in-flight fill (the demand
completes when the fill arrives — a *late* prefetch in FDP's terms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class CacheBlock:
    """Tag-array state for one resident cache block."""

    addr: int  # block-aligned base address
    fill_time: float = 0.0  # cycle at which data actually arrives
    dirty: bool = False
    prefetch_owner: Optional[str] = None  # which prefetcher brought it, if any
    demand_pc: int = 0  # PC of the demand load that fetched it (diagnostics)

    @property
    def was_prefetched(self) -> bool:
        return self.prefetch_owner is not None

    def mark_used(self) -> Optional[str]:
        """Demand request touches this block: clear and return owner.

        Mirrors the paper's rule: "When a demand request accesses a
        prefetched cache block, the total-used counter is incremented and
        both prefetched bits are reset."
        """
        owner = self.prefetch_owner
        self.prefetch_owner = None
        return owner
