"""Cache hierarchy: blocks, set-associative arrays, MSHRs."""

from repro.cache.block import CacheBlock
from repro.cache.mshr import MshrEntry, MshrFile
from repro.cache.set_assoc import (
    CacheStats,
    FlatSetAssociativeCache,
    SetAssociativeCache,
)

__all__ = [
    "CacheBlock",
    "CacheStats",
    "FlatSetAssociativeCache",
    "MshrEntry",
    "MshrFile",
    "SetAssociativeCache",
]
