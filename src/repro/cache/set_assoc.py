"""Set-associative cache with true LRU replacement.

Pollution from useless prefetches — the paper's central antagonist — is not
scripted anywhere: it emerges because prefetch fills insert real blocks into
these sets and evict LRU-resident demand data.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.cache.block import CacheBlock
from repro.memory.address import block_address


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def _cache_geometry(size_bytes: int, ways: int, block_size: int) -> int:
    """Validate a cache shape; return the number of sets."""
    if not _is_power_of_two(block_size):
        raise ValueError("block size must be a power of two")
    n_blocks = size_bytes // block_size
    if n_blocks == 0 or n_blocks % ways != 0:
        raise ValueError(
            f"{size_bytes} B / {ways}-way / {block_size} B-blocks "
            "does not divide into whole sets"
        )
    n_sets = n_blocks // ways
    if not _is_power_of_two(n_sets):
        raise ValueError("number of sets must be a power of two")
    return n_sets


@dataclass
class CacheStats:
    """Per-cache access counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    prefetch_fills: int = 0
    prefetch_hits: int = 0  # demand hits on prefetched blocks

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """An LRU set-associative cache storing :class:`CacheBlock` entries.

    ``on_eviction`` (if set) is called with each victim block; the
    throttling layer uses it both to count interval boundaries (an interval
    ends after N L2 evictions, paper Section 4.1) and to feed FDP's
    pollution filter.
    """

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        block_size: int,
        name: str = "cache",
    ) -> None:
        self.n_sets = _cache_geometry(size_bytes, ways, block_size)
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.block_size = block_size
        self._set_mask = self.n_sets - 1
        self._block_shift = block_size.bit_length() - 1
        # Each set is an OrderedDict: iteration order == LRU order
        # (least recent first; move_to_end on touch).
        self._sets: List["OrderedDict[int, CacheBlock]"] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.stats = CacheStats()
        self.on_eviction: Optional[Callable[[CacheBlock], None]] = None

    @property
    def n_blocks(self) -> int:
        return self.n_sets * self.ways

    def _set_index(self, block_addr: int) -> int:
        return (block_addr >> self._block_shift) & self._set_mask

    def lookup(self, addr: int, touch: bool = True) -> Optional[CacheBlock]:
        """Probe for *addr*; update LRU and hit/miss stats.

        Returns the resident block (possibly still in flight — check
        ``fill_time``) or None on a miss.
        """
        block_addr = block_address(addr, self.block_size)
        cache_set = self._sets[self._set_index(block_addr)]
        block = cache_set.get(block_addr)
        if block is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if touch:
            cache_set.move_to_end(block_addr)
        return block

    def contains(self, addr: int) -> bool:
        """Presence check with no LRU or stats side effects."""
        block_addr = block_address(addr, self.block_size)
        return block_addr in self._sets[self._set_index(block_addr)]

    def peek(self, addr: int) -> Optional[CacheBlock]:
        """Read the tag entry without LRU or stats side effects."""
        block_addr = block_address(addr, self.block_size)
        return self._sets[self._set_index(block_addr)].get(block_addr)

    def insert(
        self,
        addr: int,
        fill_time: float = 0.0,
        prefetch_owner: Optional[str] = None,
        demand_pc: int = 0,
        dirty: bool = False,
    ) -> Optional[CacheBlock]:
        """Fill the block containing *addr*; return the victim, if any.

        Inserting an already-resident block refreshes its metadata in
        place (e.g. a demand fill racing a prefetch fill) and evicts
        nothing.
        """
        block_addr = block_address(addr, self.block_size)
        cache_set = self._sets[self._set_index(block_addr)]
        existing = cache_set.get(block_addr)
        if existing is not None:
            cache_set.move_to_end(block_addr)
            existing.dirty = existing.dirty or dirty
            return None
        victim = None
        if len(cache_set) >= self.ways:
            __, victim = cache_set.popitem(last=False)  # LRU victim
            self.stats.evictions += 1
            if self.on_eviction is not None:
                self.on_eviction(victim)
        block = CacheBlock(
            addr=block_addr,
            fill_time=fill_time,
            dirty=dirty,
            prefetch_owner=prefetch_owner,
            demand_pc=demand_pc,
        )
        if prefetch_owner is not None:
            self.stats.prefetch_fills += 1
        cache_set[block_addr] = block
        return victim

    def invalidate(self, addr: int) -> Optional[CacheBlock]:
        """Remove and return the block containing *addr*, if resident."""
        block_addr = block_address(addr, self.block_size)
        return self._sets[self._set_index(block_addr)].pop(block_addr, None)

    def resident_blocks(self) -> Dict[int, CacheBlock]:
        """Snapshot of all resident blocks (testing/diagnostics)."""
        out: Dict[int, CacheBlock] = {}
        for cache_set in self._sets:
            out.update(cache_set)
        return out

    def lru_order(self, set_index: int) -> List[int]:
        """Block addresses of one set, least-recently-used first."""
        return list(self._sets[set_index])

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)


class FlatSetAssociativeCache:
    """Array-backed tag/LRU/metadata state: the fast engine's cache.

    Same replacement policy and statistics as :class:`SetAssociativeCache`
    but with no per-block objects: each resident block is a (tag -> slot)
    entry in a per-set dict whose insertion order *is* the LRU order
    (least recent first; a touch re-inserts at the end), and all metadata
    lives in flat parallel arrays indexed by slot.  The fast core
    (``repro.core.fastcpu``) manipulates ``_sets`` and the metadata arrays
    directly in its inlined hot loop; the methods below expose the same
    observable surface for tests and diagnostics.

    Behavior equivalence with the reference cache is enforced by
    ``tests/differential/`` and the LRU-neutrality audit in
    ``tests/test_cache_set_assoc.py``.
    """

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        block_size: int,
        name: str = "cache",
    ) -> None:
        self.n_sets = _cache_geometry(size_bytes, ways, block_size)
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.block_size = block_size
        self._set_mask = self.n_sets - 1
        self._block_shift = block_size.bit_length() - 1
        self._tag_mask = ~(block_size - 1)
        #: per-set {block_addr: slot}; dict order == LRU order (LRU first)
        self._sets: List[Dict[int, int]] = [dict() for _ in range(self.n_sets)]
        n_slots = self.n_sets * ways
        #: parallel metadata arrays, indexed by slot
        self.fill_time: List[float] = [0.0] * n_slots
        self.owner: List[Optional[str]] = [None] * n_slots
        self.dirty = bytearray(n_slots)
        self.demand_pc: List[int] = [0] * n_slots
        #: per-set stacks of unoccupied slots
        self._free: List[List[int]] = [
            list(range(index * ways, (index + 1) * ways))
            for index in range(self.n_sets)
        ]
        # plain-int counters (the hot loop increments these directly)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.prefetch_fills = 0
        self.prefetch_hits = 0

    @property
    def n_blocks(self) -> int:
        return self.n_sets * self.ways

    @property
    def stats(self) -> CacheStats:
        """The counters in the reference cache's CacheStats shape."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            prefetch_fills=self.prefetch_fills,
            prefetch_hits=self.prefetch_hits,
        )

    def _set_index(self, block_addr: int) -> int:
        return (block_addr >> self._block_shift) & self._set_mask

    def lookup(self, addr: int, touch: bool = True) -> Optional[int]:
        """Probe for *addr*; update LRU and hit/miss stats.

        Returns the metadata slot of the resident block, or None.
        """
        block_addr = addr & self._tag_mask
        cache_set = self._sets[self._set_index(block_addr)]
        slot = cache_set.get(block_addr)
        if slot is None:
            self.misses += 1
            return None
        self.hits += 1
        if touch:
            cache_set[block_addr] = cache_set.pop(block_addr)
        return slot

    def contains(self, addr: int) -> bool:
        """Presence check with no LRU or stats side effects."""
        block_addr = addr & self._tag_mask
        return block_addr in self._sets[self._set_index(block_addr)]

    def peek(self, addr: int) -> Optional[int]:
        """The block's slot, with no LRU or stats side effects."""
        block_addr = addr & self._tag_mask
        return self._sets[self._set_index(block_addr)].get(block_addr)

    def insert(
        self,
        addr: int,
        fill_time: float = 0.0,
        prefetch_owner: Optional[str] = None,
        demand_pc: int = 0,
        dirty: bool = False,
    ) -> Optional[CacheBlock]:
        """Fill the block containing *addr*; return the victim, if any.

        The victim is materialized as a :class:`CacheBlock` snapshot so
        callers (and tests) see the reference cache's interface; inside
        the fast core this path is inlined without the materialization.
        """
        block_addr = addr & self._tag_mask
        set_index = self._set_index(block_addr)
        cache_set = self._sets[set_index]
        slot = cache_set.get(block_addr)
        if slot is not None:
            cache_set[block_addr] = cache_set.pop(block_addr)
            if dirty:
                self.dirty[slot] = 1
            return None
        victim = None
        if len(cache_set) >= self.ways:
            victim_addr = next(iter(cache_set))
            victim_slot = cache_set.pop(victim_addr)
            self.evictions += 1
            victim = CacheBlock(
                addr=victim_addr,
                fill_time=self.fill_time[victim_slot],
                dirty=bool(self.dirty[victim_slot]),
                prefetch_owner=self.owner[victim_slot],
                demand_pc=self.demand_pc[victim_slot],
            )
            slot = victim_slot
        else:
            slot = self._free[set_index].pop()
        self.fill_time[slot] = fill_time
        self.owner[slot] = prefetch_owner
        self.dirty[slot] = 1 if dirty else 0
        self.demand_pc[slot] = demand_pc
        if prefetch_owner is not None:
            self.prefetch_fills += 1
        cache_set[block_addr] = slot
        return victim

    def invalidate(self, addr: int) -> Optional[int]:
        """Remove the block containing *addr*; return its old slot."""
        block_addr = addr & self._tag_mask
        set_index = self._set_index(block_addr)
        slot = self._sets[set_index].pop(block_addr, None)
        if slot is not None:
            self._free[set_index].append(slot)
        return slot

    def lru_order(self, set_index: int) -> List[int]:
        """Block addresses of one set, least-recently-used first."""
        return list(self._sets[set_index])

    def resident_tags(self) -> List[int]:
        """All resident block addresses (testing/diagnostics)."""
        out: List[int] = []
        for cache_set in self._sets:
            out.extend(cache_set)
        return out

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)
