"""DRAM subsystem: banks, shared bus, controller."""

from repro.dram.bank import BankArray
from repro.dram.bus import MemoryBus
from repro.dram.controller import DramController, DramStats

__all__ = ["BankArray", "DramController", "DramStats", "MemoryBus"]
