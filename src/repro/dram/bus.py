"""Core-to-memory bus.

Table 5: an 8-byte-wide bus at a 5:1 core-to-bus frequency ratio, so moving
one cache block of B bytes costs ``(B / 8) * 5`` core cycles of exclusive
bus occupancy.  Every transfer (demand fill, prefetch fill, writeback) takes
a slot; this serialization is where useless prefetches burn the bandwidth
the paper's BPKI metric measures.
"""

from __future__ import annotations


class MemoryBus:
    """A single shared transfer resource with demand-priority scheduling.

    Real memory controllers prioritize demand fetches over prefetches; the
    paper accordingly attributes CDP's damage primarily to *cache
    pollution*, not to demands queuing behind prefetch transfers (Section
    2.3: "Cache pollution resulting from useless prefetches is the major
    reason why CDP degrades performance").  We model ideal priority with
    two cursors: demand transfers queue only behind other demand traffic,
    while prefetch transfers queue behind everything.  Prefetch floods
    therefore still delay *other prefetches* (making them late and less
    useful) and still show up in BPKI, but cannot starve the demand
    stream outright.
    """

    def __init__(self, bytes_per_bus_cycle: int, frequency_ratio: int) -> None:
        if bytes_per_bus_cycle <= 0 or frequency_ratio <= 0:
            raise ValueError("bus parameters must be positive")
        self.bytes_per_bus_cycle = bytes_per_bus_cycle
        self.frequency_ratio = frequency_ratio
        self._demand_busy_until = 0.0
        self._any_busy_until = 0.0
        self.transfers = 0  # total block transfers (the BPKI numerator)

    def transfer_cycles(self, n_bytes: int) -> float:
        """Core cycles of bus occupancy to move *n_bytes*."""
        bus_cycles = (n_bytes + self.bytes_per_bus_cycle - 1) // self.bytes_per_bus_cycle
        return bus_cycles * self.frequency_ratio

    def transfer(
        self, ready_time: float, n_bytes: int, is_demand: bool = True
    ) -> float:
        """Occupy the bus for one block transfer; return completion cycle."""
        if is_demand:
            start = max(self._demand_busy_until, ready_time)
        else:
            start = max(self._any_busy_until, ready_time)
        done = start + self.transfer_cycles(n_bytes)
        if is_demand:
            self._demand_busy_until = done
        self._any_busy_until = max(self._any_busy_until, done)
        self.transfers += 1
        return done

    def reset(self) -> None:
        self._demand_busy_until = 0.0
        self._any_busy_until = 0.0
        self.transfers = 0
