"""DRAM controller: request buffer, banks, bus, and latency composition.

One controller serves all cores (paper Table 5: on-chip controller, memory
request buffer of ``32 x core-count`` entries).  Timing of one access:

    arrival -> [wait for request-buffer slot] -> controller overhead
            -> [wait for bank]   (bank occupancy)
            -> [wait for bus]    (block transfer)
            -> completion

The unloaded sum of the three stages is the configured minimum memory
latency (450 cycles at paper scale).  Demand requests that find the buffer
full stall until a slot frees; prefetch requests are simply dropped, which
is how real prefetchers behave under backpressure.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

from repro.dram.bank import BankArray
from repro.dram.bus import MemoryBus


@dataclass
class DramStats:
    demand_requests: int = 0
    prefetch_requests: int = 0
    writebacks: int = 0
    dropped_prefetches: int = 0
    buffer_full_stalls: int = 0
    total_demand_latency: float = 0.0

    @property
    def total_requests(self) -> int:
        return self.demand_requests + self.prefetch_requests + self.writebacks

    @property
    def mean_demand_latency(self) -> float:
        if self.demand_requests == 0:
            return 0.0
        return self.total_demand_latency / self.demand_requests


class DramController:
    """Banked DRAM behind a shared bus and a bounded request buffer."""

    def __init__(
        self,
        n_banks: int,
        bank_occupancy: int,
        controller_overhead: int,
        bus: MemoryBus,
        block_size: int,
        request_buffer_size: int,
    ) -> None:
        self.banks = BankArray(n_banks, bank_occupancy)
        self.bus = bus
        self.controller_overhead = controller_overhead
        self.block_size = block_size
        self.request_buffer_size = request_buffer_size
        self._in_flight: List[float] = []  # min-heap of completion times
        self.stats = DramStats()
        #: bus occupancy of one block transfer (constant per configuration)
        self._block_transfer_cycles = bus.transfer_cycles(block_size)

    # -- request buffer ----------------------------------------------------

    def _occupancy(self, now: float) -> int:
        heap = self._in_flight
        while heap and heap[0] <= now:
            heapq.heappop(heap)
        return len(heap)

    def buffer_has_room(self, now: float) -> bool:
        return self._occupancy(now) < self.request_buffer_size

    def _wait_for_slot(self, now: float) -> float:
        """Earliest cycle at which a buffer slot is free (demand path)."""
        while not self.buffer_has_room(now):
            self.stats.buffer_full_stalls += 1
            now = self._in_flight[0]  # wait for the earliest completion
        return now

    # -- accesses ------------------------------------------------------------

    def unloaded_latency(self) -> float:
        """Minimum (contention-free) latency of one block read."""
        return (
            self.controller_overhead
            + self.banks.occupancy_cycles
            + self.bus.transfer_cycles(self.block_size)
        )

    def access(self, now: float, block_addr: int, is_demand: bool) -> Optional[float]:
        """Schedule a block read arriving at *now*; return completion cycle.

        Returns None when a prefetch is dropped for lack of buffer space.
        """
        if is_demand:
            start = self._wait_for_slot(now)
        else:
            if not self.buffer_has_room(now):
                self.stats.dropped_prefetches += 1
                return None
            start = now
        ready = start + self.controller_overhead
        bank = self.banks.bank_of(block_addr, self.block_size)
        bank_done = self.banks.service(bank, ready)
        completion = self.bus.transfer(bank_done, self.block_size, is_demand)
        heapq.heappush(self._in_flight, completion)
        if is_demand:
            self.stats.demand_requests += 1
            self.stats.total_demand_latency += completion - now
        else:
            self.stats.prefetch_requests += 1
        return completion

    def demand_access_fast(self, now: float, block_addr: int) -> float:
        """Flattened ``access(now, block_addr, is_demand=True)``.

        Exactly the same request-buffer wait, bank service, and
        demand-priority bus transfer as the composed path — one call and
        no intermediate objects, for the fast engine's miss path.  Any
        behavioral divergence from :meth:`access` is a bug caught by
        tests/differential/.
        """
        stats = self.stats
        heap = self._in_flight
        buffer_size = self.request_buffer_size
        # request buffer (== _wait_for_slot)
        start = now
        while True:
            while heap and heap[0] <= start:
                heapq.heappop(heap)
            if len(heap) < buffer_size:
                break
            stats.buffer_full_stalls += 1
            start = heap[0]
        ready = start + self.controller_overhead
        # bank service (== BankArray.service)
        banks = self.banks
        busy_until = banks._busy_until
        bank = (block_addr // self.block_size) % banks.n_banks
        bank_start = busy_until[bank]
        if bank_start > ready:
            banks.conflicts += 1
        else:
            bank_start = ready
        bank_done = bank_start + banks.occupancy_cycles
        busy_until[bank] = bank_done
        # demand-priority bus transfer (== MemoryBus.transfer)
        bus = self.bus
        transfer_start = bus._demand_busy_until
        if transfer_start < bank_done:
            transfer_start = bank_done
        completion = transfer_start + self._block_transfer_cycles
        bus._demand_busy_until = completion
        if bus._any_busy_until < completion:
            bus._any_busy_until = completion
        bus.transfers += 1
        heapq.heappush(heap, completion)
        stats.demand_requests += 1
        stats.total_demand_latency += completion - now
        return completion

    def writeback(self, now: float, block_addr: int) -> float:
        """A dirty-block writeback: one bus transfer, no read latency."""
        self.stats.writebacks += 1
        return self.bus.transfer(now, self.block_size, is_demand=False)
