"""DRAM bank model.

Each bank services one access at a time; a request arriving while its bank
is busy waits.  Keeping banks busy is one of the four contention channels
the paper lists for inter-prefetcher interference (Section 4), so bank
occupancy is modelled explicitly rather than folded into a flat latency.
"""

from __future__ import annotations

from typing import List


class BankArray:
    """N independent banks, block-interleaved."""

    def __init__(self, n_banks: int, occupancy_cycles: int) -> None:
        if n_banks <= 0:
            raise ValueError("need at least one bank")
        self.n_banks = n_banks
        self.occupancy_cycles = occupancy_cycles
        self._busy_until: List[float] = [0.0] * n_banks
        self.conflicts = 0  # accesses that waited on a busy bank

    def bank_of(self, block_addr: int, block_size: int) -> int:
        return (block_addr // block_size) % self.n_banks

    def service(self, bank: int, ready_time: float) -> float:
        """Begin an access on *bank* no earlier than *ready_time*.

        Returns the cycle the bank access completes (row access done,
        data ready for the bus).
        """
        start = self._busy_until[bank]
        if start > ready_time:
            self.conflicts += 1
        else:
            start = ready_time
        done = start + self.occupancy_cycles
        self._busy_until[bank] = done
        return done

    def reset(self) -> None:
        self._busy_until = [0.0] * self.n_banks
        self.conflicts = 0
