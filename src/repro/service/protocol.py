"""Submission protocol: wire payloads ⇄ content-hashed Jobs.

A submission is a small JSON object::

    {"benchmark": "mst", "mechanism": "ecdp+throttle",
     "preset": "scaled", "config": {"l2_size": 131072},
     "input_set": "ref", "profile_input": "train"}

Normalization is what makes the service's result cache *content
addressed* rather than request addressed: the payload is reduced to a
:class:`~repro.experiments.engine.job.Job`, whose key is a content hash
over exactly :data:`~repro.experiments.engine.job.IDENTITY_FIELDS`.  So
two submissions that differ only in JSON key order, in spelling out
config fields that equal the preset's defaults, or in where telemetry
goes, dedupe onto one cached result — while any change to a field that
affects the simulation produces a distinct key.  The hypothesis suite in
``tests/test_job_identity.py`` holds this property down.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

from repro.core.config import SystemConfig
from repro.errors import ConfigError, UsageError
from repro.experiments.engine.job import (
    Job,
    JobFailure,
    JobResult,
    ResultSnapshot,
)

#: top-level fields a submission may carry; anything else is a 400
SUBMISSION_FIELDS = frozenset(
    {"benchmark", "mechanism", "preset", "config", "input_set",
     "profile_input"}
)

#: named base configurations overrides are applied on top of
PRESETS = {"scaled": SystemConfig.scaled, "paper": SystemConfig.paper}

#: valid SystemConfig override names (computed once)
_CONFIG_FIELDS = frozenset(
    field.name for field in dataclasses.fields(SystemConfig)
)


def _required_name(payload: Dict[str, Any], field: str) -> str:
    value = payload.get(field)
    if not isinstance(value, str) or not value:
        raise UsageError(
            f"submission field {field!r} must be a non-empty string "
            f"(got {value!r})"
        )
    return value


def job_from_submission(
    payload: Any, telemetry_dir: Optional[str] = None
) -> Job:
    """Normalize one wire submission to a content-hashed :class:`Job`.

    Raises :class:`~repro.errors.UsageError` (HTTP 400 on the server) for
    anything malformed: unknown fields, unknown preset, config overrides
    that are not SystemConfig knobs, or overrides that fail
    ``SystemConfig.validate()``.  *telemetry_dir* is the server's choice,
    not the submitter's — it is a non-identity field, so it never
    affects the job key.
    """
    if not isinstance(payload, dict):
        raise UsageError(
            f"submission must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    unknown = set(payload) - SUBMISSION_FIELDS
    if unknown:
        raise UsageError(
            f"unknown submission field(s): {', '.join(sorted(unknown))}; "
            f"valid fields: {', '.join(sorted(SUBMISSION_FIELDS))}"
        )
    benchmark = _required_name(payload, "benchmark")
    mechanism = _required_name(payload, "mechanism")
    preset = payload.get("preset", "scaled")
    if preset not in PRESETS:
        raise UsageError(
            f"unknown preset {preset!r}; valid presets: "
            f"{', '.join(sorted(PRESETS))}"
        )
    overrides = payload.get("config") or {}
    if not isinstance(overrides, dict):
        raise UsageError(
            f'submission field "config" must be an object of '
            f"SystemConfig overrides (got {overrides!r})"
        )
    bad = set(overrides) - _CONFIG_FIELDS
    if bad:
        raise UsageError(
            f"unknown config field(s): {', '.join(sorted(bad))}"
        )
    try:
        config = PRESETS[preset]().with_overrides(**overrides).validate()
    except ConfigError:
        raise  # already a UsageError with field-level detail
    input_set = payload.get("input_set", "ref")
    profile_input = payload.get("profile_input", "train")
    for name, value in (("input_set", input_set),
                        ("profile_input", profile_input)):
        if not isinstance(value, str) or not value:
            raise UsageError(
                f"submission field {name!r} must be a non-empty string "
                f"(got {value!r})"
            )
    return Job(
        benchmark,
        mechanism,
        config,
        input_set=input_set,
        profile_input=profile_input,
        telemetry_dir=telemetry_dir,
    )


def submission_from_job(job: Job) -> Dict[str, Any]:
    """The wire payload that normalizes back to exactly *job*.

    Spells out the full config as overrides on the scaled preset, so the
    server reconstructs a field-identical SystemConfig — and therefore
    the identical job key — whatever preset the config started from.
    """
    if dataclasses.is_dataclass(job.config) and not isinstance(
        job.config, type
    ):
        config = dataclasses.asdict(job.config)
    elif isinstance(job.config, dict):
        config = dict(job.config)
    else:
        raise UsageError(
            f"cannot serialize config of type "
            f"{type(job.config).__name__} for submission"
        )
    return {
        "benchmark": job.benchmark,
        "mechanism": job.mechanism,
        "preset": "scaled",
        "config": config,
        "input_set": job.input_set,
        "profile_input": job.profile_input,
    }


def result_from_record(
    job: Job, record: Dict[str, Any], resumed: bool = False
) -> JobResult:
    """Rehydrate a journal-shaped service record into a JobResult.

    The client-side inverse of
    :func:`~repro.experiments.engine.checkpoint.journal_record`: the
    sweep CLI uses it to render server results through the exact same
    reporting path as a local engine run.
    """
    attempts = int(record.get("attempts", 1))
    duration = float(record.get("duration", 0.0))
    backoff = float(record.get("backoff_seconds", 0.0))
    crashes = int(record.get("crashes", 0) or 0)
    if record.get("status") == "ok":
        return JobResult(
            job,
            "ok",
            result=ResultSnapshot(record.get("metrics") or {}),
            attempts=attempts,
            duration=duration,
            backoff_total=backoff,
            crashes=crashes,
            resumed=resumed,
            executor=record.get("executor"),
            host=record.get("host"),
            queue_seconds=record.get("queue_seconds"),
        )
    error = record.get("error") or {}
    return JobResult(
        job,
        "failed",
        failure=JobFailure(
            error_type=str(error.get("type", "JobError")),
            message=str(error.get("message", "")),
            transient=bool(error.get("transient", False)),
            poison=bool(error.get("poison", False)),
        ),
        attempts=attempts,
        duration=duration,
        backoff_total=backoff,
        crashes=crashes,
        resumed=resumed,
    )
