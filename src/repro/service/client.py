"""Stdlib HTTP client for the simulation service.

:class:`ServiceClient` is a thin, dependency-free wrapper over
``http.client`` — one connection per request, matching the server's
``Connection: close`` discipline.  :func:`run_jobs` is the sweep-shaped
entry point: it pushes a job list through a remote server and returns
the same :class:`~repro.experiments.engine.SweepReport` a local
``engine.run()`` would, so every downstream consumer (result tables,
exporters, exit-code mapping) works unchanged with ``--server``.

Backpressure is part of the protocol, not an error: a 429/503 surfaces
as :class:`~repro.errors.ServiceBusyError` and ``run_jobs`` responds by
collecting an outstanding result before retrying the submission — the
client end of the server's quota design.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable, Dict, List, Optional
from urllib.parse import urlsplit

from repro.errors import ServiceBusyError, ServiceError
from repro.experiments.engine.executor import SweepReport
from repro.experiments.engine.job import Job, JobResult
from repro.service.protocol import result_from_record, submission_from_job

#: submission payload statuses that mean "the record is final"
TERMINAL_STATUSES = ("done", "failed")


class ServiceClient:
    """Talk to one simulation server at *base_url*.

    *client_id* becomes the ``X-Repro-Client`` header the server's
    per-client quota keys on; omit it to be identified by peer address.
    """

    def __init__(
        self,
        base_url: str,
        client_id: Optional[str] = None,
        timeout: float = 30.0,
    ):
        split = urlsplit(base_url if "//" in base_url else f"//{base_url}")
        if split.scheme not in ("", "http"):
            raise ServiceError(
                f"service URL must be http:// (got {base_url!r})"
            )
        if not split.hostname:
            raise ServiceError(f"service URL has no host: {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.client_id = client_id
        self.timeout = timeout

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- transport ---------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> Any:
        headers = {"Content-Type": "application/json"}
        if self.client_id:
            headers["X-Repro-Client"] = self.client_id
        body = (
            json.dumps(payload, sort_keys=True, default=repr)
            if payload is not None
            else None
        )
        try:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                status = response.status
                raw = response.read()
            finally:
                connection.close()
        except OSError as error:
            raise ServiceError(
                f"cannot reach simulation service at {self.base_url}: "
                f"{error}"
            ) from error
        content_type = ""
        if raw[:1] not in (b"{", b"["):
            content_type = "raw"
        if content_type == "raw":
            decoded: Any = raw
        else:
            try:
                decoded = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                decoded = raw
        if status >= 400:
            message = (
                decoded.get("error", f"HTTP {status}")
                if isinstance(decoded, dict)
                else f"HTTP {status}"
            )
            if status in (429, 503):
                raise ServiceBusyError(message, status=status)
            raise ServiceError(message, status=status)
        return decoded

    # -- endpoints ---------------------------------------------------------

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """POST one submission; returns the server's status payload."""
        return self._request("POST", "/jobs", payload)

    def submit_job(self, job: Job) -> Dict[str, Any]:
        """Submit a local :class:`Job`, guarding against identity skew.

        If the server derives a different content hash than the local
        ``job.key()``, client and server disagree about job identity —
        a version skew that would silently mis-cache.  Fail loudly.
        """
        response = self.submit(submission_from_job(job))
        if response.get("key") != job.key():
            raise ServiceError(
                "job identity skew: server hashed "
                f"{job.label} to {response.get('key')!r}, client to "
                f"{job.key()!r}; client and server versions disagree"
            )
        return response

    def status(self, key: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{key}")

    def result(self, key: str) -> Dict[str, Any]:
        """The settled record for *key* (ServiceError 409 if pending)."""
        return self._request("GET", f"/jobs/{key}/result")

    def wait(
        self, key: str, timeout: float = 600.0, poll: float = 0.05
    ) -> Dict[str, Any]:
        """Poll ``/jobs/<key>`` until the job settles; returns the payload."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.status(key)
            if payload.get("status") in TERMINAL_STATUSES:
                return payload
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for job "
                    f"{key} (last status: {payload.get('status')!r})"
                )
            time.sleep(poll)

    def run(
        self, payload: Dict[str, Any], timeout: float = 600.0
    ) -> Dict[str, Any]:
        """Submit one payload and block until its record is final."""
        response = self.submit(payload)
        if response.get("status") in TERMINAL_STATUSES:
            return response["record"]
        return self.wait(response["key"], timeout=timeout)["record"]

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def events(self, after: int = 0, wait: float = 0.0) -> Dict[str, Any]:
        """Engine/service events with seq > *after* (optionally long-poll)."""
        return self._request(
            "GET", f"/events?after={int(after)}&wait={float(wait)}"
        )

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")


def run_jobs(
    client: ServiceClient,
    jobs: List[Job],
    progress: Optional[Callable[[JobResult], None]] = None,
    timeout: float = 600.0,
    poll: float = 0.1,
) -> SweepReport:
    """Run a sweep's job list through a remote service.

    Submits every job (deduplicating identical cells client-side, like
    the engine does), rides out backpressure by collecting an already
    outstanding result before retrying, then polls the remainder in
    submission order.  The returned report is shaped exactly like a
    local ``engine.run()`` report: records the server served from its
    cache come back ``resumed=True``, re-executions ``resumed=False``.
    """
    report = SweepReport()
    by_key: Dict[str, Job] = {}
    for job in jobs:
        key = job.key()
        if key not in by_key:
            by_key[key] = job
            report.order.append(key)
    outstanding: List[str] = []  # submitted, not yet settled
    deadline = time.monotonic() + timeout

    def settle(key: str, payload: Dict[str, Any]) -> None:
        outcome = result_from_record(
            by_key[key],
            payload["record"],
            resumed=bool(payload.get("cached", False)),
        )
        report.results[key] = outcome
        if progress is not None:
            progress(outcome)

    def collect_one() -> None:
        """Wait out the oldest outstanding job (frees quota headroom)."""
        key = outstanding.pop(0)
        settle(
            key,
            client.wait(
                key,
                timeout=max(0.1, deadline - time.monotonic()),
                poll=poll,
            ),
        )

    for key in list(report.order):
        job = by_key[key]
        while True:
            try:
                response = client.submit_job(job)
            except ServiceBusyError:
                if outstanding:
                    collect_one()
                    continue
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)
                continue
            break
        if response.get("status") in TERMINAL_STATUSES:
            settle(key, response)
        else:
            outstanding.append(key)
    while outstanding:
        collect_one()
    return report
