"""Stdlib HTTP client for the simulation service.

:class:`ServiceClient` is a thin, dependency-free wrapper over
``http.client`` — one connection per request, matching the server's
``Connection: close`` discipline.  :func:`run_jobs` is the sweep-shaped
entry point: it pushes a job list through a remote server and returns
the same :class:`~repro.experiments.engine.SweepReport` a local
``engine.run()`` would, so every downstream consumer (result tables,
exporters, exit-code mapping) works unchanged with ``--server``.

Backpressure is part of the protocol, not an error: a 429/503 surfaces
as :class:`~repro.errors.ServiceBusyError` and ``run_jobs`` responds by
collecting an outstanding result before retrying the submission — the
client end of the server's quota design.  With nothing outstanding to
collect, the client itself rides the rejection out: a bounded number of
retries with exponential backoff, jittered, never sleeping less than
the server's ``Retry-After`` hint.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Callable, Dict, List, Optional
from urllib.parse import urlsplit

from repro.errors import ServiceBusyError, ServiceError
from repro.experiments.engine.executor import SweepReport
from repro.experiments.engine.job import Job, JobResult
from repro.service.protocol import result_from_record, submission_from_job

#: submission payload statuses that mean "the record is final"
TERMINAL_STATUSES = ("done", "failed")


class ServiceClient:
    """Talk to one simulation server at *base_url*.

    *client_id* becomes the ``X-Repro-Client`` header the server's
    per-client quota keys on; omit it to be identified by peer address.
    """

    def __init__(
        self,
        base_url: str,
        client_id: Optional[str] = None,
        timeout: float = 30.0,
        busy_retries: int = 4,
        busy_backoff: float = 0.05,
        busy_backoff_cap: float = 2.0,
    ):
        split = urlsplit(base_url if "//" in base_url else f"//{base_url}")
        if split.scheme not in ("", "http"):
            raise ServiceError(
                f"service URL must be http:// (got {base_url!r})"
            )
        if not split.hostname:
            raise ServiceError(f"service URL has no host: {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.client_id = client_id
        self.timeout = timeout
        #: how many times a busy (429/503) response is retried in-client
        #: before :class:`ServiceBusyError` propagates to the caller
        self.busy_retries = busy_retries
        self.busy_backoff = busy_backoff
        self.busy_backoff_cap = busy_backoff_cap
        # seams for deterministic tests
        self._sleep = time.sleep
        self._random = random.random

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- transport ---------------------------------------------------------

    def _busy_delay(self, attempt: int, hint: Optional[float]) -> float:
        """Seconds to back off before busy-retry *attempt* (0-based).

        Exponential in the attempt number, capped, never less than the
        server's ``Retry-After`` hint, with upward-only jitter so a
        fleet of clients bounced by the same 429 does not re-stampede
        the server in lockstep.
        """
        delay = min(
            self.busy_backoff * (2.0 ** attempt), self.busy_backoff_cap
        )
        if hint is not None:
            delay = max(delay, float(hint))  # hint <= cap, by _request
        return delay + self._random() * delay * 0.5

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        busy_retry: bool = True,
    ) -> Any:
        """One endpoint call, riding out bounded backpressure.

        Busy responses (429/503) are retried up to ``busy_retries``
        times with :meth:`_busy_delay` pacing — safe because every
        endpoint is idempotent (submissions are content-addressed).
        Two cases propagate the raw :class:`ServiceBusyError` instead:
        callers that have a better use for the wait (the sweep client
        collects an outstanding result) pass ``busy_retry=False``, and
        a ``Retry-After`` hint beyond ``busy_backoff_cap`` means the
        server expects to be busy for longer than a bounded in-call
        retry should ever sleep — the caller decides what to do with
        that much time.
        """
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload)
            except ServiceBusyError as error:
                hint = error.retry_after
                if (
                    not busy_retry
                    or attempt >= self.busy_retries
                    or (hint is not None and hint > self.busy_backoff_cap)
                ):
                    raise
                self._sleep(self._busy_delay(attempt, hint))
                attempt += 1

    def _request_once(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> Any:
        headers = {"Content-Type": "application/json"}
        if self.client_id:
            headers["X-Repro-Client"] = self.client_id
        body = (
            json.dumps(payload, sort_keys=True, default=repr)
            if payload is not None
            else None
        )
        try:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                status = response.status
                retry_header = response.getheader("Retry-After")
                raw = response.read()
            finally:
                connection.close()
        except OSError as error:
            raise ServiceError(
                f"cannot reach simulation service at {self.base_url}: "
                f"{error}"
            ) from error
        content_type = ""
        if raw[:1] not in (b"{", b"["):
            content_type = "raw"
        if content_type == "raw":
            decoded: Any = raw
        else:
            try:
                decoded = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                decoded = raw
        if status >= 400:
            message = (
                decoded.get("error", f"HTTP {status}")
                if isinstance(decoded, dict)
                else f"HTTP {status}"
            )
            if status in (429, 503):
                try:
                    hint = (
                        float(retry_header)
                        if retry_header is not None
                        else None
                    )
                except ValueError:
                    hint = None
                raise ServiceBusyError(
                    message, status=status, retry_after=hint
                )
            raise ServiceError(message, status=status)
        return decoded

    # -- endpoints ---------------------------------------------------------

    def submit(
        self, payload: Dict[str, Any], busy_retry: bool = True
    ) -> Dict[str, Any]:
        """POST one submission; returns the server's status payload."""
        return self._request("POST", "/jobs", payload,
                             busy_retry=busy_retry)

    def submit_job(
        self, job: Job, busy_retry: bool = True
    ) -> Dict[str, Any]:
        """Submit a local :class:`Job`, guarding against identity skew.

        If the server derives a different content hash than the local
        ``job.key()``, client and server disagree about job identity —
        a version skew that would silently mis-cache.  Fail loudly.
        """
        response = self.submit(submission_from_job(job),
                               busy_retry=busy_retry)
        if response.get("key") != job.key():
            raise ServiceError(
                "job identity skew: server hashed "
                f"{job.label} to {response.get('key')!r}, client to "
                f"{job.key()!r}; client and server versions disagree"
            )
        return response

    def status(self, key: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{key}")

    def result(self, key: str) -> Dict[str, Any]:
        """The settled record for *key* (ServiceError 409 if pending)."""
        return self._request("GET", f"/jobs/{key}/result")

    def wait(
        self, key: str, timeout: float = 600.0, poll: float = 0.05
    ) -> Dict[str, Any]:
        """Poll ``/jobs/<key>`` until the job settles; returns the payload."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.status(key)
            if payload.get("status") in TERMINAL_STATUSES:
                return payload
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for job "
                    f"{key} (last status: {payload.get('status')!r})"
                )
            time.sleep(poll)

    def run(
        self, payload: Dict[str, Any], timeout: float = 600.0
    ) -> Dict[str, Any]:
        """Submit one payload and block until its record is final."""
        response = self.submit(payload)
        if response.get("status") in TERMINAL_STATUSES:
            return response["record"]
        return self.wait(response["key"], timeout=timeout)["record"]

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def events(self, after: int = 0, wait: float = 0.0) -> Dict[str, Any]:
        """Engine/service events with seq > *after* (optionally long-poll)."""
        return self._request(
            "GET", f"/events?after={int(after)}&wait={float(wait)}"
        )

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")


def run_jobs(
    client: ServiceClient,
    jobs: List[Job],
    progress: Optional[Callable[[JobResult], None]] = None,
    timeout: float = 600.0,
    poll: float = 0.1,
) -> SweepReport:
    """Run a sweep's job list through a remote service.

    Submits every job (deduplicating identical cells client-side, like
    the engine does), rides out backpressure by collecting an already
    outstanding result before retrying, then polls the remainder in
    submission order.  The returned report is shaped exactly like a
    local ``engine.run()`` report: records the server served from its
    cache come back ``resumed=True``, re-executions ``resumed=False``.
    """
    report = SweepReport()
    by_key: Dict[str, Job] = {}
    for job in jobs:
        key = job.key()
        if key not in by_key:
            by_key[key] = job
            report.order.append(key)
    outstanding: List[str] = []  # submitted, not yet settled
    deadline = time.monotonic() + timeout

    def settle(key: str, payload: Dict[str, Any]) -> None:
        outcome = result_from_record(
            by_key[key],
            payload["record"],
            resumed=bool(payload.get("cached", False)),
        )
        report.results[key] = outcome
        if progress is not None:
            progress(outcome)

    def collect_one() -> None:
        """Wait out the oldest outstanding job (frees quota headroom)."""
        key = outstanding.pop(0)
        settle(
            key,
            client.wait(
                key,
                timeout=max(0.1, deadline - time.monotonic()),
                poll=poll,
            ),
        )

    for key in list(report.order):
        job = by_key[key]
        while True:
            try:
                # with work outstanding the best response to a busy
                # server is collecting a result (frees quota headroom
                # deterministically), not sleeping — so disable the
                # client's own busy-retry loop for that case
                response = client.submit_job(
                    job, busy_retry=not outstanding
                )
            except ServiceBusyError as busy:
                if outstanding:
                    collect_one()
                    continue
                if time.monotonic() >= deadline:
                    raise
                time.sleep(busy.retry_after or poll)
                continue
            break
        if response.get("status") in TERMINAL_STATUSES:
            settle(key, response)
        else:
            outstanding.append(key)
    while outstanding:
        collect_one()
    return report
