"""Asyncio HTTP/JSON job server: the sweep engine as a backend.

One long-running process owns an :class:`~repro.experiments.engine.
ExecutionEngine` and its checkpoint journal; clients submit jobs over
HTTP and the engine's existing machinery — crash isolation, retries,
watchdog, quarantine, fault injection, graceful drain — executes them.
Everything rides on stdlib ``asyncio``: no web framework, no new
dependencies.

Request lifecycle::

    POST /jobs  ──normalize──▶ Job ──key()──▶ content hash
        │  key settled in the store?  ──▶ 200 {"cached": true, record}
        │  key queued or running?     ──▶ 202 coalesce (one execution)
        │  client over quota / queue full ─▶ 429
        │  otherwise enqueue          ──▶ 202 {"status": "queued"}

A batcher task gathers queued submissions for a short window and hands
the whole batch to ``engine.run(..., resume=True)`` in a worker thread —
so concurrent submissions share one engine pass, journal writes stay
single-writer, and a record that reached the journal through any prior
life of the server replays instead of re-executing.

Endpoints: ``POST /jobs``, ``GET /jobs``, ``GET /jobs/<key>``,
``GET /jobs/<key>/result``, ``GET /jobs/<key>/series``, ``GET /events``
(cursor + long-poll over the engine/service event stream, same row shape
as the sweep CLI's ``*-engine.events.jsonl``), ``GET /stats``,
``GET /healthz``.

Shutdown is a drain, not a kill: ``begin_drain()`` rejects new
submissions with 503 and requests the engine's
:class:`~repro.experiments.engine.GracefulDrain`; in-flight jobs settle
to the journal before the loop exits, so a restarted server serves them
from the store.
"""

from __future__ import annotations

import asyncio
import collections
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    ReproError,
    ServiceError,
    SweepInterrupted,
    UsageError,
)
from repro.experiments.engine import GracefulDrain, journal_record
from repro.experiments.engine.executor import ExecutionEngine, SweepReport
from repro.experiments.engine.job import Job
from repro.service.protocol import job_from_submission
from repro.service.store import ResultStore

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: statuses a job entry can report; "done"/"failed" are terminal
PENDING_STATUSES = ("queued", "running")


@dataclass(frozen=True)
class ServicePolicy:
    """Service-level limits: batching, backpressure, and quotas."""

    #: queued (not yet running) jobs before submissions get 429
    max_queue: int = 64
    #: distinct pending jobs one client may have before 429
    max_pending_per_client: int = 16
    #: seconds the batcher waits to gather co-submitted jobs
    batch_window: float = 0.05
    #: most jobs handed to one engine pass
    max_batch: int = 32
    #: times an unsettled job re-enters the queue (engine abort faults)
    #: before the service fails it
    max_requeues: int = 3
    #: request body cap (bytes)
    max_body_bytes: int = 1 << 20
    #: ceiling on the ?wait= long-poll of GET /events (seconds)
    max_event_wait: float = 30.0
    #: per-connection read deadline (seconds)
    request_timeout: float = 10.0


class EngineEventLog:
    """Thread-safe ring of engine + service events with a seq cursor.

    Exposes the :class:`~repro.telemetry.EventTracer` ``emit`` surface,
    so the execution engine (running in a worker thread) and the service
    (running in the event loop) both append here; ``GET /events`` reads
    incrementally by sequence number.  Rows use the exact shape the
    sweep CLI writes to ``<sweep>-engine.events.jsonl``.
    """

    def __init__(self, capacity: int = 8192):
        self._events: Deque[dict] = collections.deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0

    def emit(self, ts, kind, name, addr, dur, args) -> None:
        with self._lock:
            self._seq += 1
            self._events.append(
                {
                    "seq": self._seq,
                    "core": "engine",
                    "ts": ts,
                    "kind": kind,
                    "name": name,
                    "addr": addr,
                    "dur": dur,
                    "args": args,
                }
            )

    @property
    def appended(self) -> int:
        with self._lock:
            return self._seq

    def since(self, after: int) -> List[dict]:
        """Events with seq > *after* (oldest first)."""
        with self._lock:
            return [e for e in self._events if e["seq"] > after]

    def snapshot(self) -> List[dict]:
        with self._lock:
            return list(self._events)


class _TeeTracer:
    """Fan one engine-event stream out to several tracers."""

    def __init__(self, *sinks):
        self._sinks = [sink for sink in sinks if sink is not None]

    def emit(self, *event) -> None:
        for sink in self._sinks:
            try:
                sink.emit(*event)
            except Exception:
                pass  # telemetry must never take down the service


@dataclass
class JobEntry:
    """One submitted job's service-side state."""

    job: Job
    key: str
    status: str = "queued"
    record: Optional[dict] = None
    #: served from the result store / journal, not executed this life
    cached: bool = False
    #: submissions that landed on this entry (1 + coalesced)
    submissions: int = 1
    #: clients with this key pending (quota accounting)
    clients: Set[str] = field(default_factory=set)
    #: times the entry re-entered the queue without settling
    requeues: int = 0


class SimulationServer:
    """HTTP front-end turning the execution engine into a service."""

    def __init__(
        self,
        engine: ExecutionEngine,
        store: Optional[ResultStore] = None,
        policy: Optional[ServicePolicy] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        telemetry_dir: Optional[str] = None,
        events_path: Optional[str] = None,
    ):
        if engine.checkpoint is None:
            raise UsageError(
                "the job service needs a checkpoint journal: it is the "
                "durable half of the content-addressed result store"
            )
        self.engine = engine
        self.store = store or ResultStore(engine.checkpoint)
        self.policy = policy or ServicePolicy()
        self.host = host
        self.port = port
        #: when set, executed jobs record per-interval series here
        self.telemetry_dir = telemetry_dir
        #: when set, the event log is dumped here as JSONL at shutdown
        self.events_path = events_path
        self.events = EngineEventLog()
        # engine events (retry/quarantine/watchdog/journal/...) flow into
        # the service log too, alongside any tracer the caller attached
        self.engine.tracer = _TeeTracer(self.engine.tracer, self.events)
        self.stats: collections.Counter = collections.Counter()
        self._entries: Dict[str, JobEntry] = {}
        self._pending: Deque[str] = collections.deque()
        self._queued_count = 0
        self._client_pending: Dict[str, Set[str]] = collections.defaultdict(
            set
        )
        self._drain = GracefulDrain()  # never entered: request() only
        self._draining = False
        self._t0 = time.monotonic()
        self._server: Optional[asyncio.base_events.Server] = None
        self._batch_task: Optional[asyncio.Task] = None
        self._work: Optional[asyncio.Event] = None
        self._drained: Optional[asyncio.Event] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start the batcher task."""
        self._work = asyncio.Event()
        self._drained = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._batch_task = asyncio.get_running_loop().create_task(
            self._batch_loop()
        )
        self._emit("serve-start", None, host=self.host, port=self.port)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    async def begin_drain(self) -> None:
        """Stop accepting; let in-flight work settle to the journal."""
        if self._draining:
            return
        self._draining = True
        self._drain.request()
        self._emit(
            "drain", None,
            queued=self._queued_count,
            running=sum(
                1 for e in self._entries.values() if e.status == "running"
            ),
        )
        if self._work is not None:
            self._work.set()
        if self._drained is not None:
            self._drained.set()

    async def shutdown(self) -> None:
        """Drain, wait for the running batch, close the socket."""
        await self.begin_drain()
        if self._batch_task is not None:
            await self._batch_task
            self._batch_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.events_path is not None:
            self._write_events_file()

    def _write_events_file(self) -> None:
        try:
            with open(self.events_path, "w") as stream:
                for event in self.events.snapshot():
                    stream.write(json.dumps(event, sort_keys=True) + "\n")
        except OSError:
            pass  # an events dump is best-effort, like all telemetry

    # -- batching ----------------------------------------------------------

    async def _batch_loop(self) -> None:
        while not self._draining:
            if not self._pending:
                self._work.clear()
                if self._draining:
                    break
                try:
                    await asyncio.wait_for(self._work.wait(), timeout=0.5)
                except (asyncio.TimeoutError, TimeoutError):
                    pass
                continue
            # gather co-submitted work into one engine pass; a drain
            # request cuts the window short so shutdown never waits it out
            try:
                await asyncio.wait_for(
                    self._drained.wait(), timeout=self.policy.batch_window
                )
            except (asyncio.TimeoutError, TimeoutError):
                pass
            batch: List[JobEntry] = []
            while self._pending and len(batch) < self.policy.max_batch:
                entry = self._entries[self._pending.popleft()]
                if entry.status != "queued":
                    continue
                entry.status = "running"
                self._queued_count -= 1
                batch.append(entry)
            if not batch:
                continue
            self.stats["batches"] += 1
            self._emit("batch-start", None, jobs=len(batch))
            loop = asyncio.get_running_loop()
            report: Optional[SweepReport] = None
            try:
                report = await loop.run_in_executor(
                    None, self._execute, [entry.job for entry in batch]
                )
            except SweepInterrupted:
                # an injected abort killed the scheduler mid-batch; the
                # journal holds the completed prefix — settle from it
                self.stats["batch_aborts"] += 1
            except Exception as error:  # engine bug: fail soft, stay up
                self.stats["batch_errors"] += 1
                self._emit("batch-error", None, error=repr(error))
            self._settle_batch(batch, report)

    def _execute(self, jobs: List[Job]) -> SweepReport:
        """Run one batch in a worker thread (the loop stays responsive).

        ``resume=True`` makes the engine replay any record already in
        the journal — the second dedup layer, closing the race between a
        submit-time cache check and a record that settled meanwhile.
        """
        return self.engine.run(jobs, resume=True, drain=self._drain)

    def _settle_batch(
        self, batch: List[JobEntry], report: Optional[SweepReport]
    ) -> None:
        if report is not None:
            self.store.absorb(report)
            self.stats["journal_errors"] += report.journal_errors
        else:
            # the engine raised: whatever it journaled first still counts
            self.store.load()
        for entry in batch:
            outcome = (
                report.results.get(entry.key) if report is not None else None
            )
            if outcome is not None:
                record = journal_record(outcome)
                if not outcome.resumed:
                    self.stats["executed"] += 1
                else:
                    self.stats["resumed"] += 1
                self._settle_entry(entry, record, cached=outcome.resumed)
                continue
            record = self.store.get(entry.key)
            if record is not None:
                self._settle_entry(entry, record, cached=True)
                continue
            # never settled: drained before launch, or aborted mid-batch
            entry.requeues += 1
            if (
                not self._draining
                and entry.requeues <= self.policy.max_requeues
            ):
                entry.status = "queued"
                self._queued_count += 1
                self._pending.appendleft(entry.key)
                self._emit(
                    "requeue", entry.job.label, requeues=entry.requeues
                )
            elif self._draining:
                entry.status = "queued"  # abandoned; journal untouched
            else:
                self._settle_entry(
                    entry,
                    {
                        "key": entry.key,
                        "benchmark": entry.job.benchmark,
                        "mechanism": entry.job.mechanism,
                        "input_set": entry.job.input_set,
                        "status": "failed",
                        "attempts": entry.requeues,
                        "duration": 0.0,
                        "error": {
                            "type": "ServiceError",
                            "message": (
                                "job never settled after "
                                f"{entry.requeues} batch attempt(s)"
                            ),
                            "transient": True,
                        },
                    },
                    cached=False,
                )

    def _settle_entry(
        self, entry: JobEntry, record: dict, cached: bool
    ) -> None:
        entry.record = record
        entry.cached = cached
        entry.status = "done" if record.get("status") == "ok" else "failed"
        self.stats["settled"] += 1
        for client in entry.clients:
            self._client_pending[client].discard(entry.key)
        entry.clients.clear()
        self._emit(
            "settled", entry.job.label,
            key=entry.key, status=entry.status, cached=cached,
        )

    # -- submission --------------------------------------------------------

    def _submit(
        self, payload: Any, client: str
    ) -> Tuple[int, Dict[str, Any]]:
        """Handle one POST /jobs; returns (http status, response body)."""
        if self._draining:
            return 503, {
                "error": "service is draining; resubmit to the next server"
            }
        job = job_from_submission(payload, telemetry_dir=self.telemetry_dir)
        key = job.key()
        self.stats["submissions"] += 1
        entry = self._entries.get(key)
        # terminal entry or stored record that resume semantics serve
        if entry is not None and entry.record is not None:
            if self.store.serves(entry.record):
                self.stats["cache_hits"] += 1
                self._emit("cache-hit", job.label, key=key, client=client)
                return 200, self._entry_payload(entry, cached=True)
        elif entry is None:
            record = self.store.get(key)
            if self.store.serves(record):
                self.stats["cache_hits"] += 1
                entry = JobEntry(job, key, record=record, cached=True)
                entry.status = (
                    "done" if record.get("status") == "ok" else "failed"
                )
                self._entries[key] = entry
                self._emit("cache-hit", job.label, key=key, client=client)
                return 200, self._entry_payload(entry)
        # coalesce onto in-flight work (counts against the quota: a
        # pending job is pending, whoever asked first)
        if entry is not None and entry.status in PENDING_STATUSES:
            code = self._check_quota(client, key)
            if code is not None:
                return code
            entry.submissions += 1
            entry.clients.add(client)
            self._client_pending[client].add(key)
            self.stats["coalesced"] += 1
            self._emit("coalesced", job.label, key=key, client=client)
            return 202, self._entry_payload(entry, coalesced=True)
        # fresh execution (new key, or a failed record that re-runs)
        code = self._check_quota(client, key)
        if code is not None:
            return code
        if self._queued_count >= self.policy.max_queue:
            self.stats["rejected_queue"] += 1
            self._emit("reject-queue", job.label, client=client)
            return 429, {
                "error": (
                    f"job queue is full ({self.policy.max_queue} queued); "
                    "retry after in-flight work settles"
                ),
                "retry_after": self.policy.batch_window * 4,
            }
        if entry is None:
            entry = JobEntry(job, key)
            self._entries[key] = entry
        else:  # failed-but-retryable record: run it again
            entry.status = "queued"
            entry.record = None
            entry.cached = False
            entry.requeues = 0
            entry.submissions += 1
        entry.clients.add(client)
        self._client_pending[client].add(key)
        self._pending.append(key)
        self._queued_count += 1
        self.stats["accepted"] += 1
        self._emit("submit", job.label, key=key, client=client)
        self._work.set()
        return 202, self._entry_payload(entry)

    def _check_quota(
        self, client: str, key: str
    ) -> Optional[Tuple[int, Dict[str, Any]]]:
        """A 429 response if *client* is at its pending-jobs quota."""
        pending = self._client_pending[client]
        if key in pending:  # re-poking your own pending job is free
            return None
        if len(pending) >= self.policy.max_pending_per_client:
            self.stats["rejected_quota"] += 1
            self._emit("reject-quota", None, client=client)
            return 429, {
                "error": (
                    f"client {client!r} has "
                    f"{len(pending)} pending job(s) (quota "
                    f"{self.policy.max_pending_per_client}); wait for "
                    "results before submitting more"
                ),
                "retry_after": self.policy.batch_window * 4,
            }
        return None

    def _entry_payload(
        self, entry: JobEntry, cached: Optional[bool] = None,
        coalesced: bool = False,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "key": entry.key,
            "label": entry.job.label,
            "status": entry.status,
            "cached": entry.cached if cached is None else cached,
            "submissions": entry.submissions,
        }
        if coalesced:
            payload["coalesced"] = True
        if entry.record is not None:
            payload["record"] = entry.record
        return payload

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await asyncio.wait_for(
                    self._read_request(reader),
                    timeout=self.policy.request_timeout,
                )
            except (asyncio.TimeoutError, TimeoutError):
                return
            except (
                asyncio.IncompleteReadError, ConnectionError, OSError
            ):
                return
            if request is None:
                return
            method, path, query, body, headers, peer = request
            try:
                status, payload = await self._dispatch(
                    method, path, query, body, headers, peer
                )
            except ReproError as error:
                status = 400 if isinstance(error, UsageError) else 500
                payload = {"error": str(error)}
            except Exception as error:  # noqa: BLE001 — stay up
                status, payload = 500, {"error": repr(error)}
            await self._respond(writer, status, payload)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            length = 0
        if length > self.policy.max_body_bytes:
            return ("_OVERSIZED", target, {}, b"", headers, None)
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        query = {
            name: values[-1]
            for name, values in parse_qs(split.query).items()
        }
        return method.upper(), split.path, query, body, headers, None

    async def _respond(self, writer, status: int, payload) -> None:
        if isinstance(payload, (bytes, bytearray)):
            body, content_type = bytes(payload), "application/x-ndjson"
        else:
            body = (
                json.dumps(payload, sort_keys=True, default=repr) + "\n"
            ).encode("utf-8")
            content_type = "application/json"
        reason = _REASONS.get(status, "Unknown")
        extra = ""
        if status in (429, 503) and isinstance(payload, dict):
            # mirror the JSON hint as the standard backpressure header so
            # generic HTTP clients (and ours) can pace their retries
            retry_after = payload.get("retry_after")
            if isinstance(retry_after, (int, float)) and retry_after >= 0:
                extra = f"Retry-After: {retry_after:g}\r\n"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _dispatch(
        self, method, path, query, body, headers, peer
    ) -> Tuple[int, Any]:
        if method == "_OVERSIZED":
            return 413, {
                "error": (
                    f"request body exceeds "
                    f"{self.policy.max_body_bytes} bytes"
                )
            }
        parts = [part for part in path.split("/") if part]
        if method == "POST" and parts == ["jobs"]:
            try:
                payload = json.loads(body.decode("utf-8")) if body else None
            except (ValueError, UnicodeDecodeError) as error:
                return 400, {"error": f"request body is not JSON: {error}"}
            client = headers.get("x-repro-client") or "anonymous"
            return self._submit(payload, client)
        if method != "GET":
            return 405, {"error": f"{method} not supported on {path}"}
        if parts == ["healthz"]:
            return 200, {
                "status": "draining" if self._draining else "ok",
                "store": str(self.store.journal.path),
                "records": len(self.store),
                "engine_jobs": self.engine.jobs,
            }
        if parts == ["stats"]:
            stats = dict(self.stats)
            stats.update(
                queued=self._queued_count,
                running=sum(
                    1
                    for e in self._entries.values()
                    if e.status == "running"
                ),
                entries=len(self._entries),
                store_records=len(self.store),
                draining=self._draining,
                events=self.events.appended,
                policies=self.store.policy_counts(),
            )
            return 200, stats
        if parts == ["events"]:
            return await self._get_events(query)
        if parts == ["jobs"]:
            return 200, {
                "jobs": [
                    {
                        "key": entry.key,
                        "label": entry.job.label,
                        "status": entry.status,
                        "cached": entry.cached,
                        "policy": getattr(
                            entry.job.config, "throttle_policy", None
                        ),
                    }
                    for entry in self._entries.values()
                ]
            }
        if len(parts) >= 2 and parts[0] == "jobs":
            return await self._get_job(parts[1], parts[2:])
        return 404, {"error": f"no such endpoint: {path}"}

    async def _get_events(self, query) -> Tuple[int, Any]:
        try:
            after = int(query.get("after", "0"))
            wait = min(
                float(query.get("wait", "0")), self.policy.max_event_wait
            )
        except ValueError:
            return 400, {"error": "events cursor parameters must be numeric"}
        deadline = time.monotonic() + max(0.0, wait)
        while True:
            events = self.events.since(after)
            if events or time.monotonic() >= deadline:
                break
            await asyncio.sleep(0.05)
        next_cursor = events[-1]["seq"] if events else after
        return 200, {"events": events, "next": next_cursor}

    async def _get_job(self, key: str, rest: List[str]) -> Tuple[int, Any]:
        entry = self._entries.get(key)
        record = entry.record if entry is not None else self.store.get(key)
        if entry is None and record is None:
            return 404, {"error": f"unknown job key {key!r}"}
        if not rest:
            if entry is not None:
                return 200, self._entry_payload(entry)
            return 200, self._record_payload(key, record)
        if rest == ["result"]:
            if record is None:
                return 409, {
                    "error": f"job {key} has not settled yet",
                    "status": entry.status,
                }
            return 200, record
        if rest == ["series"]:
            return self._get_series(key, entry, record)
        return 404, {"error": f"no such endpoint under /jobs/{key}"}

    @staticmethod
    def _record_payload(key: str, record: dict) -> Dict[str, Any]:
        """Status payload for a key known only from the journal."""
        return {
            "key": key,
            "label": (
                f"{record.get('benchmark')}/{record.get('mechanism')}"
            ),
            "status": "done" if record.get("status") == "ok" else "failed",
            "cached": True,
            "record": record,
        }

    def _get_series(self, key, entry, record) -> Tuple[int, Any]:
        if self.telemetry_dir is None:
            return 404, {"error": "server started without --telemetry"}
        from repro.telemetry import series_path

        if entry is not None:
            benchmark = entry.job.benchmark
            mechanism = entry.job.mechanism
            input_set = entry.job.input_set
        else:
            benchmark = record.get("benchmark")
            mechanism = record.get("mechanism")
            input_set = record.get("input_set", "ref")
        path = series_path(
            self.telemetry_dir, benchmark, mechanism, input_set
        )
        if not path.exists():
            return 404, {
                "error": f"no telemetry series recorded for {key}"
            }
        return 200, path.read_bytes()

    def _emit(self, kind: str, name: Optional[str], **args) -> None:
        self.events.emit(
            round(time.monotonic() - self._t0, 6),
            kind, name, None, None, args or None,
        )


# -- embedding helpers -------------------------------------------------------


class ServerHandle:
    """A server running on a background thread (tests, embedding).

    ``url`` is live once the constructor returns; ``stop()`` drains and
    joins.  ``begin_drain()`` starts the drain while keeping the HTTP
    socket up — the deterministic way to observe the 503 path.
    """

    def __init__(self, server: SimulationServer, start_timeout: float = 10.0):
        self.server = server
        self._started = threading.Event()
        self._stop_event: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None
        self.thread = threading.Thread(
            target=self._thread_main, name="repro-service", daemon=True
        )
        self.thread.start()
        if not self._started.wait(start_timeout):
            raise ServiceError("service thread failed to start in time")
        if self._error is not None:
            raise ServiceError(f"service failed to start: {self._error}")

    @property
    def url(self) -> str:
        return self.server.url

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as error:  # surfaced by the constructor
            self._error = error
            self._started.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        await self.server.start()
        self._started.set()
        await self._stop_event.wait()
        await self.server.shutdown()

    def _call(self, coroutine_factory: Callable, timeout: float):
        if self._loop is None:
            raise ServiceError("service loop is not running")
        future = asyncio.run_coroutine_threadsafe(
            coroutine_factory(), self._loop
        )
        return future.result(timeout)

    def begin_drain(self, timeout: float = 10.0) -> None:
        self._call(self.server.begin_drain, timeout)

    def stop(self, timeout: float = 30.0) -> None:
        """Drain in-flight work, shut the server down, join the thread."""
        if self._loop is not None and self.thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self.thread.join(timeout)
        if self.thread.is_alive():
            raise ServiceError("service thread did not stop in time")


def start_server_thread(
    engine: ExecutionEngine, **kwargs
) -> ServerHandle:
    """Start a :class:`SimulationServer` on a background thread."""
    return ServerHandle(SimulationServer(engine, **kwargs))


def serve_forever(server: SimulationServer) -> int:
    """Run *server* in the foreground until SIGTERM/SIGINT drains it.

    The ``repro serve`` entrypoint.  The first signal begins a graceful
    drain (in-flight jobs settle to the journal); exit code 0.
    """
    import signal as _signal

    async def main() -> None:
        await server.start()
        print(
            f"repro service listening on {server.url} "
            f"(store: {server.store.journal.path}, "
            f"{len(server.store)} cached record(s))",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        await stop.wait()
        print("repro service draining...", flush=True)
        await server.shutdown()
        print(
            f"repro service stopped ({server.stats['settled']} job(s) "
            "settled this life)",
            flush=True,
        )

    asyncio.run(main())
    return 0
