"""Simulation-as-a-service: the sweep engine behind an HTTP front-end.

A long-running server owns an execution engine and a checkpoint journal;
clients submit jobs as JSON, get back content-hashed keys, and poll (or
long-poll the event stream) for results.  Three properties define the
design:

* **Content-addressed dedup** — a submission normalizes to the same
  :class:`~repro.experiments.engine.Job` identity the engine has always
  checkpointed under, so an identical resubmission is served from the
  journal-backed :class:`ResultStore` with *zero* re-execution, and
  concurrent duplicates coalesce onto one in-flight run.
* **Nothing new under the failure model** — requests batch into the
  existing engine (retry, watchdog, quarantine, fault injection,
  graceful drain all apply), and results settle through the same
  CRC-framed journal, so a chaos-interrupted server resumes to the same
  content hashes a direct-engine run would.
* **Backpressure over buffering** — a bounded queue and per-client
  quotas turn overload into HTTP 429 (:class:`~repro.errors.
  ServiceBusyError` client-side), never an unbounded backlog.

Serve with ``repro serve``; point ``repro sweep --server URL`` (or
:func:`run_jobs`) at it.
"""

from repro.service.client import ServiceClient, run_jobs
from repro.service.protocol import (
    PRESETS,
    SUBMISSION_FIELDS,
    job_from_submission,
    result_from_record,
    submission_from_job,
)
from repro.service.server import (
    EngineEventLog,
    ServerHandle,
    ServicePolicy,
    SimulationServer,
    serve_forever,
    start_server_thread,
)
from repro.service.store import ResultStore

__all__ = [
    "EngineEventLog",
    "PRESETS",
    "ResultStore",
    "SUBMISSION_FIELDS",
    "ServerHandle",
    "ServiceClient",
    "ServicePolicy",
    "SimulationServer",
    "job_from_submission",
    "result_from_record",
    "run_jobs",
    "serve_forever",
    "start_server_thread",
    "submission_from_job",
]
