"""Content-addressed result store backed by the v2 checkpoint journal.

The store is the service's cache layer: an in-memory map of job key →
journal-shaped record, loaded from (and persisted through) the same
CRC-framed JSONL journal the sweep engine checkpoints into.  The engine
remains the single writer — every terminal outcome it journals is
absorbed here from the batch report — so the durable file and the
served cache cannot disagree about what a record *says*, only about
whether a torn write made it durable (in which case the resume path
re-runs that one cell, exactly as a direct-engine chaos run would).

Serving policy mirrors the engine's resume semantics precisely:

* ``ok`` records are served from the store, never re-executed;
* ``failed`` records with the poison flag (quarantined worker-killers)
  are served as failures — resubmission does not burn another worker;
* other ``failed`` records are *not* served: resubmitting a transient
  failure re-executes it, the same way ``--resume`` retries failed
  journal records.
"""

from __future__ import annotations

import threading
import warnings
from typing import Dict, Optional

from repro.experiments.engine.checkpoint import (
    CheckpointJournal,
    JournalSalvage,
    journal_record,
    record_content_hash,
)
from repro.experiments.engine.executor import SweepReport


class ResultStore:
    """Shared content-addressed cache of settled job records."""

    def __init__(self, journal: CheckpointJournal):
        self.journal = journal
        self._records: Dict[str, dict] = {}
        self._lock = threading.Lock()
        #: what the last journal load salvaged (None before first load)
        self.salvage: Optional[JournalSalvage] = None
        self.load()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def load(self) -> JournalSalvage:
        """(Re)load the journal into memory, salvaging any damage."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            records, salvage = self.journal.load_with_stats()
        with self._lock:
            self._records = records
            self.salvage = salvage
        return salvage

    def get(self, key: str) -> Optional[dict]:
        """The settled record for *key*, or None."""
        with self._lock:
            return self._records.get(key)

    @staticmethod
    def serves(record: Optional[dict], retry_poisoned: bool = False) -> bool:
        """Should this record be served instead of re-executing the job?

        The exact criterion the engine's resume path uses: successes
        always; poisoned failures unless explicitly re-admitted;
        ordinary failures never (they re-run).
        """
        if not record:
            return False
        if record.get("status") == "ok":
            return True
        error = record.get("error") or {}
        return bool(error.get("poison")) and not retry_poisoned

    def absorb(self, report: SweepReport) -> int:
        """Fold a batch report's terminal outcomes into the cache.

        The engine already journaled each outcome (modulo injected or
        real write faults); absorbing from the report keeps the served
        cache authoritative even when a journal write was lost — the
        loss surfaces only on restart, as a re-execution.
        """
        absorbed = 0
        with self._lock:
            for outcome in report:
                self._records[outcome.job.key()] = journal_record(outcome)
                absorbed += 1
        return absorbed

    def content_hashes(self) -> Dict[str, str]:
        """key → content hash of its record (the chaos-equality surface)."""
        with self._lock:
            return {
                key: record_content_hash(record)
                for key, record in self._records.items()
            }

    def policy_counts(self) -> Dict[str, int]:
        """Throttling policy → number of stored records it governed.

        Records from journals written before the policy subsystem carry
        no ``policy`` field and count under ``"null"`` — the same
        pre-feature-is-explicit convention the export columns use.
        """
        counts: Dict[str, int] = {}
        with self._lock:
            for record in self._records.values():
                policy = record.get("policy") or "null"
                counts[policy] = counts.get(policy, 0) + 1
        return counts
