"""Command-line interface: run paper experiments without writing Python.

Examples::

    python -m repro list
    python -m repro run health ecdp+throttle
    python -m repro compare mst
    python -m repro sweep --mechanisms cdp ecdp+throttle --benchmarks mcf mst
    python -m repro sweep --jobs 4 --timeout 300 --resume
    python -m repro profile mst --top 12
    python -m repro multicore xalancbmk astar --mechanism ecdp+throttle
    python -m repro trace mst ecdp+throttle --format chrome --out trace.json
    python -m repro sweep --inject-faults plan.json --resume
    python -m repro serve --port 8713 --jobs 4
    python -m repro sweep --server http://127.0.0.1:8713
    python -m repro sweep --backend subprocess --jobs 4
    python -m repro sweep --backend remote --hosts hosts.toml --jobs 8
    python -m repro worker --ping
    python -m repro journal verify .repro-checkpoints/sweep-abc.jsonl
    python -m repro cost

Exit codes: 0 — success; 1 — the sweep completed but some jobs failed
(partial results were reported and checkpointed); 2 — usage or
configuration error (unknown benchmark/mechanism, invalid config);
130 — the sweep was interrupted (SIGTERM/SIGINT drain or an injected
abort) after checkpointing in-flight work; rerun with ``--resume``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.config import ENGINES, SystemConfig
from repro.policy import POLICY_NAMES, train_policy
from repro.policy.qlearn import N_STATES as Q_N_STATES
from repro.cost.hardware import baseline_costs, proposal_cost
from repro.errors import ReproError, UsageError
from repro.experiments.configs import MECHANISMS, get_mechanism
from repro.experiments.engine import (
    BACKEND_NAMES,
    CheckpointJournal,
    ExecutionEngine,
    FailedResult,
    FaultPlan,
    GracefulDrain,
    Job,
    JobFailure,
    QuarantinePolicy,
    RetryPolicy,
    WatchdogPolicy,
    create_backend,
    is_failed,
)
from repro.experiments.metrics import (
    geomean,
    hmean_speedup,
    total_bus_traffic_per_ki,
    weighted_speedup,
)
from repro.experiments.export import result_record, write_csv, write_json
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    profile_benchmark,
    run_benchmark,
    run_multicore,
)
from repro.service import (
    ServiceClient,
    ServicePolicy,
    SimulationServer,
    run_jobs,
    serve_forever,
)
from repro.telemetry import (
    EventTracer,
    Telemetry,
    TelemetryConfig,
    series_path,
    validate_chrome_trace,
    write_chrome_trace,
    write_events_csv,
    write_events_jsonl,
    write_series_jsonl,
)
from repro.workloads.registry import (
    all_names,
    get_workload,
    non_pointer_names,
    pointer_intensive_names,
)


def _config(args) -> SystemConfig:
    config = SystemConfig.paper() if args.paper else SystemConfig.scaled()
    engine = getattr(args, "engine", None)
    if engine is not None:
        config = config.with_overrides(engine=engine)
    policy_file = getattr(args, "policy_file", None)
    if policy_file is not None:
        # a payload written by `repro train-policy --out`: carries both
        # the policy name and the params string (with the trained table)
        try:
            with open(policy_file) as stream:
                payload = json.load(stream)
        except (OSError, ValueError) as error:
            raise UsageError(f"cannot load --policy-file: {error}")
        if "policy" not in payload or "policy_params" not in payload:
            raise UsageError(
                f"--policy-file {policy_file} is not a train-policy "
                "payload (missing policy/policy_params)"
            )
        config = config.with_overrides(
            throttle_policy=payload["policy"],
            policy_params=payload["policy_params"],
        )
    policy = getattr(args, "policy", None)
    if policy is not None:
        config = config.with_overrides(throttle_policy=policy)
    policy_params = getattr(args, "policy_params", None)
    if policy_params is not None:
        config = config.with_overrides(policy_params=policy_params)
    return config.validate()


def _result_row(name: str, result, baseline=None) -> List[str]:
    delta = (
        f"{(result.ipc / baseline.ipc - 1) * 100:+.1f}%" if baseline else "-"
    )
    return [
        name,
        f"{result.ipc:.3f}",
        delta,
        f"{result.bpki:.1f}",
        f"{result.accuracy('cdp') * 100:.0f}%",
        f"{result.coverage('cdp') * 100:.0f}%",
        f"{result.accuracy('stream') * 100:.0f}%",
        f"{result.coverage('stream') * 100:.0f}%",
    ]


RESULT_HEADERS = [
    "", "IPC", "dIPC", "BPKI",
    "cdp acc", "cdp cov", "stream acc", "stream cov",
]


def cmd_list(args) -> int:
    print("pointer-intensive benchmarks (the paper's evaluation set):")
    print("  " + " ".join(pointer_intensive_names()))
    print("non-pointer-intensive benchmarks (Section 6.7 / multicore mixes):")
    print("  " + " ".join(non_pointer_names()))
    print("mechanisms:")
    for name, mech in MECHANISMS.items():
        parts = []
        if mech.stream:
            parts.append("stream")
        if mech.correlation != "none":
            parts.append(mech.correlation)
        if mech.cdp:
            parts.append("cdp" if mech.hints == "none" else f"cdp[{mech.hints}]")
        if mech.hw_filter:
            parts.append("hwfilter")
        if mech.oracle_lds:
            parts.append("oracle")
        throttle = "" if mech.throttle == "none" else f" / {mech.throttle}"
        print(f"  {name:20s} {'+'.join(parts) or '(none)'}{throttle}")
    return 0


def cmd_run(args) -> int:
    config = _config(args)
    result = run_benchmark(
        args.benchmark, args.mechanism, config, input_set=args.input_set
    )
    baseline = None
    if args.mechanism != "baseline":
        baseline = run_benchmark(
            args.benchmark, "baseline", config, input_set=args.input_set
        )
    print(
        format_table(
            RESULT_HEADERS,
            [_result_row(args.mechanism, result, baseline)],
            title=f"{args.benchmark} ({args.input_set})",
        )
    )
    return 0


def cmd_compare(args) -> int:
    config = _config(args)
    mechanisms = args.mechanisms or [
        "no-prefetch", "baseline", "cdp", "ecdp",
        "cdp+throttle", "ecdp+throttle", "oracle-lds",
    ]
    baseline = run_benchmark(args.benchmark, "baseline", config,
                             input_set=args.input_set)
    rows = []
    for mechanism in mechanisms:
        result = run_benchmark(args.benchmark, mechanism, config,
                               input_set=args.input_set)
        rows.append(_result_row(mechanism, result, baseline))
    print(
        format_table(
            RESULT_HEADERS, rows,
            title=f"{args.benchmark} ({args.input_set})",
        )
    )
    return 0


def _sweep_name(benchmarks, mechanisms, input_set: str, paper: bool) -> str:
    """Deterministic journal name so plain re-invocations find the file."""
    payload = repr((sorted(benchmarks), sorted(mechanisms), input_set, paper))
    return "sweep-" + hashlib.sha256(payload.encode()).hexdigest()[:12]


def cmd_sweep(args) -> int:
    if args.smoke:
        # tiny end-to-end exercise of the engine (CI's 60-second budget)
        args.benchmarks = args.benchmarks or ["mst", "bisort"]
        args.mechanisms = args.mechanisms or ["cdp"]
        args.input_set = "test"
        args.timeout = args.timeout or 50.0
    problems = {}
    if args.jobs < 1:
        problems["--jobs"] = f"must be >= 1, got {args.jobs}"
    if args.timeout is not None and args.timeout <= 0:
        problems["--timeout"] = f"must be positive, got {args.timeout}"
    if args.retries < 0:
        problems["--retries"] = f"must be >= 0, got {args.retries}"
    if args.no_progress_timeout is not None and args.no_progress_timeout <= 0:
        problems["--no-progress-timeout"] = (
            f"must be positive, got {args.no_progress_timeout}"
        )
    if args.max_crashes < 0:
        problems["--max-crashes"] = f"must be >= 0, got {args.max_crashes}"
    if problems:
        details = "; ".join(f"{k}: {v}" for k, v in sorted(problems.items()))
        raise UsageError(f"invalid sweep options: {details}")
    config = _config(args)
    benchmarks = list(args.benchmarks or pointer_intensive_names())
    mechanisms = list(args.mechanisms or ["cdp", "ecdp", "ecdp+throttle"])
    all_mechanisms = ["baseline"] + [m for m in mechanisms if m != "baseline"]
    # fail fast (exit 2) on unknown names before any simulation starts
    for mechanism in all_mechanisms:
        get_mechanism(mechanism)
    for benchmark in benchmarks:
        get_workload(benchmark)

    sweep_name = args.sweep_name or _sweep_name(
        benchmarks, all_mechanisms, args.input_set, args.paper
    )
    journal = None
    telemetry_dir = None
    tracer = None
    if args.server:
        # the engine — and with it fault injection, telemetry recording,
        # and the checkpoint journal — lives in the server process
        if args.backend != "local" or args.hosts:
            raise UsageError(
                "--backend/--hosts configure the engine, which runs "
                "server-side; start the server with "
                "`repro serve --backend ... --hosts HOSTS` instead"
            )
        if args.inject_faults:
            raise UsageError(
                "--inject-faults configures the engine, which runs "
                "server-side; start the server with "
                "`repro serve --inject-faults PLAN.json` instead"
            )
        if args.telemetry:
            print(
                "note: telemetry recording is a server-side choice "
                "(`repro serve --telemetry`); fetch recorded series "
                "via GET /jobs/<key>/series",
                file=sys.stderr,
            )
    else:
        journal = CheckpointJournal.for_sweep(sweep_name,
                                              args.checkpoint_dir)
        if not args.resume:
            journal.clear()
        if args.telemetry:
            telemetry_dir = str(
                Path(args.checkpoint_dir) / f"{sweep_name}-series"
            )
            tracer = EventTracer()
    fault_plan = None
    if args.inject_faults:
        fault_plan = FaultPlan.load(args.inject_faults)
        print(
            f"chaos: injecting {len(fault_plan)} fault(s) "
            f"from {args.inject_faults}",
            file=sys.stderr,
        )
    watchdog = None
    if args.no_progress_timeout is not None:
        watchdog = WatchdogPolicy(
            no_progress_timeout=args.no_progress_timeout
        )
    jobs = [
        Job(benchmark, mechanism, config, input_set=args.input_set,
            telemetry_dir=telemetry_dir)
        for mechanism in all_mechanisms
        for benchmark in benchmarks
    ]
    done = [0]

    def progress(outcome) -> None:
        done[0] += 1
        state = "resumed" if outcome.resumed else outcome.status
        detail = "" if outcome.ok else f" [{outcome.failure.reason}]"
        print(
            f"[{done[0]}/{len(jobs)}] {outcome.job.label}: {state}"
            f" ({outcome.attempts} attempt(s), {outcome.duration:.1f}s)"
            f"{detail}",
            file=sys.stderr,
        )

    if args.server:
        client = ServiceClient(args.server)
        # a per-job wall clock is the server's job; the client bound is
        # on the whole sweep, scaled so slow cells don't trip it
        deadline = (args.timeout or 300.0) * max(1, len(jobs)) + 60.0
        report = run_jobs(
            client, jobs, progress=progress, timeout=deadline
        )
    else:
        engine = ExecutionEngine(
            jobs=args.jobs,
            timeout=args.timeout,
            retry=RetryPolicy(max_attempts=args.retries + 1),
            checkpoint=journal,
            watchdog=watchdog,
            quarantine=QuarantinePolicy(max_crashes=args.max_crashes),
            fault_plan=fault_plan,
            tracer=tracer,
            backend=create_backend(args.backend, hosts=args.hosts),
        )
        try:
            with GracefulDrain() as drain:
                report = engine.run(
                    jobs,
                    resume=args.resume,
                    progress=progress,
                    drain=drain,
                    retry_poisoned=args.retry_poisoned,
                )
        finally:
            engine.close()
    cells = report.by_cell()
    _not_run = JobFailure(
        "NotRun", "sweep interrupted before this cell ran", transient=True
    )

    def result_of(benchmark: str, mechanism: str):
        outcome = cells.get((benchmark, mechanism))
        if outcome is None:  # abandoned by a drain/abort before launch
            return FailedResult(_not_run)
        return (
            outcome.result if outcome.ok else FailedResult(outcome.failure)
        )

    def cell_retry_schedule(benchmark: str, mechanism: str):
        """(attempts, backoff seconds) for the export row, or nulls."""
        outcome = cells.get((benchmark, mechanism))
        if outcome is None:
            return None, None
        return outcome.attempts, round(outcome.backoff_total, 6)

    def cell_provenance(benchmark: str, mechanism: str):
        """(executor, host, queue seconds) for the export row, or nulls.

        Stays null for cells resumed from journals written before
        backends existed, and for FAILED cells (the export layer drops
        provenance on failures regardless).
        """
        outcome = cells.get((benchmark, mechanism))
        if outcome is None:
            return None, None, None
        return outcome.executor, outcome.host, outcome.queue_seconds

    def cell_series_file(benchmark: str, mechanism: str):
        """Recompute the worker's deterministic series path (if recorded)."""
        if telemetry_dir is None:
            return None
        path = series_path(telemetry_dir, benchmark, mechanism,
                           args.input_set)
        return str(path) if path.exists() else None

    def cell_policy(benchmark: str, mechanism: str):
        """(policy, params) from the cell's own job config, or nulls.

        Read from the job rather than the sweep config so rows resumed
        from journals predating the policy subsystem export null (their
        dict-shaped configs carry no throttle_policy), mirroring the
        provenance columns.
        """
        outcome = cells.get((benchmark, mechanism))
        cell_config = outcome.job.config if outcome is not None else config
        policy = getattr(cell_config, "throttle_policy", None)
        if policy is None:
            return None, None
        return policy, getattr(cell_config, "policy_params", "")

    baselines = {b: result_of(b, "baseline") for b in benchmarks}
    export_records = []
    rows = []
    for bench in benchmarks:
        cells_row = [bench]
        base = baselines[bench]
        attempts, backoff = cell_retry_schedule(bench, "baseline")
        executor, host, queued = cell_provenance(bench, "baseline")
        policy, policy_params = cell_policy(bench, "baseline")
        export_records.append(result_record(
            bench, "baseline", base,
            series_file=cell_series_file(bench, "baseline"),
            attempts=attempts, backoff_seconds=backoff,
            executor=executor, host=host, queue_seconds=queued,
            policy=policy, policy_params=policy_params,
        ))
        for mechanism in mechanisms:
            result = result_of(bench, mechanism)
            attempts, backoff = cell_retry_schedule(bench, mechanism)
            executor, host, queued = cell_provenance(bench, mechanism)
            policy, policy_params = cell_policy(bench, mechanism)
            export_records.append(result_record(
                bench, mechanism, result,
                series_file=cell_series_file(bench, mechanism),
                attempts=attempts, backoff_seconds=backoff,
                executor=executor, host=host, queue_seconds=queued,
                policy=policy, policy_params=policy_params,
            ))
            if is_failed(result) or is_failed(base):
                cells_row.append(str(result if is_failed(result) else base))
                continue
            bpki = (result.bpki / base.bpki - 1) * 100 if base.bpki else 0.0
            cells_row.append(
                f"{(result.ipc / base.ipc - 1) * 100:+.1f}/{bpki:+.0f}"
            )
        rows.append(cells_row)
    summary = ["gmean"]
    for mechanism in mechanisms:
        ratios = [
            result_of(b, mechanism).ipc / baselines[b].ipc
            for b in benchmarks
            if not is_failed(result_of(b, mechanism))
            and not is_failed(baselines[b])
            and baselines[b].ipc
        ]
        summary.append(
            f"{(geomean(ratios) - 1) * 100:+.1f}%" if ratios else "FAILED"
        )
    rows.append(summary)
    print(
        format_table(
            ["benchmark"] + [f"{m} dIPC%/dBPKI%" for m in mechanisms],
            rows,
            title="sweep vs stream baseline",
        )
    )
    where = (
        f"service: {client.base_url}" if args.server
        else f"checkpoint: {journal.path}"
    )
    print(
        f"sweep: {len(jobs)} jobs, {len(report.ok)} ok, "
        f"{len(report.failures)} failed, {len(report.resumed)} resumed "
        f"({where})"
    )
    if report.salvage is not None and not report.salvage.clean:
        print(
            f"journal salvage: {report.salvage.summary()} — skipped "
            "records re-ran this pass",
            file=sys.stderr,
        )
    if report.journal_errors:
        print(
            f"WARNING: {report.journal_errors} checkpoint write(s) failed; "
            "those cells will re-run on --resume",
            file=sys.stderr,
        )
    for failure in report.failures:
        quarantined = failure.failure.poison
        label = "QUARANTINED" if quarantined else "FAILED"
        hint = " (re-admit with --retry-poisoned)" if quarantined else ""
        print(
            f"{label} {failure.job.label}: {failure.failure.reason} "
            f"({failure.attempts} attempt(s), "
            f"{failure.backoff_total:.1f}s backoff){hint}",
            file=sys.stderr,
        )
    if tracer is not None and tracer.appended:
        events_path = (
            Path(args.checkpoint_dir) / f"{sweep_name}-engine.events.jsonl"
        )
        events_path.parent.mkdir(parents=True, exist_ok=True)
        with open(events_path, "w") as stream:
            for ts, kind, name, addr, dur, ev_args in tracer.snapshot():
                stream.write(json.dumps(
                    {"core": "engine", "ts": ts, "kind": kind, "name": name,
                     "addr": addr, "dur": dur, "args": ev_args},
                    sort_keys=True,
                ) + "\n")
        print(f"wrote {tracer.appended} engine events to {events_path}")
    if report.interrupted:
        print(
            "sweep interrupted — in-flight work was checkpointed; "
            "rerun with --resume to finish",
            file=sys.stderr,
        )
    if args.export:
        if args.export.endswith(".json"):
            write_json(args.export, export_records)
        else:
            write_csv(args.export, export_records)
        print(f"wrote {len(export_records)} records to {args.export}")
    return report.exit_code


def cmd_serve(args) -> int:
    """Run the simulation service until SIGTERM/SIGINT drains it."""
    problems = {}
    if args.jobs < 1:
        problems["--jobs"] = f"must be >= 1, got {args.jobs}"
    if args.timeout is not None and args.timeout <= 0:
        problems["--timeout"] = f"must be positive, got {args.timeout}"
    if args.retries < 0:
        problems["--retries"] = f"must be >= 0, got {args.retries}"
    if args.no_progress_timeout is not None and args.no_progress_timeout <= 0:
        problems["--no-progress-timeout"] = (
            f"must be positive, got {args.no_progress_timeout}"
        )
    if args.max_crashes < 0:
        problems["--max-crashes"] = f"must be >= 0, got {args.max_crashes}"
    if args.max_queue < 1:
        problems["--max-queue"] = f"must be >= 1, got {args.max_queue}"
    if args.max_client_pending < 1:
        problems["--max-client-pending"] = (
            f"must be >= 1, got {args.max_client_pending}"
        )
    if args.batch_window < 0:
        problems["--batch-window"] = (
            f"must be >= 0, got {args.batch_window}"
        )
    if args.max_batch < 1:
        problems["--max-batch"] = f"must be >= 1, got {args.max_batch}"
    if problems:
        details = "; ".join(f"{k}: {v}" for k, v in sorted(problems.items()))
        raise UsageError(f"invalid serve options: {details}")
    # the store journal is never cleared: persistence across server
    # lives is the whole point of the content-addressed cache
    journal = CheckpointJournal.for_sweep(args.store, args.checkpoint_dir)
    telemetry_dir = None
    events_path = None
    if args.telemetry:
        telemetry_dir = str(
            Path(args.checkpoint_dir) / f"{args.store}-series"
        )
        events_path = str(
            Path(args.checkpoint_dir)
            / f"{args.store}-engine.events.jsonl"
        )
    fault_plan = None
    if args.inject_faults:
        fault_plan = FaultPlan.load(args.inject_faults)
        print(
            f"chaos: injecting {len(fault_plan)} fault(s) "
            f"from {args.inject_faults}",
            file=sys.stderr,
        )
    watchdog = None
    if args.no_progress_timeout is not None:
        watchdog = WatchdogPolicy(
            no_progress_timeout=args.no_progress_timeout
        )
    engine = ExecutionEngine(
        jobs=args.jobs,
        timeout=args.timeout,
        retry=RetryPolicy(max_attempts=args.retries + 1),
        checkpoint=journal,
        watchdog=watchdog,
        quarantine=QuarantinePolicy(max_crashes=args.max_crashes),
        fault_plan=fault_plan,
        backend=create_backend(args.backend, hosts=args.hosts),
    )
    server = SimulationServer(
        engine,
        policy=ServicePolicy(
            max_queue=args.max_queue,
            max_pending_per_client=args.max_client_pending,
            batch_window=args.batch_window,
            max_batch=args.max_batch,
        ),
        host=args.host,
        port=args.port,
        telemetry_dir=telemetry_dir,
        events_path=events_path,
    )
    try:
        return serve_forever(server)
    finally:
        engine.close()


def cmd_worker(args) -> int:
    """Speak the stdio job protocol — or self-check that this host can."""
    if args.serve_stdio:
        from repro.experiments.engine.worker import serve_stdio

        return serve_stdio()
    # --ping: spawn one worker exactly the way a backend would and
    # round-trip a health check — the one-command install check for a
    # prospective remote host
    from repro.experiments.engine.backends.stdio import (
        StdioTransport,
        child_environment,
        worker_argv,
    )

    transport = StdioTransport(worker_argv(), env=child_environment())
    try:
        pong = transport.ping(args.timeout)
    finally:
        transport.shutdown()
    info = {key: pong.get(key) for key in ("host", "pid", "python")}
    print(json.dumps(info, sort_keys=True))
    return 0


def _journal_at(path: str) -> CheckpointJournal:
    journal = CheckpointJournal(path)
    if not journal.exists():
        raise UsageError(f"no checkpoint journal at {path}")
    return journal


def cmd_journal_verify(args) -> int:
    """Integrity-check a journal; exit 1 if any line failed to load."""
    journal = _journal_at(args.path)
    salvage = journal.verify()
    print(f"{args.path}: {salvage.summary()}")
    if salvage.bad_lines:
        where = ", ".join(str(n) for n in salvage.bad_lines)
        print(f"bad line(s): {where}", file=sys.stderr)
    if not salvage.clean:
        print(
            "damaged records will re-run on --resume; "
            "'repro journal compact' rewrites the file without them",
            file=sys.stderr,
        )
    return 0 if salvage.clean else 1


def cmd_journal_compact(args) -> int:
    """Rewrite a journal to one checksummed record per job."""
    journal = _journal_at(args.path)
    kept, dropped, salvage = journal.compact()
    print(
        f"{args.path}: kept {kept} record(s), dropped {dropped} line(s) "
        f"({salvage.summary()})"
    )
    return 0


def cmd_profile(args) -> int:
    config = _config(args)
    profile = profile_benchmark(args.benchmark, config,
                                input_set=args.input_set)
    ranked = sorted(profile.items(), key=lambda kv: -kv[1].issued)
    rows = [
        (
            hex(pc),
            f"{delta:+d}",
            stats.issued,
            stats.useful,
            f"{stats.usefulness * 100:.0f}%",
            "beneficial" if stats.is_beneficial else "harmful",
        )
        for (pc, delta), stats in ranked[: args.top]
    ]
    print(
        format_table(
            ["load pc", "offset", "issued", "useful", "usefulness", "class"],
            rows,
            title=(
                f"{args.benchmark} pointer groups "
                f"({len(profile)} total, "
                f"{len(profile.beneficial_keys())} beneficial)"
            ),
        )
    )
    return 0


def cmd_multicore(args) -> int:
    config = _config(args)
    alone = [
        run_benchmark(b, "baseline", config, input_set=args.input_set)
        for b in args.benchmarks
    ]
    rows = []
    for mechanism in ("baseline", args.mechanism):
        shared = run_multicore(args.benchmarks, mechanism, config,
                               input_set=args.input_set)
        rows.append(
            (
                mechanism,
                f"{weighted_speedup(shared, alone):.3f}",
                f"{hmean_speedup(shared, alone):.3f}",
                f"{total_bus_traffic_per_ki(shared):.1f}",
            )
        )
    print(
        format_table(
            ["mechanism", "weighted speedup", "hmean speedup", "bus/KI"],
            rows,
            title=f"{len(args.benchmarks)}-core: {' + '.join(args.benchmarks)}",
        )
    )
    return 0


#: trace output format -> (writer, default file suffix)
_TRACE_FORMATS = {
    "chrome": (write_chrome_trace, ".trace.json"),
    "jsonl": (write_events_jsonl, ".events.jsonl"),
    "csv": (write_events_csv, ".events.csv"),
}


def cmd_trace(args) -> int:
    """Run one cell with full telemetry and export the event trace."""
    config = _config(args)
    telemetry = Telemetry(
        TelemetryConfig(
            series=True,
            series_max_points=args.max_points,
            trace=True,
            trace_capacity=args.capacity,
        )
    )
    result = run_benchmark(
        args.benchmark, args.mechanism, config,
        input_set=args.input_set, telemetry=telemetry,
    )
    writer, suffix = _TRACE_FORMATS[args.format]
    out = args.out or f"{args.benchmark}-{args.mechanism}{suffix}"
    written = writer(telemetry, out)
    if args.format == "chrome":
        problems = validate_chrome_trace(out)
        if problems:
            for problem in problems:
                print(f"invalid trace: {problem}", file=sys.stderr)
            return 1
    if args.series:
        rows = write_series_jsonl(telemetry, args.series)
        print(f"wrote {rows} interval samples to {args.series}")

    stream = telemetry.stream("core0")
    summary = stream.summary()
    series = summary.get("series", {})
    events = summary.get("events", {})
    rows = [
        ("ipc", f"{result.ipc:.3f}"),
        ("bpki", f"{result.bpki:.1f}"),
        ("intervals completed", result.intervals_completed),
        ("series samples (stride)",
         f"{series.get('samples', 0)} ({series.get('stride', 1)})"),
        ("throttle decisions", len(stream.trajectory)),
        ("events recorded", events.get("appended", 0)),
        ("events retained", events.get("retained", 0)),
        ("events dropped (ring full)", events.get("dropped", 0)),
    ]
    for kind, count in sorted(events.get("by_kind", {}).items()):
        rows.append((f"  {kind}", count))
    print(
        format_table(
            ["metric", "value"], rows,
            title=f"trace {args.benchmark}/{args.mechanism} ({args.input_set})",
        )
    )
    print(f"wrote {written} events to {out}")
    if args.format == "chrome":
        print("load it in chrome://tracing or https://ui.perfetto.dev")
    return 0


def cmd_cost(args) -> int:
    config = SystemConfig.paper() if args.paper else SystemConfig.scaled()
    report = proposal_cost(config)
    rows = [(line.description, line.bits) for line in report.lines]
    rows.append(("total", report.total_bits))
    print(
        format_table(
            ["component", "bits"], rows,
            title="hardware cost (Table 7 accounting)",
        )
    )
    print(f"total: {report.total_kilobytes:.2f} KB")
    print()
    comparison = sorted(baseline_costs(config).items(), key=lambda kv: kv[1])
    print(
        format_table(
            ["prefetcher", "KB"],
            [(n, f"{kb:.2f}") for n, kb in comparison],
            title="storage comparison (Sections 6.3/7.3)",
        )
    )
    return 0


def cmd_train_policy(args) -> int:
    payload = train_policy(
        args.series,
        policy=args.policy,
        alpha=args.alpha,
        gamma=args.gamma,
        epsilon=args.epsilon,
        penalty=args.penalty,
        epochs=args.epochs,
        seed=args.seed,
    )
    print(
        f"trained {payload['policy']} on {len(payload['files'])} series "
        f"file(s): {payload['rows']} samples, "
        f"{payload['transitions']} transitions, "
        f"{payload['states_visited']}/{Q_N_STATES} states visited",
        file=sys.stderr,
    )
    actions = payload["greedy_actions"]
    print(
        "greedy actions over visited states: "
        + ", ".join(f"{name}={actions[name]}" for name in actions),
        file=sys.stderr,
    )
    if args.out:
        with open(args.out, "w") as stream:
            json.dump(payload, stream, indent=2)
            stream.write("\n")
        print(
            f"wrote {args.out}; run it with "
            f"`repro sweep --policy-file {args.out}`",
            file=sys.stderr,
        )
    else:
        # params on stdout so shells can capture them directly
        print(payload["policy_params"])
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "HPCA 2009 reproduction: bandwidth-efficient LDS prefetching "
            "in hybrid prefetching systems"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--paper", action="store_true",
                       help="use the paper-scale Table 5 configuration")
        p.add_argument("--input-set", default="ref",
                       choices=["ref", "train", "test"])
        p.add_argument("--engine", default=None, choices=list(ENGINES),
                       help="simulation engine (default: the config's; "
                            "'batch' needs the [perf] extra)")
        p.add_argument("--policy", default=None, choices=list(POLICY_NAMES),
                       help="throttling policy for coordinated mechanisms "
                            "(default: table3, the paper's heuristic)")
        p.add_argument("--policy-params", default=None, metavar="K=V,K=V",
                       help="policy parameters, e.g. 'level=1' or "
                            "'epsilon=0.05,seed=7'")
        p.add_argument("--policy-file", default=None, metavar="POLICY.json",
                       help="load policy + params from a `repro "
                            "train-policy --out` payload")
        p.add_argument("--debug", action="store_true",
                       help="print full tracebacks instead of one-line errors")

    p = sub.add_parser("list", help="list benchmarks and mechanisms")
    p.set_defaults(func=cmd_list)

    p = sub.add_parser("run", help="run one benchmark under one mechanism")
    p.add_argument("benchmark")
    p.add_argument("mechanism")
    common(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("compare", help="one benchmark across mechanisms")
    p.add_argument("benchmark")
    p.add_argument("--mechanisms", nargs="+")
    common(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "sweep",
        help="benchmark x mechanism table (crash-isolated, resumable)",
    )
    p.add_argument("--benchmarks", nargs="+")
    p.add_argument("--mechanisms", nargs="+")
    p.add_argument("--export", metavar="FILE.csv|FILE.json",
                   help="dump raw per-run metrics")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes to run in parallel (default 1)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="wall-clock limit per job (default: none)")
    p.add_argument("--retries", type=int, default=2, metavar="N",
                   help="retries per job for transient failures (default 2)")
    p.add_argument("--resume", action="store_true",
                   help="skip jobs already completed in the checkpoint "
                        "journal; re-run only missing/failed ones")
    p.add_argument("--checkpoint-dir", default=".repro-checkpoints",
                   metavar="DIR",
                   help="where sweep journals live (default "
                        ".repro-checkpoints/)")
    p.add_argument("--sweep-name", default=None, metavar="NAME",
                   help="journal name (default: hash of the sweep matrix)")
    p.add_argument("--smoke", action="store_true",
                   help="tiny fixed sweep exercising the engine end to end "
                        "(CI smoke test)")
    p.add_argument("--telemetry", action="store_true",
                   help="record per-interval telemetry series for every "
                        "cell (written beside the checkpoint journal; "
                        "export rows gain a series_file pointer) plus the "
                        "engine's own retry/quarantine/watchdog event "
                        "trace (<sweep>-engine.events.jsonl)")
    p.add_argument("--no-progress-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="watchdog: kill a worker that sends no heartbeat "
                        "for this long (distinguishes hung workers from "
                        "slow ones; default: off)")
    p.add_argument("--max-crashes", type=int, default=3, metavar="N",
                   help="quarantine a job after it crashes its worker N "
                        "times, counted across resumes (0 disables; "
                        "default 3)")
    p.add_argument("--retry-poisoned", action="store_true",
                   help="re-admit quarantined jobs with a fresh crash "
                        "budget (use with --resume)")
    p.add_argument("--inject-faults", metavar="PLAN.json", default=None,
                   help="chaos testing: deterministically inject the "
                        "worker/journal/engine faults described in "
                        "PLAN.json (see FaultPlan)")
    p.add_argument("--server", metavar="URL", default=None,
                   help="run the sweep through a `repro serve` instance "
                        "instead of a local engine; identical cells are "
                        "served from the server's content-addressed "
                        "result cache without re-execution")
    p.add_argument("--backend", default="local", choices=list(BACKEND_NAMES),
                   help="executor backend: 'local' fork-pool workers "
                        "(default), 'subprocess' isolated worker "
                        "processes over pipes, 'remote' workers on the "
                        "hosts in --hosts; every backend shares the "
                        "same checkpoint journal, so a sweep can resume "
                        "on a different backend than it started on")
    p.add_argument("--hosts", metavar="FILE", default=None,
                   help="host inventory (TOML on Python 3.11+, or JSON) "
                        "for --backend remote: per-host command, python, "
                        "capacity, tags")
    common(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "serve",
        help="run the sweep engine as an HTTP job service with a "
             "content-addressed result cache",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8713,
                   help="listening port (default 8713; 0 picks a free one)")
    p.add_argument("--store", default="service", metavar="NAME",
                   help="result-store journal name under the checkpoint "
                        "dir (default 'service'); never cleared — cached "
                        "results survive server restarts")
    p.add_argument("--checkpoint-dir", default=".repro-checkpoints",
                   metavar="DIR",
                   help="where the store journal lives (default "
                        ".repro-checkpoints/)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes per batch (default 1)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="wall-clock limit per job (default: none)")
    p.add_argument("--retries", type=int, default=2, metavar="N",
                   help="retries per job for transient failures (default 2)")
    p.add_argument("--no-progress-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="watchdog: kill a worker that sends no heartbeat "
                        "for this long (default: off)")
    p.add_argument("--max-crashes", type=int, default=3, metavar="N",
                   help="quarantine a job after N worker crashes "
                        "(0 disables; default 3)")
    p.add_argument("--max-queue", type=int, default=64, metavar="N",
                   help="queued jobs before submissions get 429 "
                        "(default 64)")
    p.add_argument("--max-client-pending", type=int, default=16,
                   metavar="N",
                   help="pending jobs one client may have before 429 "
                        "(default 16)")
    p.add_argument("--batch-window", type=float, default=0.05,
                   metavar="SECONDS",
                   help="how long to gather co-submitted jobs into one "
                        "engine batch (default 0.05)")
    p.add_argument("--max-batch", type=int, default=32, metavar="N",
                   help="most jobs handed to one engine pass (default 32)")
    p.add_argument("--telemetry", action="store_true",
                   help="record per-interval series for executed cells "
                        "(served at GET /jobs/<key>/series) and dump the "
                        "engine/service event log at shutdown")
    p.add_argument("--inject-faults", metavar="PLAN.json", default=None,
                   help="chaos testing: inject worker/journal/engine "
                        "faults into the service's engine")
    p.add_argument("--backend", default="local", choices=list(BACKEND_NAMES),
                   help="executor backend the service's engine dispatches "
                        "through (default local)")
    p.add_argument("--hosts", metavar="FILE", default=None,
                   help="host inventory file for --backend remote")
    p.add_argument("--debug", action="store_true",
                   help="print full tracebacks instead of one-line errors")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "worker",
        help="run as an executor-backend worker (used by the subprocess "
             "and remote backends; not normally run by hand)",
    )
    mode = p.add_mutually_exclusive_group(required=True)
    mode.add_argument("--serve-stdio", action="store_true",
                      help="serve the line-delimited JSON job protocol on "
                           "stdin/stdout until EOF or a shutdown request")
    mode.add_argument("--ping", action="store_true",
                      help="spawn one worker the way a backend would and "
                           "health-check it — verifies this host's "
                           "install before adding it to a --hosts file")
    p.add_argument("--timeout", type=float, default=10.0, metavar="SECONDS",
                   help="--ping: how long to wait for the pong "
                        "(default 10)")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "journal",
        help="inspect or repair a sweep checkpoint journal",
    )
    jsub = p.add_subparsers(dest="action", required=True)
    jp = jsub.add_parser(
        "verify",
        help="integrity-check every record without modifying the file",
    )
    jp.add_argument("path", help="journal file (.repro-checkpoints/*.jsonl)")
    jp.set_defaults(func=cmd_journal_verify)
    jp = jsub.add_parser(
        "compact",
        help="atomically rewrite to one checksummed record per job, "
             "dropping damage and superseded retries",
    )
    jp.add_argument("path", help="journal file (.repro-checkpoints/*.jsonl)")
    jp.set_defaults(func=cmd_journal_compact)

    p = sub.add_parser("profile", help="show a benchmark's pointer groups")
    p.add_argument("benchmark")
    p.add_argument("--top", type=int, default=16)
    common(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("multicore", help="run a multiprogrammed mix")
    p.add_argument("benchmarks", nargs="+")
    p.add_argument("--mechanism", default="ecdp+throttle")
    common(p)
    p.set_defaults(func=cmd_multicore)

    p = sub.add_parser(
        "trace",
        help="run one cell with telemetry and export the event trace",
    )
    p.add_argument("benchmark")
    p.add_argument("mechanism", nargs="?", default="ecdp+throttle")
    p.add_argument("--format", choices=sorted(_TRACE_FORMATS),
                   default="chrome",
                   help="trace output format (default chrome, for "
                        "chrome://tracing)")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="trace output path (default "
                        "<benchmark>-<mechanism><suffix>)")
    p.add_argument("--series", metavar="FILE.jsonl", default=None,
                   help="also dump the per-interval series as JSONL")
    p.add_argument("--capacity", type=int, default=65536, metavar="N",
                   help="event ring capacity (default 65536; older events "
                        "fall off and are counted as dropped)")
    p.add_argument("--max-points", type=int, default=4096, metavar="N",
                   help="retained series samples before decimation "
                        "doubles the keep stride (default 4096)")
    common(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("cost", help="print the Table 7 hardware cost model")
    p.add_argument("--paper", action="store_true")
    p.set_defaults(func=cmd_cost)

    p = sub.add_parser(
        "train-policy",
        help="train a qlearn/bandit throttling policy on recorded "
             "telemetry series",
    )
    p.add_argument("series", nargs="+", metavar="SERIES",
                   help=".series.jsonl files or directories of them "
                        "(e.g. a sweep's <name>-series/ directory)")
    p.add_argument("--policy", default="qlearn",
                   choices=["qlearn", "bandit"],
                   help="which learner to train (bandit = gamma pinned 0)")
    p.add_argument("--alpha", type=float, default=0.2,
                   help="learning rate (default 0.2)")
    p.add_argument("--gamma", type=float, default=0.6,
                   help="discount factor (default 0.6; ignored for bandit)")
    p.add_argument("--epsilon", type=float, default=0.0,
                   help="exploration rate baked into the emitted params "
                        "(default 0.0: pure greedy replay)")
    p.add_argument("--penalty", type=float, default=0.5,
                   help="bandwidth penalty weight in the reward "
                        "(default 0.5)")
    p.add_argument("--epochs", type=int, default=4,
                   help="replay passes over the experience (default 4)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed baked into the emitted params (default 0)")
    p.add_argument("--out", default=None, metavar="POLICY.json",
                   help="write the payload here (for sweep --policy-file); "
                        "default: params string to stdout")
    p.add_argument("--debug", action="store_true",
                   help="print full tracebacks instead of one-line errors")
    p.set_defaults(func=cmd_train_policy)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    debug = getattr(args, "debug", False)
    try:
        return args.func(args)
    except ReproError as error:
        if debug:
            raise
        print(f"error: {error}", file=sys.stderr)
        return getattr(error, "exit_code", 1)
    except KeyError as error:
        if debug:
            raise
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted (checkpoints are preserved; use --resume)",
              file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
