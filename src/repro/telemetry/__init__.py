"""Telemetry subsystem: metrics registry, interval series, event tracing.

Observability for the interval-based feedback machinery the paper is
built on.  End-of-run aggregates (:class:`~repro.core.stats.CoreResult`)
answer *how fast*; telemetry answers *why*: the per-interval accuracy /
coverage / aggressiveness trajectory, DRAM and MSHR pressure over time,
and an event-level trace of every prefetch's life cycle, exportable to
JSONL, CSV, and ``chrome://tracing``.

Usage::

    from repro.telemetry import Telemetry, TelemetryConfig
    from repro.experiments.runner import run_benchmark

    telemetry = Telemetry(TelemetryConfig(series=True, trace=True))
    result = run_benchmark("mst", "ecdp+throttle", telemetry=telemetry)
    stream = telemetry.stream("core0")
    stream.series.samples          # per-interval samples
    stream.trajectory              # throttle decisions, harness-identical
    write_chrome_trace(telemetry, "trace.json")

Telemetry is strictly opt-in and zero-cost when off: with
``telemetry=None`` both engines run their unmodified hot paths and
differential tests remain bit-identical.
"""

from repro.telemetry.exporters import (
    chrome_trace,
    series_path,
    validate_chrome_trace,
    write_chrome_trace,
    write_events_csv,
    write_events_jsonl,
    write_series_csv,
    write_series_jsonl,
)
from repro.telemetry.interval import IntervalSeriesRecorder
from repro.telemetry.registry import (
    Counter,
    MetricsRegistry,
    bind_core_metrics,
    dram_occupancy,
)
from repro.telemetry.session import CoreTelemetry, Telemetry, TelemetryConfig
from repro.telemetry.tracer import EventTracer, TracingFeedbackCollector

__all__ = [
    "CoreTelemetry",
    "Counter",
    "EventTracer",
    "IntervalSeriesRecorder",
    "MetricsRegistry",
    "Telemetry",
    "TelemetryConfig",
    "TracingFeedbackCollector",
    "bind_core_metrics",
    "chrome_trace",
    "dram_occupancy",
    "series_path",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_events_csv",
    "write_events_jsonl",
    "write_series_csv",
    "write_series_jsonl",
]
