"""Event tracer: a bounded ring buffer of simulation events.

Events are compact tuples ``(ts, kind, name, addr, dur, args)``:

* ``("prefetch", owner, block_addr, fill-issue duration)`` — one span
  per issued prefetch, from bus issue to fill arrival;
* ``("use", owner)`` — a demand hit consumed a prefetched block
  (``args`` carries ``{"late": True}`` when the fill was still in
  flight);
* ``("miss", block_addr)`` — an L2 demand miss;
* ``("evict", victim_addr)`` — an L2 eviction (``args`` marks evictions
  caused by a prefetch fill);
* ``("throttle", owner)`` — an aggressiveness-level transition, emitted
  by the interval recorder with ``{"from": l0, "to": l1, "interval": k}``;
* ``("interval", core)`` — an interval roll-over marker.

The buffer is a ring: when full, the oldest events fall off and
``dropped`` counts them, so tracing a long run costs bounded memory and
keeps the most recent window — the part a user debugging a throttle
oscillation actually wants.

:class:`TracingFeedbackCollector` is the only hook the core models need:
it subclasses :class:`~repro.throttle.feedback.FeedbackCollector`, calls
``super()`` first (identical arithmetic, so results are bit-identical
with tracing on or off) and mirrors each event into the ring with the
owning core's current cycle as timestamp.  When tracing is disabled the
plain collector is constructed instead and the hot paths of both engines
run the exact pre-telemetry code.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.throttle.feedback import FeedbackCollector

TraceTuple = Tuple[float, str, Optional[str], Optional[int], Optional[float],
                   Optional[Dict[str, Any]]]

#: default ring capacity (events); ~6 small fields per event
DEFAULT_CAPACITY = 65536


class EventTracer:
    """Bounded ring buffer of trace events for one core."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self.events: Deque[TraceTuple] = deque(maxlen=capacity)
        self.appended = 0

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return max(0, self.appended - self.capacity)

    def emit(
        self,
        ts: float,
        kind: str,
        name: Optional[str] = None,
        addr: Optional[int] = None,
        dur: Optional[float] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.appended += 1
        self.events.append((ts, kind, name, addr, dur, args))

    def snapshot(self) -> List[TraceTuple]:
        """The retained window, oldest first."""
        return list(self.events)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event[1]] = counts.get(event[1], 0) + 1
        return counts


class TracingFeedbackCollector(FeedbackCollector):
    """FeedbackCollector that mirrors its events into an :class:`EventTracer`.

    ``clock`` is the owning core; both engines keep ``core.cycle``
    current at every ``record_*`` call site (the fast engine flushes its
    loop-local cycle before any cold call), so timestamps are identical
    across engines.
    """

    def __init__(
        self,
        prefetcher_names,
        interval_evictions: int = 8192,
        pollution_filter_bits: int = 4096,
        *,
        tracer: EventTracer,
        clock,
    ) -> None:
        super().__init__(
            prefetcher_names, interval_evictions, pollution_filter_bits
        )
        self.tracer = tracer
        self._clock = clock

    def record_use(self, owner: str, late: bool = False) -> None:
        super().record_use(owner, late)
        self.tracer.emit(
            self._clock.cycle, "use", owner,
            args={"late": True} if late else None,
        )

    def record_demand_miss(self, block_addr: int) -> None:
        super().record_demand_miss(block_addr)
        self.tracer.emit(self._clock.cycle, "miss", None, block_addr)

    def record_eviction(self, victim_addr: int, by_prefetch: bool,
                        victim_was_demand: bool) -> None:
        super().record_eviction(victim_addr, by_prefetch, victim_was_demand)
        self.tracer.emit(
            self._clock.cycle, "evict", None, victim_addr,
            args={"by_prefetch": True} if by_prefetch else None,
        )
