"""Telemetry exporters: JSONL, CSV, and Chrome trace-event JSON.

The first two are for notebooks and spreadsheets; the third loads
directly in ``chrome://tracing`` / Perfetto.  Chrome's trace-event
format (the "JSON Object Format": ``{"traceEvents": [...]}``) maps
naturally onto the telemetry streams:

* each core is a *process* (``pid`` = core index, named via metadata
  events);
* prefetch issue->fill spans are complete events (``"ph": "X"``) on a
  per-owner thread lane, so in-flight prefetch overlap is visible;
* demand misses / prefetch uses / evictions are instant events
  (``"ph": "i"``);
* per-interval accuracy, coverage, BPKI, occupancies and the throttle
  level ladder are counter events (``"ph": "C"``), which chrome renders
  as stacked time series — the throttle trajectory becomes a staircase.

Timestamps are simulated core cycles reported as microseconds (the
format's native unit); the absolute scale is meaningless, relative
spacing is exact.
"""

from __future__ import annotations

import csv
import json
import re
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

PathLike = Union[str, Path]

#: flat CSV columns for event rows
EVENT_FIELDS = ["core", "ts", "kind", "name", "addr", "dur", "args"]

#: thread lanes per core, in display order
_LANES = ("prefetch", "use", "miss", "evict", "throttle", "interval")


# -- series ------------------------------------------------------------------


def series_rows(stream) -> List[Dict[str, Any]]:
    """Flatten one core's interval series into JSON-safe rows."""
    recorder = stream.series
    if recorder is None:
        return []
    rows = []
    for sample in recorder.samples:
        row = {"core": stream.name}
        row.update(sample)
        rows.append(row)
    return rows


def write_series_jsonl(session_or_stream, path: PathLike) -> int:
    """One JSON object per line per retained interval sample."""
    rows = [
        row
        for stream in _streams(session_or_stream)
        for row in series_rows(stream)
    ]
    with open(path, "w") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
    return len(rows)


def write_series_csv(session_or_stream, path: PathLike) -> int:
    """Interval series as CSV, per-prefetcher metrics in flat columns."""
    rows = [
        row
        for stream in _streams(session_or_stream)
        for row in series_rows(stream)
    ]
    flat_rows = []
    columns: List[str] = []
    for row in rows:
        flat = {
            key: value
            for key, value in row.items()
            if key != "prefetchers"
        }
        for owner, metrics in row.get("prefetchers", {}).items():
            for metric, value in metrics.items():
                flat[f"{owner}_{metric}"] = value
        flat_rows.append(flat)
        for key in flat:
            if key not in columns:
                columns.append(key)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        for flat in flat_rows:
            writer.writerow(flat)
    return len(flat_rows)


# -- events ------------------------------------------------------------------


def event_rows(stream) -> Iterable[Dict[str, Any]]:
    if stream.tracer is None:
        return
    for ts, kind, name, addr, dur, args in stream.tracer.events:
        yield {
            "core": stream.name,
            "ts": ts,
            "kind": kind,
            "name": name,
            "addr": addr,
            "dur": dur,
            "args": args,
        }


def write_events_jsonl(session_or_stream, path: PathLike) -> int:
    count = 0
    with open(path, "w") as fh:
        for stream in _streams(session_or_stream):
            for row in event_rows(stream):
                fh.write(json.dumps(row, sort_keys=True) + "\n")
                count += 1
    return count


def write_events_csv(session_or_stream, path: PathLike) -> int:
    count = 0
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=EVENT_FIELDS)
        writer.writeheader()
        for stream in _streams(session_or_stream):
            for row in event_rows(stream):
                row = dict(row)
                if row["args"] is not None:
                    row["args"] = json.dumps(row["args"], sort_keys=True)
                writer.writerow(row)
                count += 1
    return count


# -- chrome trace-event JSON -------------------------------------------------


def chrome_trace(session_or_stream) -> Dict[str, Any]:
    """Build a ``chrome://tracing``-loadable trace-event payload."""
    events: List[Dict[str, Any]] = []
    for pid, stream in enumerate(_streams(session_or_stream)):
        events.append(_meta(pid, "process_name", name=stream.name))
        for tid, lane in enumerate(_LANES):
            events.append(
                _meta(pid, "thread_name", tid=tid, name=lane)
            )
        lane_of = {lane: tid for tid, lane in enumerate(_LANES)}
        if stream.tracer is not None:
            for ts, kind, name, addr, dur, args in stream.tracer.events:
                tid = lane_of.get(kind, 0)
                event: Dict[str, Any] = {
                    "name": name or kind,
                    "cat": kind,
                    "pid": pid,
                    "tid": tid,
                    "ts": ts,
                }
                event_args: Dict[str, Any] = dict(args or {})
                if addr is not None:
                    event_args["addr"] = hex(addr)
                if kind == "prefetch":
                    event["ph"] = "X"
                    event["dur"] = dur if dur is not None else 0
                else:
                    event["ph"] = "i"
                    event["s"] = "t"
                if event_args:
                    event["args"] = event_args
                events.append(event)
        recorder = stream.series
        if recorder is not None:
            for sample in recorder.samples:
                ts = sample["cycle"]
                events.append(_counter(pid, ts, "bpki",
                                       {"bpki": sample["bpki"]}))
                events.append(_counter(
                    pid, ts, "pressure",
                    {
                        "dram_occupancy": sample["dram_occupancy"],
                        "mshr_occupancy": sample["mshr_occupancy"],
                    },
                ))
                for owner, metrics in sample["prefetchers"].items():
                    events.append(_counter(
                        pid, ts, f"level {owner}",
                        {"level": metrics["level"]},
                    ))
                    events.append(_counter(
                        pid, ts, f"feedback {owner}",
                        {
                            "accuracy": metrics["accuracy"],
                            "coverage": metrics["coverage"],
                        },
                    ))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro telemetry", "ts_unit": "core cycles"},
    }


def write_chrome_trace(session_or_stream, path: PathLike) -> int:
    payload = chrome_trace(session_or_stream)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=None, separators=(",", ":"))
        fh.write("\n")
    return len(payload["traceEvents"])


#: chrome trace phases we emit and the fields each requires
_PHASE_REQUIRED = {
    "X": ("name", "pid", "tid", "ts", "dur"),
    "i": ("name", "pid", "tid", "ts", "s"),
    "C": ("name", "pid", "ts", "args"),
    "M": ("name", "pid"),
}


def validate_chrome_trace(payload_or_path) -> List[str]:
    """Structural validation of a trace-event payload; [] when valid.

    Checks the subset of the trace-event spec we emit: a JSON object
    with a ``traceEvents`` list whose entries carry a known phase and
    that phase's required fields with sane types.  Used by the CI smoke
    step and by tests; returns human-readable problems rather than
    raising so callers can report all of them.
    """
    if isinstance(payload_or_path, (str, Path)):
        try:
            payload = json.loads(Path(payload_or_path).read_text())
        except (OSError, ValueError) as error:
            return [f"unreadable trace JSON: {error}"]
    else:
        payload = payload_or_path
    problems: List[str] = []
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return ["top level must be an object with a traceEvents list"]
    events = payload["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASE_REQUIRED:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        for field in _PHASE_REQUIRED[phase]:
            if field not in event:
                problems.append(f"{where}: phase {phase} missing {field!r}")
        for field in ("ts", "dur"):
            if field in event and not isinstance(event[field], (int, float)):
                problems.append(f"{where}: {field} must be numeric")
        if "name" in event and not isinstance(event["name"], str):
            problems.append(f"{where}: name must be a string")
        if len(problems) >= 20:
            problems.append("... (truncated)")
            break
    return problems


# -- paths -------------------------------------------------------------------


def series_path(directory: PathLike, benchmark: str, mechanism: str,
                input_set: str) -> Path:
    """Canonical per-cell series file beside a sweep's checkpoint journal."""
    slug = re.sub(
        r"[^A-Za-z0-9._+-]+", "_", f"{benchmark}-{mechanism}-{input_set}"
    )
    return Path(directory) / f"{slug}.series.jsonl"


# -- helpers -----------------------------------------------------------------


def _streams(session_or_stream) -> List:
    streams = getattr(session_or_stream, "streams", None)
    if streams is None:
        return [session_or_stream]
    return [streams[name] for name in sorted(streams)]


def _meta(pid: int, meta_name: str, tid: int = 0, **args) -> Dict[str, Any]:
    return {"ph": "M", "pid": pid, "tid": tid, "name": meta_name, "args": args}


def _counter(pid: int, ts: float, name: str,
             values: Dict[str, Any]) -> Dict[str, Any]:
    return {"ph": "C", "pid": pid, "ts": ts, "name": name, "args": values}
