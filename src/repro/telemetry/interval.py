"""Per-interval time series: the feedback signals behind every figure.

The paper's mechanism is *interval-based*: every ``interval_evictions``
L2 evictions the feedback counters are halved-and-accumulated (Eq. 3)
and the Table 3 heuristic moves each prefetcher's aggressiveness level.
End-of-run aggregates hide that whole trajectory; this recorder hooks
the roll-over (``FeedbackCollector.on_interval_telemetry``, which fires
*after* the throttling controller) and captures one sample per interval:

* per-prefetcher smoothed accuracy and coverage — exactly the Eq. 1/2
  values the controller just decided on,
* per-prefetcher aggressiveness level (post-decision),
* interval BPKI (bus transfers per thousand retired instructions, over
  this interval only),
* interval demand misses,
* DRAM request-buffer occupancy and L2 MSHR pressure at the boundary.

Memory is bounded by *decimation*: when the series exceeds
``max_points`` every other retained sample is dropped and the keep
stride doubles, so an arbitrarily long run costs O(max_points) while
preserving even temporal spacing.  The throttle-decision trajectory is
kept undecimated (it is ``n_prefetchers`` tuples per interval, the same
data :mod:`tests.differential.harness` extracts) so the recorded
trajectory is *identical* to the differential harness's, not a sampled
approximation of it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.registry import dram_occupancy

DecisionTuple = Tuple[str, int, str, float, float, float]


class IntervalSeriesRecorder:
    """Records one sample per feedback interval for one core."""

    def __init__(self, core, dram, max_points: int = 4096) -> None:
        if max_points < 2:
            raise ValueError("series max_points must be at least 2")
        self._core = core
        self._dram = dram
        self.max_points = max_points
        self.samples: List[Dict[str, Any]] = []
        self.stride = 1
        self.intervals_seen = 0
        self.decimated = 0
        #: undecimated throttle trajectory, ``(owner, case, action,
        #: coverage, accuracy, rival_coverage)`` per decision — the same
        #: tuples the differential harness extracts from the controller
        self.trajectory: List[DecisionTuple] = []
        self._decisions_seen = 0
        self._last_levels: Dict[str, int] = {}
        self._last_bus = core.bus_transfers
        self._last_retired = core.retired
        self._last_misses = core.feedback.lifetime_misses

    # -- hook ----------------------------------------------------------------

    def on_interval(self, collector, tail: bool) -> None:
        """Fires after the controller at each roll-over (tail: end of run)."""
        core = self._core
        cycle = core.cycle
        self._capture_decisions(collector)

        prefetchers: Dict[str, Dict[str, float]] = {}
        tracer = core._tracer
        for prefetcher in self._throttled(core):
            name = prefetcher.name
            level = prefetcher.level
            last = self._last_levels.get(name)
            if last is not None and level != last and tracer is not None:
                tracer.emit(
                    cycle, "throttle", name,
                    args={
                        "from": last,
                        "to": level,
                        "interval": collector.intervals_completed,
                    },
                )
            self._last_levels[name] = level
            prefetchers[name] = {
                "accuracy": collector.accuracy(name),
                "coverage": collector.coverage(name),
                "level": level,
            }

        bus = core.bus_transfers
        retired = core.retired
        misses = core.feedback.lifetime_misses
        d_bus = bus - self._last_bus
        d_retired = retired - self._last_retired
        sample = {
            "interval": collector.intervals_completed,
            "tail": tail,
            "cycle": cycle,
            "bpki": (d_bus / d_retired * 1000.0) if d_retired else 0.0,
            "demand_misses": misses - self._last_misses,
            "dram_occupancy": dram_occupancy(self._dram, cycle),
            "mshr_occupancy": len(core._outstanding),
            "prefetchers": prefetchers,
        }
        self._last_bus = bus
        self._last_retired = retired
        self._last_misses = misses

        index = self.intervals_seen
        self.intervals_seen += 1
        if tracer is not None:
            tracer.emit(cycle, "interval", core.name,
                        args={"interval": collector.intervals_completed})
        if tail or index % self.stride == 0:
            self.samples.append(sample)
            if len(self.samples) > self.max_points:
                self._decimate()
        else:
            self.decimated += 1

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _throttled(core) -> list:
        prefetchers = list(core._trained_prefetchers)
        if core.cdp is not None:
            prefetchers.append(core.cdp)
        return prefetchers

    def _capture_decisions(self, collector) -> None:
        """Append this interval's controller decisions, if any.

        Duck-typed on the attached ``on_interval`` hook exposing a
        ``decisions`` list (:class:`~repro.throttle.coordinated.
        CoordinatedThrottle` does); other controllers simply record no
        trajectory.
        """
        controller = getattr(collector.on_interval, "__self__", None)
        decisions = getattr(controller, "decisions", None)
        if decisions is None:
            return
        fresh = decisions[self._decisions_seen:]
        self._decisions_seen = len(decisions)
        self.trajectory.extend(
            (d.owner, d.case, d.action, d.coverage, d.accuracy,
             d.rival_coverage)
            for d in fresh
        )

    def _decimate(self) -> None:
        """Halve the retained series, doubling the keep stride."""
        self.decimated += len(self.samples) - len(self.samples[::2])
        self.samples = self.samples[::2]
        self.stride *= 2

    # -- views ---------------------------------------------------------------

    def levels_series(self, owner: str) -> List[Tuple[int, int]]:
        """(interval, level) pairs for one prefetcher over the run."""
        return [
            (s["interval"], s["prefetchers"][owner]["level"])
            for s in self.samples
            if owner in s["prefetchers"]
        ]

    def summary(self) -> Dict[str, Any]:
        """Compact per-run digest of the series (export-friendly)."""
        out: Dict[str, Any] = {
            "intervals": self.intervals_seen,
            "samples": len(self.samples),
            "stride": self.stride,
            "decimated": self.decimated,
        }
        if self.samples:
            bpki = [s["bpki"] for s in self.samples]
            out["bpki_min"] = min(bpki)
            out["bpki_max"] = max(bpki)
            out["bpki_mean"] = sum(bpki) / len(bpki)
        return out
