"""Low-overhead metrics registry: counters, gauges, sampled namespaces.

The simulation components (caches, DRAM controller, bus, feedback
collector, prefetch queue) already count everything the paper's figures
need — the registry does not ask them to emit per-event callbacks.
Instead it binds *gauges*: named, zero-argument callables evaluated only
when somebody samples the registry (the interval recorder, an exporter,
a test).  Publishing is therefore free on the simulation hot path; the
only cost is paid at sample time, which happens once per feedback
interval at most.

``Counter`` exists for telemetry's own bookkeeping (events appended,
samples dropped by decimation) where there is no component counter to
bind to.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List

Sampler = Callable[[], float]


class Counter:
    """A plain owned counter for telemetry-internal tallies."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class MetricsRegistry:
    """Named metric namespace; every entry is sampled lazily."""

    def __init__(self) -> None:
        self._samplers: Dict[str, Sampler] = {}

    def gauge(self, name: str, fn: Sampler) -> None:
        """Register *fn* as the sampler for *name* (last write wins)."""
        self._samplers[name] = fn

    def counter(self, name: str) -> Counter:
        """Create, register and return an owned counter."""
        counter = Counter(name)
        self._samplers[name] = lambda: counter.value
        return counter

    def names(self) -> List[str]:
        return sorted(self._samplers)

    def __contains__(self, name: str) -> bool:
        return name in self._samplers

    def __len__(self) -> int:
        return len(self._samplers)

    def sample(self, prefix: str = "") -> Dict[str, float]:
        """Evaluate every (matching) gauge right now."""
        return {
            name: fn()
            for name, fn in sorted(self._samplers.items())
            if name.startswith(prefix)
        }


def _prefetcher_names(core) -> Iterable[str]:
    names = [p.name for p in core._trained_prefetchers]
    if core.cdp is not None:
        names.append(core.cdp.name)
    return names


def bind_core_metrics(registry: MetricsRegistry, core, dram) -> None:
    """Publish one core's standard metric namespace into *registry*.

    Everything is bound by closure over the live component objects, so a
    sample taken mid-run (or after ``finish``) reads current state.
    """
    name = core.name
    l1, l2 = core.l1, core.l2
    feedback = core.feedback
    registry.gauge(f"{name}.cycles", lambda: core.cycle)
    registry.gauge(f"{name}.retired", lambda: core.retired)
    registry.gauge(f"{name}.bus_transfers", lambda: core.bus_transfers)
    registry.gauge(f"{name}.mshr_occupancy", lambda: len(core._outstanding))
    registry.gauge(f"{name}.l1.hits", lambda: l1.stats.hits)
    registry.gauge(f"{name}.l1.misses", lambda: l1.stats.misses)
    registry.gauge(f"{name}.l2.hits", lambda: l2.stats.hits)
    registry.gauge(f"{name}.l2.misses", lambda: l2.stats.misses)
    registry.gauge(f"{name}.l2.evictions", lambda: l2.stats.evictions)
    registry.gauge(
        f"{name}.l2.prefetch_fills", lambda: l2.stats.prefetch_fills
    )
    registry.gauge(
        f"{name}.feedback.intervals", lambda: feedback.intervals_completed
    )
    registry.gauge(
        f"{name}.feedback.demand_misses", lambda: feedback.lifetime_misses
    )
    registry.gauge(
        f"{name}.feedback.pollution", lambda: feedback.lifetime_pollution
    )
    registry.gauge(f"{name}.pf_queue.dropped", lambda: core.pf_queue.dropped)
    for owner in _prefetcher_names(core):
        counters = feedback.counters[owner]
        registry.gauge(
            f"{name}.prefetch.{owner}.issued",
            lambda c=counters: c.lifetime_prefetched,
        )
        registry.gauge(
            f"{name}.prefetch.{owner}.used",
            lambda c=counters: c.lifetime_used,
        )
        registry.gauge(
            f"{name}.prefetch.{owner}.late",
            lambda c=counters: c.lifetime_late,
        )
    stats = dram.stats
    registry.gauge(f"{name}.dram.demand_requests", lambda: stats.demand_requests)
    registry.gauge(
        f"{name}.dram.prefetch_requests", lambda: stats.prefetch_requests
    )
    registry.gauge(f"{name}.dram.writebacks", lambda: stats.writebacks)
    registry.gauge(
        f"{name}.dram.dropped_prefetches", lambda: stats.dropped_prefetches
    )
    registry.gauge(
        f"{name}.dram.buffer_full_stalls", lambda: stats.buffer_full_stalls
    )
    registry.gauge(f"{name}.bus.transfers", lambda: dram.bus.transfers)


def dram_occupancy(dram, now: float) -> int:
    """In-flight DRAM requests at *now*, without mutating the heap.

    The controller's own ``_occupancy`` lazily pops completed entries;
    this read-only count keeps sampling strictly side-effect free, so a
    telemetry-enabled run stays bit-identical to a disabled one.
    """
    return sum(1 for completion in dram._in_flight if completion > now)
