"""Telemetry session: configuration and per-core stream wiring.

A :class:`Telemetry` session owns one :class:`CoreTelemetry` stream per
core (``MultiCoreSystem`` runs get disjoint streams keyed by core name).
Each stream carries a metrics registry, an optional event-trace ring and
an optional interval-series recorder.

The overhead contract (enforced by ``benchmarks/
bench_telemetry_overhead.py`` and the CI perf-smoke budget):

* **disabled** (``telemetry=None`` — the default everywhere): the core
  models construct the plain :class:`FeedbackCollector` and both
  engines run their exact pre-telemetry hot paths.  The only residual
  cost is one ``is not None`` test per *issued prefetch* (cold path);
  differential tests stay bit-identical and the kernel benchmark stays
  within 2% of ``BENCH_kernel.json``.
* **series only**: cost is one sample per feedback interval (thousands
  of simulated ops apart) — nothing per memory op.
* **trace**: adds one ring append per prefetch/use/miss/eviction event;
  all arithmetic is unchanged, so results remain bit-identical between
  engines and against a disabled run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.telemetry.interval import IntervalSeriesRecorder
from repro.telemetry.registry import MetricsRegistry, bind_core_metrics
from repro.telemetry.tracer import (
    DEFAULT_CAPACITY,
    EventTracer,
    TracingFeedbackCollector,
)
from repro.throttle.feedback import FeedbackCollector


@dataclass(frozen=True)
class TelemetryConfig:
    """What to record and how much memory to spend on it."""

    #: record the per-interval time series (accuracy/coverage/levels/...)
    series: bool = True
    #: bound on retained series samples; beyond it, decimation doubles
    #: the keep stride (memory stays O(series_max_points) forever)
    series_max_points: int = 4096
    #: record the event ring (prefetch spans, uses, misses, evictions)
    trace: bool = False
    #: event ring capacity; older events fall off and are counted
    trace_capacity: int = DEFAULT_CAPACITY

    def validate(self) -> "TelemetryConfig":
        if self.series_max_points < 2:
            raise ValueError("series_max_points must be at least 2")
        if self.trace_capacity <= 0:
            raise ValueError("trace_capacity must be positive")
        return self


class CoreTelemetry:
    """One core's telemetry stream (registry + tracer + series)."""

    def __init__(self, name: str, config: TelemetryConfig) -> None:
        self.name = name
        self.config = config
        self.registry = MetricsRegistry()
        self.tracer: Optional[EventTracer] = (
            EventTracer(config.trace_capacity) if config.trace else None
        )
        self.series: Optional[IntervalSeriesRecorder] = None
        self.core = None

    # -- hooks called by the core model / builder ---------------------------

    def make_collector(
        self, prefetcher_names, interval_evictions: int, clock
    ) -> FeedbackCollector:
        """The feedback collector the core should use.

        With event tracing on, a :class:`TracingFeedbackCollector`
        mirrors feedback events into the ring; otherwise the plain
        collector, so disabled paths are untouched.
        """
        if self.tracer is not None:
            return TracingFeedbackCollector(
                prefetcher_names,
                interval_evictions,
                tracer=self.tracer,
                clock=clock,
            )
        return FeedbackCollector(prefetcher_names, interval_evictions)

    def install(self, core, dram) -> None:
        """Attach recorders to a fully built core.

        Must run *after* the throttling controller's ``attach`` so the
        interval recorder fires after the controller and can snapshot
        its decisions; :func:`repro.experiments.runner.build_core` calls
        this last.
        """
        self.core = core
        bind_core_metrics(self.registry, core, dram)
        if self.config.series:
            self.series = IntervalSeriesRecorder(
                core, dram, max_points=self.config.series_max_points
            )
            core.feedback.on_interval_telemetry = self.series.on_interval

    # -- views ---------------------------------------------------------------

    @property
    def trajectory(self):
        """The recorded throttle-decision trajectory (may be empty)."""
        return self.series.trajectory if self.series is not None else []

    def summary(self) -> Dict:
        out: Dict = {"core": self.name}
        if self.series is not None:
            out["series"] = self.series.summary()
        if self.tracer is not None:
            out["events"] = {
                "appended": self.tracer.appended,
                "retained": len(self.tracer.events),
                "dropped": self.tracer.dropped,
                "by_kind": self.tracer.counts_by_kind(),
            }
        return out


class Telemetry:
    """A session: per-core streams plus session-wide export surface."""

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = (config or TelemetryConfig()).validate()
        self.streams: Dict[str, CoreTelemetry] = {}

    def stream(self, name: str) -> CoreTelemetry:
        """Get or create the stream for one core (keyed by core name)."""
        stream = self.streams.get(name)
        if stream is None:
            stream = CoreTelemetry(name, self.config)
            self.streams[name] = stream
        return stream

    def summaries(self) -> List[Dict]:
        return [
            self.streams[name].summary() for name in sorted(self.streams)
        ]
