"""Hardware cost model (paper Table 7)."""

from repro.cost.hardware import (
    CostLine,
    CostReport,
    baseline_costs,
    proposal_cost,
)

__all__ = ["CostLine", "CostReport", "baseline_costs", "proposal_cost"]
