"""Hardware storage cost accounting (paper Table 7 and Section 6.3).

The paper's central economy argument: ECDP + coordinated throttling costs
2.11 KB (17296 bits) — two orders of magnitude below the Markov table and
well under every other LDS prefetcher it compares against.  This module
computes the same arithmetic from a SystemConfig so the cost scales with
any configuration a user evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.config import SystemConfig

#: counters used for prefetcher coverage/accuracy (paper Table 7 row 2):
#: total-prefetched + total-used per prefetcher (x2 prefetchers), one
#: shared total-misses, and the smoothed copies Eq. 3 maintains.
N_THROTTLE_COUNTERS = 11
THROTTLE_COUNTER_BITS = 16


@dataclass(frozen=True)
class CostLine:
    description: str
    bits: int


@dataclass(frozen=True)
class CostReport:
    lines: Tuple[CostLine, ...]

    @property
    def total_bits(self) -> int:
        return sum(line.bits for line in self.lines)

    @property
    def total_kilobytes(self) -> float:
        return self.total_bits / 8.0 / 1024.0

    def area_overhead_vs_l2(self, l2_size_bytes: int) -> float:
        """Storage as a fraction of the baseline L2 (Table 7 bottom row)."""
        return (self.total_bits / 8.0) / l2_size_bytes


def proposal_cost(config: SystemConfig) -> CostReport:
    """Table 7: the cost of ECDP with coordinated throttling."""
    n_l2_blocks = config.l2_size // config.block_size
    prefetched_bits = n_l2_blocks * 2  # prefetched-CDP + prefetched-stream
    counter_bits = N_THROTTLE_COUNTERS * THROTTLE_COUNTER_BITS
    # Per-MSHR hint storage: block offset of the accessed byte (log2 of
    # block size = 7 bits for 128 B blocks) plus the hint bit vector.
    # Table 7 charges 16 vector bits per entry (the Figure 6 encoding);
    # we keep that accounting and scale it with the block size.
    offset_bits = max(1, (config.block_size - 1).bit_length())
    vector_bits = min(16, config.block_size // 4)
    mshr_bits = config.l2_mshrs * (offset_bits + vector_bits)
    return CostReport(
        (
            CostLine(
                f"prefetched bits for each block in the L2 cache "
                f"({n_l2_blocks} blocks x 2 bits)",
                prefetched_bits,
            ),
            CostLine(
                f"throttling feedback counters ({N_THROTTLE_COUNTERS} x "
                f"{THROTTLE_COUNTER_BITS} bits)",
                counter_bits,
            ),
            CostLine(
                f"MSHR block-offset + hint-vector storage "
                f"({config.l2_mshrs} entries x ({offset_bits} + {vector_bits} bits))",
                mshr_bits,
            ),
        )
    )


def baseline_costs(config: SystemConfig) -> Dict[str, float]:
    """KB cost of each comparison prefetcher, as sized in Section 6.3/7.3."""
    return {
        "ecdp+throttle (ours)": proposal_cost(config).total_kilobytes,
        "dbp": 3.0,  # 256-entry correlation + 128-entry PPW
        "markov": 1024.0,  # 1 MB correlation table
        "ghb": 12.0,  # 1k-entry buffer + index
        "hw-filter": 8.0,  # Zhuang-Lee 8 KB filter (Section 6.4)
        "pointer-cache": 1126.4,  # 1.1 MB (Section 7.3)
        "jump-pointer": 64.0,  # >= 64 KB (Section 7.3)
        "spatial-streaming": 64.0,  # >= 64 KB (Section 7.3)
    }
