"""Pointer groups — the unit of ECDP's compiler analysis (paper Section 3).

PG(L, X) is the set of pointers found in cache blocks fetched by static load
L at constant byte offset X from the address L accessed.  Because structure
fields sit at fixed offsets and nodes are allocated consecutively, each PG
corresponds to one pointer field in the source (e.g. ``node->left``).

A PG's *prefetches* are all CDP prefetches issued to fetch any pointer of
that PG **including recursive prefetches** spawned from blocks those
prefetches brought in.  Usefulness = fraction of a PG's prefetches that were
demanded before eviction; a PG is *beneficial* when usefulness exceeds 0.5
(paper footnote 4) and *harmful* otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

#: A pointer group key: (static load PC, byte offset from accessed address).
PGKey = Tuple[int, int]

#: Usefulness threshold above which a PG is beneficial (paper Section 3).
BENEFICIAL_THRESHOLD = 0.5


@dataclass
class PointerGroupStats:
    """Prefetch outcome counters for one pointer group."""

    issued: int = 0
    useful: int = 0

    @property
    def usefulness(self) -> float:
        """Fraction of this PG's prefetches that were used (0 if none)."""
        return self.useful / self.issued if self.issued else 0.0

    @property
    def is_beneficial(self) -> bool:
        return self.usefulness > BENEFICIAL_THRESHOLD


class PointerGroupProfile:
    """Accumulates per-PG prefetch outcomes across a profiling run."""

    def __init__(self) -> None:
        self._stats: Dict[PGKey, PointerGroupStats] = {}

    def record_issue(self, key: PGKey, count: int = 1) -> None:
        stats = self._stats.get(key)
        if stats is None:
            stats = self._stats[key] = PointerGroupStats()
        stats.issued += count

    def record_use(self, key: PGKey) -> None:
        stats = self._stats.get(key)
        if stats is None:
            stats = self._stats[key] = PointerGroupStats()
        stats.useful += 1

    def get(self, key: PGKey) -> PointerGroupStats:
        return self._stats.get(key, PointerGroupStats())

    def items(self) -> Iterable[Tuple[PGKey, PointerGroupStats]]:
        return self._stats.items()

    def __len__(self) -> int:
        return len(self._stats)

    def beneficial_keys(self) -> List[PGKey]:
        """PGs whose majority of prefetches were useful."""
        return [key for key, stats in self._stats.items() if stats.is_beneficial]

    def harmful_keys(self) -> List[PGKey]:
        return [
            key for key, stats in self._stats.items() if not stats.is_beneficial
        ]

    def usefulness_histogram(self, bins: int = 4) -> List[int]:
        """Count PGs per usefulness quartile (paper Figure 10's bins).

        With the default 4 bins: [0-25 %), [25-50 %), [50-75 %), [75-100 %].
        """
        counts = [0] * bins
        for stats in self._stats.values():
            index = min(int(stats.usefulness * bins), bins - 1)
            counts[index] += 1
        return counts

    def beneficial_fraction(self) -> float:
        """Fraction of all PGs that are beneficial (paper Figure 4)."""
        if not self._stats:
            return 0.0
        return len(self.beneficial_keys()) / len(self._stats)
