"""Hint bit vectors: how the compiler tells CDP which pointers to prefetch.

Paper Section 3 / Figure 6: each static load carries a bit vector with one
bit per possible 4-byte pointer slot in a cache block; bit n set means the
PG at byte offset ``4*n`` from the accessed address is beneficial.  Negative
offsets get a second vector (paper footnote 6).  The vectors ride on the
load instruction (a new ISA encoding) and are parked in the MSHR while the
miss is outstanding — we model the information content, not the encoding.

This module also provides the two coarse-grained alternatives the paper
compares against:

* GRP-style (Wang et al., ISCA-30): one enable bit per load — all pointers
  in blocks fetched by that load are prefetched, or none (paper Section 7.1).
* Srinivasan-style static filter: choose which *loads* may initiate
  prefetches at all, again one bit per load (paper Section 7.2).

Both collapse every PG of a load into one decision, which is exactly why
the paper finds them nearly useless for CDP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.compiler.pointer_group import PointerGroupProfile
from repro.memory.address import WORD_SIZE


@dataclass(frozen=True)
class HintVector:
    """Positive + negative offset bit vectors for one static load."""

    positive: int = 0  # bit n -> byte offset +4n is beneficial
    negative: int = 0  # bit n -> byte offset -4n is beneficial (n >= 1)

    def allows(self, byte_delta: int) -> bool:
        """Is the pointer at *byte_delta* from the accessed byte hinted?"""
        if byte_delta % WORD_SIZE != 0:
            return False
        slot = byte_delta // WORD_SIZE
        if slot >= 0:
            return bool(self.positive >> slot & 1)
        return bool(self.negative >> (-slot) & 1)

    def with_offset(self, byte_delta: int) -> "HintVector":
        """A copy with the bit for *byte_delta* set."""
        if byte_delta % WORD_SIZE != 0:
            raise ValueError("hint offsets must be word-aligned")
        slot = byte_delta // WORD_SIZE
        if slot >= 0:
            return HintVector(self.positive | (1 << slot), self.negative)
        return HintVector(self.positive, self.negative | (1 << -slot))

    @property
    def bit_count(self) -> int:
        return bin(self.positive).count("1") + bin(self.negative).count("1")


class HintTable:
    """Per-static-load hint vectors, as produced by the profiling compiler.

    ``default_allow`` controls loads the profiler never saw: False (the
    default) means an unhinted load generates no CDP prefetches — matching
    the paper's model where hints arrive via the load instruction itself
    and unannotated loads are ordinary loads.
    """

    def __init__(self, default_allow: bool = False) -> None:
        self._vectors: Dict[int, HintVector] = {}
        self.default_allow = default_allow

    @classmethod
    def from_profile(
        cls, profile: PointerGroupProfile, default_allow: bool = False
    ) -> "HintTable":
        """Set a hint bit for every beneficial PG in *profile*."""
        table = cls(default_allow)
        for pc, byte_delta in profile.beneficial_keys():
            table.add_hint(pc, byte_delta)
        return table

    def add_hint(self, pc: int, byte_delta: int) -> None:
        current = self._vectors.get(pc, HintVector())
        self._vectors[pc] = current.with_offset(byte_delta)

    def vector_for(self, pc: int) -> Optional[HintVector]:
        return self._vectors.get(pc)

    def allows(self, pc: int, byte_delta: int) -> bool:
        """The ECDP hint filter (plugs into ContentDirectedPrefetcher)."""
        vector = self._vectors.get(pc)
        if vector is None:
            return self.default_allow
        return vector.allows(byte_delta)

    def __len__(self) -> int:
        return len(self._vectors)

    def total_hint_bits(self) -> int:
        return sum(v.bit_count for v in self._vectors.values())


class CoarseLoadFilter:
    """GRP / Srinivasan-style per-load all-or-nothing control.

    A load is *enabled* when the majority of all prefetches attributed to
    any of its PGs were useful; then every pointer in its fetched blocks
    is prefetched.  Disabled loads prefetch nothing.
    """

    def __init__(self, enabled_pcs: Dict[int, bool], default_allow: bool = False):
        self._enabled = enabled_pcs
        self.default_allow = default_allow

    @classmethod
    def from_profile(
        cls, profile: PointerGroupProfile, default_allow: bool = False
    ) -> "CoarseLoadFilter":
        issued: Dict[int, int] = {}
        useful: Dict[int, int] = {}
        for (pc, __), stats in profile.items():
            issued[pc] = issued.get(pc, 0) + stats.issued
            useful[pc] = useful.get(pc, 0) + stats.useful
        enabled = {
            pc: (useful.get(pc, 0) > issued[pc] * 0.5)
            for pc in issued
            if issued[pc] > 0
        }
        return cls(enabled, default_allow)

    def allows(self, pc: int, byte_delta: int) -> bool:
        return self._enabled.get(pc, self.default_allow)

    def enabled_count(self) -> int:
        return sum(1 for enabled in self._enabled.values() if enabled)

    def __len__(self) -> int:
        return len(self._enabled)
