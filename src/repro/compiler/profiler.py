"""The profiling compiler pass (paper Section 3, "Profiling Implementation").

We implement the paper's first sketch: the compiler profiles the program by
simulating the cache hierarchy and the content-directed prefetcher of the
target machine — *functionally*, with no timing — and measures, for every
pointer group PG(L, X), what fraction of the prefetches it triggers
(including recursive ones) are demanded before eviction.

The result is a :class:`PointerGroupProfile`, from which
:class:`~repro.compiler.hints.HintTable` derives the per-load hint bit
vectors the hardware consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.cache.set_assoc import SetAssociativeCache
from repro.compiler.pointer_group import PGKey, PointerGroupProfile
from repro.core.instruction import MemOp
from repro.memory.address import (
    NULL_REGION_END,
    WORD_SIZE,
    block_address,
    block_offset,
    compare_bits_match,
)
from repro.memory.backing import SimulatedMemory


@dataclass(frozen=True)
class ProfilerConfig:
    """Shape of the target machine's last-level cache and CDP."""

    l2_size: int
    l2_ways: int
    block_size: int
    compare_bits: int = 8
    max_recursion_depth: int = 4
    #: cap on prefetches per demand miss, mirroring the hardware's
    #: per-core prefetch request queue (Table 5: 128 entries).  Keeps the
    #: functional simulation from exploding on pointer-dense blocks.
    chain_budget: int = 128


class FunctionalCdpSimulator:
    """Timing-free L2 + CDP simulation that attributes prefetch usefulness.

    Every CDP prefetch — direct or recursive — is attributed to the *root*
    pointer group that started its chain, matching the paper's definition
    of "a PG's prefetches".  An optional ``hint_filter`` lets the same
    engine measure post-ECDP PG usefulness (paper Figure 10, bottom).
    """

    def __init__(
        self,
        memory: SimulatedMemory,
        config: ProfilerConfig,
        hint_filter: Optional[Callable[[int, int], bool]] = None,
    ) -> None:
        self.memory = memory
        self.config = config
        self.hint_filter = hint_filter
        self.cache = SetAssociativeCache(
            config.l2_size, config.l2_ways, config.block_size, name="profile-l2"
        )
        self.profile = PointerGroupProfile()
        # block_addr -> root PG for resident, not-yet-used prefetched blocks
        self._prefetched_root: Dict[int, PGKey] = {}
        self.cache.on_eviction = self._on_eviction
        self.demand_misses = 0
        self.demand_accesses = 0

    def _on_eviction(self, victim) -> None:
        self._prefetched_root.pop(victim.addr, None)

    def _scan_and_prefetch(
        self,
        block_addr: int,
        root: Optional[PGKey],
        depth: int,
        demand_pc: Optional[int],
        accessed_offset: int,
        budget: List[int],
    ) -> None:
        """Scan one fetched block; issue (and recursively chase) prefetches.

        ``root`` is None for demand fills — each candidate then roots its
        own PG chain.  For prefetch fills, candidates inherit ``root``.
        ``budget`` is the remaining per-demand-miss prefetch allowance
        (a one-element list, decremented in place across the recursion).
        """
        if depth > self.config.max_recursion_depth:
            return
        words = self.memory.read_block_words(block_addr, self.config.block_size)
        pending: List[Tuple[int, PGKey, int]] = []  # (target, root, next_depth)
        for index, value in enumerate(words):
            if budget[0] <= 0:
                break
            if value < NULL_REGION_END:
                continue
            if not compare_bits_match(value, block_addr, self.config.compare_bits):
                continue
            if root is None:
                key: PGKey = (demand_pc or 0, index * WORD_SIZE - accessed_offset)
                if self.hint_filter is not None and demand_pc is not None:
                    if not self.hint_filter(demand_pc, index * WORD_SIZE - accessed_offset):
                        continue
            else:
                key = root
            target = block_address(value, self.config.block_size)
            if target == block_addr:
                continue
            if self.cache.contains(target):
                # Dropped at the L2 probe (paper Section 2.2): costs no
                # bandwidth, so it must not dilute the PG's usefulness.
                continue
            budget[0] -= 1
            self.profile.record_issue(key)
            self.cache.insert(target, prefetch_owner="cdp")
            self._prefetched_root[target] = key
            pending.append((target, key, depth + 1))
        for target, key, next_depth in pending:
            self._scan_and_prefetch(target, key, next_depth, None, 0, budget)

    def access(self, op: MemOp) -> None:
        """Feed one demand memory operation through the functional model."""
        cfg = self.config
        self.demand_accesses += 1
        block = self.cache.lookup(op.addr)
        if block is not None:
            root = self._prefetched_root.pop(block.addr, None)
            if root is not None:
                self.profile.record_use(root)
                block.mark_used()
            return
        self.demand_misses += 1
        block_addr = block_address(op.addr, cfg.block_size)
        self.cache.insert(block_addr, demand_pc=op.pc)
        if op.is_load:
            self._scan_and_prefetch(
                block_addr,
                root=None,
                depth=1,
                demand_pc=op.pc,
                accessed_offset=block_offset(op.addr, cfg.block_size),
                budget=[cfg.chain_budget],
            )

    def run(self, trace: Iterable[MemOp]) -> PointerGroupProfile:
        for op in trace:
            self.access(op)
        return self.profile


def profile_trace(
    memory: SimulatedMemory,
    trace: Iterable[MemOp],
    config: ProfilerConfig,
    hint_filter: Optional[Callable[[int, int], bool]] = None,
) -> PointerGroupProfile:
    """Convenience wrapper: run a full profiling pass over *trace*."""
    simulator = FunctionalCdpSimulator(memory, config, hint_filter)
    return simulator.run(trace)
