"""Hardware-assisted profiling via informing memory operations.

Paper Section 3 sketches a second profiling implementation: instead of
the compiler simulating the cache hierarchy itself, "the target machine
can provide support for profiling, e.g. using informing load operations
[Horowitz et al.].  With this support, the compiler detects whether a
load results in a hit or miss and whether the hit is due to a prefetch
request.  During the profiling run, the compiler constructs the
usefulness of each PG."

This module implements that path: a :class:`PgObserver` taps the timing
core's prefetch-issue / prefetch-use / eviction events, attributing every
CDP prefetch (including recursive chains) to its root pointer group while
the *real* pipeline — with all its timing, pollution and contention —
runs.  The result is interchangeable with the functional profiler's
:class:`~repro.compiler.pointer_group.PointerGroupProfile`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.compiler.pointer_group import PGKey, PointerGroupProfile


class PgObserver:
    """Tracks per-PG prefetch outcomes from core-pipeline events."""

    def __init__(self) -> None:
        self.profile = PointerGroupProfile()
        self._roots: Dict[int, PGKey] = {}  # in-cache prefetched block -> root

    def on_issue(self, block_addr: int, root: Optional[PGKey],
                 parent_addr: Optional[int] = None) -> Optional[PGKey]:
        """A CDP prefetch was sent to memory.

        ``root`` is the PG of a demand-scan request; recursive requests
        pass None plus the parent block so the chain inherits its root.
        Returns the resolved root (to stash in deferred-scan state).
        """
        if root is None and parent_addr is not None:
            root = self._roots.get(parent_addr)
        if root is None:
            return None
        self.profile.record_issue(root)
        self._roots[block_addr] = root
        return root

    def on_use(self, block_addr: int) -> None:
        """A demand access hit a CDP-prefetched block before eviction."""
        root = self._roots.pop(block_addr, None)
        if root is not None:
            self.profile.record_use(root)

    def on_evict(self, block_addr: int) -> None:
        """A CDP-prefetched block left the cache (used or not)."""
        self._roots.pop(block_addr, None)


def profile_with_informing_loads(
    benchmark: str,
    config=None,
    input_set: str = "train",
) -> PointerGroupProfile:
    """Profile *benchmark* by running the timed pipeline with greedy CDP.

    Equivalent in role to
    :func:`repro.experiments.runner.profile_benchmark` but measured with
    informing loads on the real machine model, so PG usefulness reflects
    timing effects (late prefetches that still arrive count as useful,
    exactly as a hit-due-to-prefetch informing bit would report).
    """
    from repro.core.config import SystemConfig
    from repro.experiments.configs import get_mechanism
    from repro.experiments.runner import build_core, make_dram
    from repro.workloads.registry import get_workload

    config = config or SystemConfig.scaled()
    instance = get_workload(benchmark).build(input_set)
    core = build_core(
        get_mechanism("cdp"), config, instance, make_dram(config), None
    )
    observer = PgObserver()
    core.pg_observer = observer
    core.run(instance.trace())
    return observer.profile
