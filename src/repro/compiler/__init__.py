"""Compiler side of ECDP: pointer-group profiling and hint generation."""

from repro.compiler.hints import CoarseLoadFilter, HintTable, HintVector
from repro.compiler.informing import PgObserver, profile_with_informing_loads
from repro.compiler.pointer_group import (
    BENEFICIAL_THRESHOLD,
    PGKey,
    PointerGroupProfile,
    PointerGroupStats,
)
from repro.compiler.profiler import (
    FunctionalCdpSimulator,
    ProfilerConfig,
    profile_trace,
)

__all__ = [
    "BENEFICIAL_THRESHOLD",
    "CoarseLoadFilter",
    "PgObserver",
    "profile_with_informing_loads",
    "FunctionalCdpSimulator",
    "HintTable",
    "HintVector",
    "PGKey",
    "PointerGroupProfile",
    "PointerGroupStats",
    "ProfilerConfig",
    "profile_trace",
]
