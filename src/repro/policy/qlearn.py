"""Tabular Q-learning / contextual-bandit throttling policy.

The learned competitor the telemetry subsystem made possible: the state
is a discretization of exactly the per-interval feedback signals the
series recorder captures (coverage and accuracy classes through the
Table 4 thresholds, rival coverage, current ladder level), the actions
are Table 3's own actuation surface (down/hold/up), and the reward is
the paper's economy — usefulness delivered minus bandwidth spent::

    r = coverage + accuracy - penalty * BPKI / 100

With ``gamma > 0`` this is one-step Q-learning (credit flows backward
through the interval sequence); with ``gamma = 0`` it degrades to a
contextual bandit (each interval rewarded on its own), which is the
``bandit`` registry entry.

Determinism is a hard requirement, not a nicety: a sweep's checkpoint
journal and the service's result cache are keyed by a content hash over
the job's config, so the same config must always produce the same
simulation.  Every stochastic choice therefore draws from a
``random.Random`` seeded from the config's *identity* (via
:func:`stable_seed` — deliberately excluding the ``engine`` field so
the reference/fast/batch engines stay bit-identical) plus the
user-visible ``seed`` param.  Tables trained offline
(:mod:`repro.policy.training`) travel *inside* ``policy_params`` as a
compact string, so a trained controller's content hash covers the exact
table it runs.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import fields
from typing import Dict, List, Optional, Tuple

from repro.policy.base import ACTIONS, FeedbackSignals, ThrottlePolicy
from repro.throttle.coordinated import ThrottleDecision
from repro.throttle.levels import (
    DEFAULT_THRESHOLDS,
    MAX_LEVEL,
    ThrottleThresholds,
)

#: discretized state space: coverage class (2) x accuracy class (3) x
#: rival coverage class (2) x ladder level (MAX_LEVEL + 1)
N_LEVELS = MAX_LEVEL + 1
N_STATES = 2 * 3 * 2 * N_LEVELS
N_ACTIONS = len(ACTIONS)

_ACCURACY_INDEX = {"low": 0, "medium": 1, "high": 2}


def state_index(
    coverage: float,
    accuracy: float,
    rival_coverage: float,
    level: int,
    thresholds: ThrottleThresholds = DEFAULT_THRESHOLDS,
) -> int:
    """Map raw signals to a table row, via the Table 4 classifiers."""
    cov = int(thresholds.coverage_is_high(coverage))
    acc = _ACCURACY_INDEX[thresholds.accuracy_class(accuracy)]
    rival = int(thresholds.coverage_is_high(rival_coverage))
    lvl = max(0, min(MAX_LEVEL, int(level)))
    return ((cov * 3 + acc) * 2 + rival) * N_LEVELS + lvl


def reward(coverage: float, accuracy: float, bpki: float,
           penalty: float) -> float:
    """Perf-per-bandwidth shaped reward for one interval."""
    return coverage + accuracy - penalty * bpki / 100.0


def zero_table() -> List[List[float]]:
    """A fresh all-zeros Q table (N_STATES rows x N_ACTIONS columns)."""
    return [[0.0] * N_ACTIONS for _ in range(N_STATES)]


def encode_q(table: List[List[float]]) -> str:
    """Flatten a Q table to the compact ``policy_params`` string form.

    ``|``-separated ``%.6g`` floats — no commas, so the value embeds in
    the ``key=value,key=value`` params grammar unescaped.
    """
    return "|".join(f"{q:.6g}" for row in table for q in row)


def decode_q(text: str) -> List[List[float]]:
    """Inverse of :func:`encode_q`; raises ValueError on a bad shape."""
    values = [float(v) for v in text.split("|")] if text else []
    if len(values) != N_STATES * N_ACTIONS:
        raise ValueError(
            f"q table must hold {N_STATES * N_ACTIONS} values "
            f"({N_STATES} states x {N_ACTIONS} actions), got {len(values)}"
        )
    return [
        values[i * N_ACTIONS:(i + 1) * N_ACTIONS] for i in range(N_STATES)
    ]


def greedy_action(row: List[float]) -> int:
    """Deterministic argmax: first index of the maximum (down,hold,up)."""
    best = 0
    for index in range(1, N_ACTIONS):
        if row[index] > row[best]:
            best = index
    return best


def stable_seed(config, extra: int = 0) -> int:
    """A deterministic RNG seed derived from a config's *identity*.

    Excludes ``engine``: the three engines must make identical throttling
    decisions (the differential harness compares them bit-for-bit), and
    which kernel executes the trace is not part of what the simulation
    computes.  Everything else — including ``policy_params`` itself —
    feeds the digest, so two content-distinct jobs never share an
    exploration stream by accident.
    """
    if config is None:
        return extra & 0xFFFFFFFF
    payload = {
        field.name: getattr(config, field.name)
        for field in fields(config)
        if field.name != "engine"
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=repr).encode("utf-8")
    ).digest()
    return (int.from_bytes(digest[:8], "big") ^ extra) & 0xFFFFFFFFFFFFFFFF


class QLearningPolicy(ThrottlePolicy):
    """Epsilon-greedy tabular Q-learning over the feedback state space.

    Modes:

    * *online* (default): starts from an all-zeros (or supplied) table
      and keeps learning during the run, exploration seeded
      deterministically;
    * *offline-trained*: construct with ``q=<encoded table>`` plus
      ``epsilon=0, learn=0`` (what ``repro train-policy`` emits) for a
      pure greedy replay of the trained table.
    """

    name = "qlearn"
    needs_system = True  # the reward term consumes interval BPKI
    min_prefetchers = 1

    def __init__(
        self,
        alpha: float = 0.2,
        gamma: float = 0.6,
        epsilon: float = 0.1,
        penalty: float = 0.5,
        seed: int = 0,
        learn: bool = True,
        q: Optional[str] = None,
        thresholds: ThrottleThresholds = DEFAULT_THRESHOLDS,
        config=None,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 <= gamma < 1.0:
            raise ValueError(f"gamma must be in [0, 1), got {gamma}")
        self.alpha = alpha
        self.gamma = gamma
        self.epsilon = epsilon
        self.penalty = penalty
        self.learn = learn
        self.table = decode_q(q) if q else zero_table()
        self.thresholds = thresholds
        self._seed = stable_seed(config, extra=seed)
        self._rng = random.Random(self._seed)
        #: per-prefetcher (state, action) awaiting its reward
        self._pending: Dict[str, Tuple[int, int]] = {}

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._pending.clear()

    def decide(self, signals: FeedbackSignals) -> ThrottleDecision:
        state = state_index(
            signals.coverage,
            signals.accuracy,
            signals.rival_coverage,
            signals.level,
            self.thresholds,
        )
        pending = self._pending.get(signals.owner)
        if pending is not None and self.learn:
            prev_state, prev_action = pending
            observed = reward(
                signals.coverage, signals.accuracy, signals.bpki,
                self.penalty,
            )
            row = self.table[prev_state]
            target = observed + self.gamma * max(self.table[state])
            row[prev_action] += self.alpha * (target - row[prev_action])
        if self.epsilon and self._rng.random() < self.epsilon:
            action = self._rng.randrange(N_ACTIONS)
        else:
            action = greedy_action(self.table[state])
        self._pending[signals.owner] = (state, action)
        return ThrottleDecision("", 0, ACTIONS[action], 0, 0, 0)
