"""Policy registry: names, the params grammar, validation, construction.

The ``policy_params`` grammar is a flat ``key=value,key=value`` string
(not a dict) because :class:`~repro.core.config.SystemConfig` is a
frozen dataclass used as a hash key — in the runner's result cache and,
wholesale, in the sweep engine's content-addressed job identity.  A
string keeps the config hashable and makes the trained Q table (encoded
with ``|`` separators, commaless by construction) part of the job's
content hash with zero extra machinery.

``validate_policy`` mirrors ``SystemConfig.validate``'s contract:
returns a ``{field: message}`` problems dict (empty when fine) instead
of raising, so config validation can merge policy problems into its own
and report everything at once.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.policy.base import ThrottlePolicy
from repro.policy.controller import PolicyThrottle
from repro.policy.pid import PidAccuracyPolicy
from repro.policy.qlearn import QLearningPolicy, decode_q
from repro.policy.static import StaticLevelPolicy
from repro.policy.table3 import Table3Policy
from repro.throttle.levels import MAX_LEVEL, ThrottleThresholds

#: name -> (allowed params, factory); factories take the parsed params
#: dict plus thresholds and (for seeding) the config
_QLEARN_PARAMS = (
    "alpha", "gamma", "epsilon", "penalty", "seed", "learn", "q",
)
_PID_PARAMS = ("kp", "ki", "kd", "target", "windup", "deadband")

POLICY_NAMES = ("table3", "qlearn", "bandit", "pid", "static")


def parse_policy_params(text: str) -> Dict[str, str]:
    """``"k=v,k2=v2"`` -> dict; raises ValueError on malformed entries."""
    params: Dict[str, str] = {}
    if not text:
        return params
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        if "=" not in entry:
            raise ValueError(
                f"policy param {entry!r} is not of the form key=value"
            )
        key, _, value = entry.partition("=")
        key = key.strip()
        if not key:
            raise ValueError(f"policy param {entry!r} has an empty key")
        if key in params:
            raise ValueError(f"policy param {key!r} given twice")
        params[key] = value.strip()
    return params


def _coerce(params: Dict[str, str], floats: tuple = (),
            ints: tuple = ()) -> Dict[str, object]:
    out: Dict[str, object] = {}
    for key, value in params.items():
        if key in floats:
            out[key] = float(value)
        elif key in ints:
            out[key] = int(value)
        else:
            out[key] = value
    return out


def _make_table3(params, thresholds, config) -> ThrottlePolicy:
    return Table3Policy(thresholds)


def _make_static(params, thresholds, config) -> ThrottlePolicy:
    kwargs = _coerce(params, ints=("level",))
    return StaticLevelPolicy(**kwargs)


def _make_pid(params, thresholds, config) -> ThrottlePolicy:
    kwargs = _coerce(params, floats=_PID_PARAMS)
    return PidAccuracyPolicy(**kwargs)


def _make_qlearn(params, thresholds, config) -> ThrottlePolicy:
    kwargs = _coerce(
        params,
        floats=("alpha", "gamma", "epsilon", "penalty"),
        ints=("seed", "learn"),
    )
    if "learn" in kwargs:
        kwargs["learn"] = bool(kwargs["learn"])
    return QLearningPolicy(thresholds=thresholds, config=config, **kwargs)


def _make_bandit(params, thresholds, config) -> ThrottlePolicy:
    if "gamma" in params and float(params["gamma"]) != 0.0:
        raise ValueError("the bandit policy is qlearn with gamma pinned "
                         "to 0; drop the gamma param or use qlearn")
    params = dict(params)
    params["gamma"] = "0"
    policy = _make_qlearn(params, thresholds, config)
    policy.name = "bandit"
    return policy


_FACTORIES: Dict[str, Callable] = {
    "table3": _make_table3,
    "qlearn": _make_qlearn,
    "bandit": _make_bandit,
    "pid": _make_pid,
    "static": _make_static,
}

_ALLOWED_PARAMS: Dict[str, tuple] = {
    "table3": (),
    "qlearn": _QLEARN_PARAMS,
    "bandit": _QLEARN_PARAMS,
    "pid": _PID_PARAMS,
    "static": ("level",),
}


def validate_policy(name: str, params_text: str) -> Dict[str, str]:
    """Problems dict for a policy selection; empty when valid."""
    problems: Dict[str, str] = {}
    if name not in POLICY_NAMES:
        problems["throttle_policy"] = (
            f"must be one of {POLICY_NAMES} (got {name!r})"
        )
        return problems
    try:
        params = parse_policy_params(params_text)
    except ValueError as error:
        problems["policy_params"] = str(error)
        return problems
    allowed = _ALLOWED_PARAMS[name]
    unknown = sorted(key for key in params if key not in allowed)
    if unknown:
        expected = ", ".join(allowed) if allowed else "none"
        problems["policy_params"] = (
            f"unknown params for policy {name!r}: "
            f"{', '.join(unknown)} (expected: {expected})"
        )
        return problems
    try:
        _FACTORIES[name](params, ThrottleThresholds(), None)
    except (ValueError, TypeError) as error:
        problems["policy_params"] = str(error)
    return problems


def create_policy(config) -> ThrottlePolicy:
    """Build the policy a :class:`SystemConfig` selects.

    Raises :class:`ValueError` on an unknown name or bad params —
    ``SystemConfig.validate`` catches these earlier with field-level
    messages, so reaching an exception here means validation was
    skipped.
    """
    name = getattr(config, "throttle_policy", "table3")
    if name not in _FACTORIES:
        raise ValueError(f"unknown throttle policy {name!r}")
    params = parse_policy_params(getattr(config, "policy_params", ""))
    thresholds = ThrottleThresholds(
        t_coverage=config.t_coverage,
        a_low=config.a_low,
        a_high=config.a_high,
    )
    return _FACTORIES[name](params, thresholds, config)


def controller_for(throttled: List, config) -> Optional[PolicyThrottle]:
    """The runner's seam: a controller for this core, or None.

    None means "leave the prefetchers at their configured levels" —
    exactly what the pre-policy runner did when coordinated throttling
    had fewer than two prefetchers to coordinate.
    """
    policy = create_policy(config)
    if len(throttled) < policy.min_prefetchers:
        return None
    return PolicyThrottle(throttled, policy)
