"""PID-on-accuracy controller with anti-windup.

A classical control baseline between the paper's heuristic and the
learned policies: treat each prefetcher's smoothed accuracy (Eq. 1) as
the process variable, its aggressiveness ladder as the actuator, and
drive accuracy toward a setpoint.  Accuracy above target means the
prefetcher can afford to be more aggressive (throttle up); accuracy
below target means its prefetches are wasting bandwidth (throttle
down).

Anti-windup is the load-bearing detail.  The actuator saturates hard —
four ladder steps — and accuracy can sit at zero for long stretches
(cold structures, phase changes), so a naive integrator accumulates a
huge negative error sum and then refuses to throttle back up for
hundreds of intervals after behaviour recovers.  Two standard guards:

* *conditional integration*: the error is not integrated while the
  actuator is saturated in the direction the error is pushing;
* *clamping*: the integral term is clamped to ``±windup``.

``tests/test_policy_properties.py`` asserts both (the integral bound,
and bounded recovery after a long saturated stretch).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.policy.base import FeedbackSignals, ThrottlePolicy
from repro.throttle.coordinated import ThrottleDecision
from repro.throttle.levels import MAX_LEVEL


class PidAccuracyPolicy(ThrottlePolicy):
    """PID on the accuracy error, one loop per prefetcher."""

    name = "pid"
    needs_system = False
    min_prefetchers = 1

    def __init__(
        self,
        kp: float = 1.5,
        ki: float = 0.4,
        kd: float = 0.0,
        target: float = 0.55,
        windup: float = 2.0,
        deadband: float = 0.25,
    ) -> None:
        if windup <= 0:
            raise ValueError(f"windup clamp must be positive, got {windup}")
        if deadband < 0:
            raise ValueError(f"deadband must be >= 0, got {deadband}")
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.target = target
        self.windup = windup
        self.deadband = deadband
        #: per-prefetcher loop state: (integral, previous error)
        self._state: Dict[str, Tuple[float, float]] = {}

    def reset(self) -> None:
        self._state.clear()

    def integral(self, owner: str) -> float:
        """Current integral term (exposed for the anti-windup tests)."""
        return self._state.get(owner, (0.0, 0.0))[0]

    def decide(self, signals: FeedbackSignals) -> ThrottleDecision:
        integral, previous = self._state.get(signals.owner, (0.0, 0.0))
        # positive error = accuracy surplus = push the ladder up
        error = signals.accuracy - self.target
        saturated_up = signals.level >= MAX_LEVEL and error > 0
        saturated_down = signals.level <= 0 and error < 0
        if not (saturated_up or saturated_down):
            integral += error
        integral = max(-self.windup, min(self.windup, integral))
        derivative = error - previous
        self._state[signals.owner] = (integral, error)
        control = self.kp * error + self.ki * integral + self.kd * derivative
        if control > self.deadband:
            action = "up"
        elif control < -self.deadband:
            action = "down"
        else:
            action = "hold"
        return ThrottleDecision("", 0, action, 0, 0, 0)
