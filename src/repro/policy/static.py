"""Static-level baseline policies: pin every prefetcher at one level.

The tournament's control group.  ``static`` with ``level=3`` reproduces
the no-throttling baseline (every prefetcher starts and stays at
Aggressive); lower levels give the fixed conservative configurations
the paper's Table 2 sweeps by hand.
"""

from __future__ import annotations

from repro.policy.base import FeedbackSignals, ThrottlePolicy
from repro.throttle.coordinated import ThrottleDecision
from repro.throttle.levels import MAX_LEVEL


class StaticLevelPolicy(ThrottlePolicy):
    """Walk every prefetcher to ``level`` and hold it there."""

    name = "static"
    needs_system = False
    min_prefetchers = 1

    def __init__(self, level: int = MAX_LEVEL) -> None:
        if not 0 <= level <= MAX_LEVEL:
            raise ValueError(
                f"static level must be within 0..{MAX_LEVEL}, got {level}"
            )
        self.level = level

    def decide(self, signals: FeedbackSignals) -> ThrottleDecision:
        if signals.level < self.level:
            action = "up"
        elif signals.level > self.level:
            action = "down"
        else:
            action = "hold"
        return ThrottleDecision("", 0, action, 0, 0, 0)
