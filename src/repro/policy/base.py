"""Throttling-policy protocol: per-interval signals in, level moves out.

The paper hard-wires one controller — the Table 3 heuristic — between
the feedback collector and the prefetchers' aggressiveness ladders.
This package turns that junction into a *pluggable* decision layer: a
:class:`ThrottlePolicy` observes one :class:`FeedbackSignals` snapshot
per prefetcher per feedback interval and answers with an action from
:data:`ACTIONS` (``"down"``/``"hold"``/``"up"``, one ladder step at
most, exactly the actuation surface Table 3 has).  The generic
:class:`~repro.policy.controller.PolicyThrottle` adapter drives any
policy through the same ``FeedbackCollector.on_interval`` hook the
original controller used, on every engine.

Signals split in two tiers.  The *feedback* tier (coverage, accuracy,
rival coverage, current level) is exactly what Table 3 consumes and is
always populated.  The *system* tier (interval BPKI, interval demand
misses, DRAM request-buffer occupancy, L2 MSHR pressure) is the wider
observation vector the telemetry subsystem records — what Coordinated
RL Prefetching feeds its agents — and is probed only when a policy
declares ``needs_system``, so the default path does no extra work.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.throttle.coordinated import ThrottleDecision

#: every action a policy may take on one prefetcher in one interval
ACTIONS = ("down", "hold", "up")


@dataclass(frozen=True)
class FeedbackSignals:
    """One prefetcher's observation for one feedback interval.

    ``coverage``, ``accuracy`` and ``rival_coverage`` are the smoothed
    Eq. 1/2 values the collector just rolled — bit-identical to what the
    hard-wired heuristic read.  ``level`` is the prefetcher's ladder
    position *before* this interval's decision.  The system tier
    (``bpki`` .. ``mshr_occupancy``) is zero unless the active policy
    declares ``needs_system``.
    """

    owner: str
    interval: int
    coverage: float
    accuracy: float
    rival_coverage: float
    level: int
    # -- system tier (probed only for needs_system policies) ---------------
    bpki: float = 0.0
    demand_misses: int = 0
    dram_occupancy: int = 0
    mshr_occupancy: int = 0


class ThrottlePolicy(ABC):
    """One aggressiveness decision per prefetcher per feedback interval.

    Policies are *per-core* objects: construct one per simulated core
    (the runner does), never share instances across cores or runs.
    Stateful policies (PID integrators, Q tables) key any per-prefetcher
    state by ``signals.owner``.
    """

    #: registry name (set by subclasses; shown in exports and benches)
    name: str = "?"

    #: True when :meth:`decide` consumes the system-tier signals; the
    #: controller skips probing BPKI/DRAM/MSHR state when False, keeping
    #: the default path's per-interval work identical to the pre-policy
    #: controller's
    needs_system: bool = False

    #: fewest prefetchers the policy can coordinate (Table 3 needs a
    #: rival, so it requires 2; single-knob policies work from 1)
    min_prefetchers: int = 1

    @abstractmethod
    def decide(self, signals: FeedbackSignals) -> ThrottleDecision:
        """The decision for one prefetcher this interval.

        Returns a :class:`~repro.throttle.coordinated.ThrottleDecision`
        whose ``action`` is one of :data:`ACTIONS`; ``case`` is the
        Table 3 case number for the table3 policy and 0 for everything
        else.  The controller fills the owner/coverage/accuracy/rival
        fields, so policies may leave them blank.
        """

    def reset(self) -> None:
        """Drop per-run state (new simulation, same policy object)."""
