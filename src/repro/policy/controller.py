"""Generic controller driving any :class:`ThrottlePolicy` per interval.

:class:`PolicyThrottle` occupies exactly the seat the hard-wired
:class:`~repro.throttle.coordinated.CoordinatedThrottle` held: it
attaches to ``FeedbackCollector.on_interval`` (firing after the Eq. 3
roll, before the telemetry recorder) and keeps the same two invariants
the differential harness depends on:

* *snapshot-then-act*: every prefetcher's signals are captured before
  any level moves, so decision order among prefetchers cannot matter;
* *trajectory*: each interval's decisions append to ``self.decisions``
  as :class:`~repro.throttle.coordinated.ThrottleDecision` objects with
  owner/coverage/accuracy/rival filled in, the exact shape telemetry's
  duck-typed ``_capture_decisions`` and the harness extract.

System-tier signals (interval BPKI, demand-miss delta, DRAM/MSHR
occupancy) are probed once per interval and only when the policy
declares ``needs_system`` — the default table3 path does no work the
pre-policy controller didn't.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.policy.base import FeedbackSignals, ThrottlePolicy
from repro.prefetch.base import Prefetcher
from repro.throttle.coordinated import ThrottleDecision
from repro.throttle.feedback import FeedbackCollector


class PolicyThrottle:
    """Drives one :class:`ThrottlePolicy` over a core's prefetchers."""

    def __init__(
        self,
        prefetchers: Sequence[Prefetcher],
        policy: ThrottlePolicy,
    ) -> None:
        if len(prefetchers) < policy.min_prefetchers:
            raise ValueError(
                f"policy {policy.name!r} coordinates at least "
                f"{policy.min_prefetchers} prefetchers, got "
                f"{len(prefetchers)}"
            )
        self.prefetchers = list(prefetchers)
        self.policy = policy
        self.decisions: List[ThrottleDecision] = []
        # system-tier probe state, populated by install()
        self._core = None
        self._dram = None
        self._last_bus = 0
        self._last_retired = 0
        self._last_misses = 0

    def install(self, core, dram) -> None:
        """Bind the system-tier probes (called by the runner per core).

        Optional: a controller that is never installed simply reports
        zeros for the system tier, which is also what non-``needs_system``
        policies always see.
        """
        self.policy.reset()
        if not self.policy.needs_system:
            return
        self._core = core
        self._dram = dram
        self._last_bus = core.bus_transfers
        self._last_retired = core.retired
        self._last_misses = core.feedback.lifetime_misses

    def attach(self, collector: FeedbackCollector) -> None:
        collector.on_interval = self.on_interval

    # -- interval hook -------------------------------------------------------

    def _system_signals(self) -> Tuple[float, int, int, int]:
        """(bpki, demand-miss delta, dram occupancy, mshr occupancy)."""
        core = self._core
        if core is None:
            return 0.0, 0, 0, 0
        from repro.telemetry.registry import dram_occupancy

        bus = core.bus_transfers
        retired = core.retired
        misses = core.feedback.lifetime_misses
        d_bus = bus - self._last_bus
        d_retired = retired - self._last_retired
        d_misses = misses - self._last_misses
        self._last_bus = bus
        self._last_retired = retired
        self._last_misses = misses
        return (
            (d_bus / d_retired * 1000.0) if d_retired else 0.0,
            d_misses,
            dram_occupancy(self._dram, core.cycle),
            len(core._outstanding),
        )

    def on_interval(self, collector: FeedbackCollector) -> None:
        interval = collector.intervals_completed
        snapshot: Dict[str, Tuple[float, float, int]] = {}
        for prefetcher in self.prefetchers:
            name = prefetcher.name
            snapshot[name] = (
                collector.coverage(name),
                collector.accuracy(name),
                prefetcher.level,
            )
        if self.policy.needs_system:
            bpki, d_misses, dram_occ, mshr_occ = self._system_signals()
        else:
            bpki, d_misses, dram_occ, mshr_occ = 0.0, 0, 0, 0
        for prefetcher in self.prefetchers:
            name = prefetcher.name
            coverage, accuracy, level = snapshot[name]
            rival_coverage = max(
                (cov for other, (cov, __, ___) in snapshot.items()
                 if other != name),
                default=0.0,
            )
            decision = self.policy.decide(FeedbackSignals(
                owner=name,
                interval=interval,
                coverage=coverage,
                accuracy=accuracy,
                rival_coverage=rival_coverage,
                level=level,
                bpki=bpki,
                demand_misses=d_misses,
                dram_occupancy=dram_occ,
                mshr_occupancy=mshr_occ,
            ))
            decision.owner = name
            decision.coverage = coverage
            decision.accuracy = accuracy
            decision.rival_coverage = rival_coverage
            self.decisions.append(decision)
            if decision.action == "up":
                prefetcher.throttle_up()
            elif decision.action == "down":
                prefetcher.throttle_down()
