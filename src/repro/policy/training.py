"""Offline policy training over recorded telemetry interval series.

The data flow the tournament (and ``repro train-policy``) uses:

1. a sweep or trace run with telemetry records one JSONL series per
   cell (``repro sweep --telemetry`` / ``repro trace --series``), one
   row per feedback interval with per-prefetcher accuracy, coverage and
   post-decision level plus interval BPKI;
2. :func:`transitions_from_series` reconstructs the controller's
   experience from those rows — state before the decision, the action
   the level delta implies, the reward the *next* interval paid out;
3. :func:`train_q_table` replays that experience through the standard
   Q-learning update for a fixed number of epochs.

Training is a pure, order-preserving fold: no RNG, no set/dict
iteration over unordered keys, files processed in the order given and
rows in file order.  Replaying the same series therefore yields the
bit-identical table (the *training-replay invariance* property test),
which is what lets a trained table participate in content-addressed
job identity.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.policy.qlearn import (
    ACTIONS,
    encode_q,
    greedy_action,
    reward,
    state_index,
    zero_table,
)
from repro.throttle.levels import DEFAULT_THRESHOLDS, ThrottleThresholds

#: (state, action, reward, next_state) — one step of controller experience
Transition = Tuple[int, int, float, int]

_ACTION_INDEX = {name: index for index, name in enumerate(ACTIONS)}


def collect_series_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into an ordered list of series files.

    Directories contribute their ``*.series.jsonl`` children sorted by
    name (deterministic), so pointing at a sweep's ``<name>-series/``
    directory trains on every recorded cell.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.glob("*.series.jsonl")))
        elif path.exists():
            files.append(path)
        else:
            raise ConfigError(f"no series file or directory at {raw}")
    if not files:
        raise ConfigError(
            "no .series.jsonl files found; record some with "
            "`repro sweep --telemetry` or `repro trace --series`"
        )
    return files


def load_series_rows(path: Path) -> List[Dict[str, Any]]:
    """Parse one series JSONL file, skipping blank lines."""
    rows: List[Dict[str, Any]] = []
    with open(path) as stream:
        for line_number, line in enumerate(stream, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError as error:
                raise ConfigError(
                    f"{path}:{line_number}: not JSON: {error}"
                ) from None
            if isinstance(row, dict):
                rows.append(row)
    return rows


def _rival_coverage(prefetchers: Dict[str, Any], owner: str) -> float:
    return max(
        (
            float(metrics.get("coverage", 0.0))
            for name, metrics in prefetchers.items()
            if name != owner
        ),
        default=0.0,
    )


def transitions_from_series(
    rows: Iterable[Dict[str, Any]],
    penalty: float = 0.5,
    thresholds: ThrottleThresholds = DEFAULT_THRESHOLDS,
) -> List[Transition]:
    """Reconstruct controller experience from recorded interval rows.

    Recorded levels are *post-decision*: at interval *t* the controller
    observed the signals row *t* carries while still at the level row
    *t-1* recorded, then moved one step to row *t*'s level.  The level
    delta names the action (a delta of 0 reads as ``hold`` — a
    boundary-clamped up/down is indistinguishable from hold in the
    series, and is rewarded identically since the level did not move).
    The reward is paid by the *following* row, consistent with the
    one-interval feedback delay of the live controller.

    Rows from different cores (multicore series files) form separate
    streams; decimated series simply yield coarser transitions.
    """
    per_stream: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
    order: List[Tuple[str, str]] = []
    for row in rows:
        prefetchers = row.get("prefetchers")
        if not isinstance(prefetchers, dict):
            continue
        core = str(row.get("core", "core0"))
        for owner in prefetchers:
            key = (core, owner)
            if key not in per_stream:
                per_stream[key] = []
                order.append(key)
            per_stream[key].append(row)

    transitions: List[Transition] = []
    for key in order:
        core, owner = key
        stream = per_stream[key]
        for prev, cur, nxt in zip(stream, stream[1:], stream[2:]):
            prev_m = prev["prefetchers"][owner]
            cur_m = cur["prefetchers"][owner]
            nxt_m = nxt["prefetchers"][owner]
            state = state_index(
                float(cur_m.get("coverage", 0.0)),
                float(cur_m.get("accuracy", 0.0)),
                _rival_coverage(cur["prefetchers"], owner),
                int(prev_m.get("level", 0)),
                thresholds,
            )
            delta = int(cur_m.get("level", 0)) - int(prev_m.get("level", 0))
            action = _ACTION_INDEX[
                "up" if delta > 0 else "down" if delta < 0 else "hold"
            ]
            next_state = state_index(
                float(nxt_m.get("coverage", 0.0)),
                float(nxt_m.get("accuracy", 0.0)),
                _rival_coverage(nxt["prefetchers"], owner),
                int(cur_m.get("level", 0)),
                thresholds,
            )
            observed = reward(
                float(nxt_m.get("coverage", 0.0)),
                float(nxt_m.get("accuracy", 0.0)),
                float(nxt.get("bpki", 0.0)),
                penalty,
            )
            transitions.append((state, action, observed, next_state))
    return transitions


def train_q_table(
    transitions: Sequence[Transition],
    alpha: float = 0.2,
    gamma: float = 0.6,
    epochs: int = 4,
) -> List[List[float]]:
    """Replay the experience *epochs* times through Q-learning updates."""
    if epochs < 1:
        raise ConfigError(f"epochs must be >= 1, got {epochs}")
    table = zero_table()
    for _ in range(epochs):
        for state, action, observed, next_state in transitions:
            row = table[state]
            target = observed + gamma * max(table[next_state])
            row[action] += alpha * (target - row[action])
    return table


def train_policy(
    series: Sequence[str],
    policy: str = "qlearn",
    alpha: float = 0.2,
    gamma: float = 0.6,
    epsilon: float = 0.0,
    penalty: float = 0.5,
    epochs: int = 4,
    seed: int = 0,
    thresholds: Optional[ThrottleThresholds] = None,
) -> Dict[str, Any]:
    """Train a throttling policy offline; returns the policy-file payload.

    ``policy`` is ``qlearn`` or ``bandit`` (the latter forces
    ``gamma=0`` — each interval rewarded on its own).  The payload's
    ``policy_params`` string is ready to paste into ``sweep
    --policy-params`` (or load via ``--policy-file``); it embeds the
    trained table, the runtime hyperparameters, and ``learn=0`` so the
    replayed controller is purely greedy and deterministic.
    """
    if policy not in ("qlearn", "bandit"):
        raise ConfigError(
            f"only the qlearn/bandit policies are trainable, got {policy!r}"
        )
    if policy == "bandit":
        gamma = 0.0
    thresholds = thresholds or DEFAULT_THRESHOLDS
    files = collect_series_files(series)
    transitions: List[Transition] = []
    rows_total = 0
    for path in files:
        rows = load_series_rows(path)
        rows_total += len(rows)
        transitions.extend(
            transitions_from_series(rows, penalty=penalty,
                                    thresholds=thresholds)
        )
    if not transitions:
        raise ConfigError(
            "the recorded series yielded no transitions (need >= 3 "
            "interval samples per cell); record longer runs or more cells"
        )
    table = train_q_table(transitions, alpha=alpha, gamma=gamma,
                          epochs=epochs)
    visited = sum(1 for row in table if any(row))
    params = {
        "epsilon": epsilon,
        "penalty": penalty,
        "seed": seed,
        "learn": 0,
        "q": encode_q(table),
    }
    policy_params = ",".join(
        f"{key}={value:g}" if isinstance(value, float) else f"{key}={value}"
        for key, value in params.items()
    )
    return {
        "policy": policy,
        "policy_params": policy_params,
        "hyperparameters": {
            "alpha": alpha,
            "gamma": gamma,
            "epsilon": epsilon,
            "penalty": penalty,
            "epochs": epochs,
            "seed": seed,
        },
        "files": [str(path) for path in files],
        "rows": rows_total,
        "transitions": len(transitions),
        "states_visited": visited,
        "greedy_actions": {
            name: sum(
                1 for row in table
                if any(row) and greedy_action(row) == index
            )
            for index, name in enumerate(ACTIONS)
        },
    }
