"""The paper's Table 3 heuristic as a pluggable policy.

This is the *extraction* the policy subsystem is built around: the same
pure :func:`~repro.throttle.coordinated.decide_case` mapping the
hard-wired :class:`~repro.throttle.coordinated.CoordinatedThrottle`
applies, behind the :class:`~repro.policy.base.ThrottlePolicy`
interface.  ``tests/differential/test_policy.py`` holds the two
bit-identical on every engine — the default configuration must behave
exactly as it did before policies existed.
"""

from __future__ import annotations

from repro.policy.base import FeedbackSignals, ThrottlePolicy
from repro.throttle.coordinated import ThrottleDecision, decide_case
from repro.throttle.levels import DEFAULT_THRESHOLDS, ThrottleThresholds


class Table3Policy(ThrottlePolicy):
    """Coordinated feedback-directed throttling (paper Section 4.2)."""

    name = "table3"
    needs_system = False
    #: the heuristic is defined over a deciding prefetcher *and* its
    #: best rival; with one prefetcher there is no rival to coordinate
    #: with, matching the pre-policy controller's >= 2 requirement
    min_prefetchers = 2

    def __init__(
        self, thresholds: ThrottleThresholds = DEFAULT_THRESHOLDS
    ) -> None:
        self.thresholds = thresholds

    def decide(self, signals: FeedbackSignals) -> ThrottleDecision:
        thresholds = self.thresholds
        return decide_case(
            thresholds.coverage_is_high(signals.coverage),
            thresholds.accuracy_class(signals.accuracy),
            thresholds.coverage_is_high(signals.rival_coverage),
        )
