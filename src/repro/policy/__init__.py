"""Pluggable throttling policies (see DESIGN.md, "Throttling policies").

The junction between the feedback collector and the prefetchers'
aggressiveness ladders, made swappable: the paper's Table 3 heuristic
(the default, bit-identical to the pre-policy controller), a tabular
Q-learning / contextual-bandit pair trainable offline on recorded
telemetry series, a PID-on-accuracy loop with anti-windup, and static
pinned-level baselines.  ``benchmarks/bench_policy_tournament.py`` races
them on performance per unit of bandwidth.
"""

from repro.policy.base import ACTIONS, FeedbackSignals, ThrottlePolicy
from repro.policy.controller import PolicyThrottle
from repro.policy.pid import PidAccuracyPolicy
from repro.policy.qlearn import QLearningPolicy
from repro.policy.registry import (
    POLICY_NAMES,
    controller_for,
    create_policy,
    parse_policy_params,
    validate_policy,
)
from repro.policy.static import StaticLevelPolicy
from repro.policy.table3 import Table3Policy
from repro.policy.training import train_policy

__all__ = [
    "ACTIONS",
    "FeedbackSignals",
    "ThrottlePolicy",
    "PolicyThrottle",
    "PidAccuracyPolicy",
    "QLearningPolicy",
    "POLICY_NAMES",
    "controller_for",
    "create_policy",
    "parse_policy_params",
    "validate_policy",
    "StaticLevelPolicy",
    "Table3Policy",
    "train_policy",
]
