"""repro — reproduction of "Techniques for Bandwidth-Efficient Prefetching
of Linked Data Structures in Hybrid Prefetching Systems" (HPCA 2009).

Public API quick map:

* :func:`repro.run_benchmark` / :func:`repro.run_multicore` — run a
  benchmark analog under any mechanism preset ("baseline", "cdp",
  "ecdp+throttle", ...) and get IPC / BPKI / accuracy / coverage.
* :mod:`repro.prefetch` — stream, CDP/ECDP, Markov, GHB, DBP prefetchers.
* :mod:`repro.compiler` — pointer-group profiling and hint bit vectors.
* :mod:`repro.throttle` — coordinated throttling plus FDP and Gendler
  baselines.
* :mod:`repro.workloads` — the 15 pointer-intensive benchmark analogs and
  the streaming set.
* :mod:`repro.cost` — the Table 7 hardware cost model.
* :mod:`repro.experiments.engine` — resilient sweep execution:
  crash-isolated parallel jobs, timeouts, retries, checkpoint-resume.
* :mod:`repro.errors` — the :class:`~repro.errors.ReproError` taxonomy
  every structured failure derives from.
"""

from repro.core.config import SystemConfig
from repro.core.stats import CoreResult
from repro.errors import (
    ConfigError,
    ReproError,
    TraceFormatError,
    UnknownNameError,
)
from repro.experiments.configs import MECHANISMS, Mechanism, get_mechanism
from repro.experiments.engine import (
    CheckpointJournal,
    ExecutionEngine,
    Job,
    RetryPolicy,
)
from repro.experiments.runner import (
    profile_benchmark,
    run_benchmark,
    run_multicore,
)
from repro.workloads.registry import (
    all_names,
    get_workload,
    non_pointer_names,
    pointer_intensive_names,
)

__version__ = "1.0.0"

__all__ = [
    "CheckpointJournal",
    "ConfigError",
    "CoreResult",
    "ExecutionEngine",
    "Job",
    "MECHANISMS",
    "Mechanism",
    "ReproError",
    "RetryPolicy",
    "SystemConfig",
    "TraceFormatError",
    "UnknownNameError",
    "all_names",
    "get_mechanism",
    "get_workload",
    "non_pointer_names",
    "pointer_intensive_names",
    "profile_benchmark",
    "run_benchmark",
    "run_multicore",
    "__version__",
]
