"""Shared fixtures: small configurations that keep unit tests fast."""

import pytest

from repro.core.config import SystemConfig
from repro.memory.alloc import ArenaMap
from repro.memory.backing import SimulatedMemory


@pytest.fixture
def memory():
    return SimulatedMemory()


@pytest.fixture
def arenas():
    return ArenaMap()


@pytest.fixture
def tiny_config():
    """A miniature machine: 4 KB L2, short DRAM — unit-test scale."""
    return SystemConfig.scaled().with_overrides(
        l1_size=1024,
        l1_ways=2,
        l2_size=4096,
        l2_ways=4,
        interval_evictions=32,
    )


@pytest.fixture
def scaled_config():
    return SystemConfig.scaled()
