"""Shared fixtures: small configurations that keep unit tests fast."""

import pytest

from repro.core.config import SystemConfig
from repro.memory.alloc import ArenaMap
from repro.memory.backing import SimulatedMemory


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from the current model output",
    )


@pytest.fixture
def update_goldens(request):
    return request.config.getoption("--update-goldens")


@pytest.fixture
def memory():
    return SimulatedMemory()


@pytest.fixture
def arenas():
    return ArenaMap()


@pytest.fixture
def tiny_config():
    """A miniature machine: 4 KB L2, short DRAM — unit-test scale."""
    return SystemConfig.scaled().with_overrides(
        l1_size=1024,
        l1_ways=2,
        l2_size=4096,
        l2_ways=4,
        interval_evictions=32,
    )


@pytest.fixture
def scaled_config():
    return SystemConfig.scaled()
