"""CLI tests: every subcommand runs and prints the expected structure."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["run", "mst", "baseline"],
            ["compare", "mst"],
            ["sweep", "--benchmarks", "mst"],
            ["profile", "mst"],
            ["multicore", "mst", "health"],
            ["trace", "mst"],
            ["trace", "mst", "cdp", "--format", "jsonl"],
            ["cost"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ecdp+throttle" in out
        assert "health" in out

    def test_run(self, capsys):
        assert main(["run", "mst", "baseline", "--input-set", "test"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "BPKI" in out

    def test_run_unknown_benchmark_fails_cleanly(self, capsys):
        assert main(["run", "nope", "baseline"]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_unknown_mechanism_fails_cleanly(self, capsys):
        assert main(["run", "mst", "warp", "--input-set", "test"]) == 2

    def test_compare(self, capsys):
        assert (
            main([
                "compare", "mst", "--input-set", "test",
                "--mechanisms", "baseline", "cdp",
            ])
            == 0
        )
        out = capsys.readouterr().out
        assert "cdp" in out

    def test_sweep(self, capsys):
        assert (
            main([
                "sweep", "--benchmarks", "mst", "--mechanisms", "cdp",
                "--input-set", "test",
            ])
            == 0
        )
        assert "gmean" in capsys.readouterr().out

    def test_profile(self, capsys):
        assert main(["profile", "mst", "--input-set", "test"]) == 0
        out = capsys.readouterr().out
        assert "pointer groups" in out

    def test_multicore(self, capsys):
        assert (
            main([
                "multicore", "mst", "health",
                "--mechanism", "baseline", "--input-set", "test",
            ])
            == 0
        )
        assert "weighted speedup" in capsys.readouterr().out

    def test_cost(self, capsys):
        assert main(["cost", "--paper"]) == 0
        out = capsys.readouterr().out
        assert "2.11 KB" in out

    def test_trace_chrome(self, capsys, tmp_path):
        from repro.telemetry import validate_chrome_trace

        out_file = tmp_path / "mst.trace.json"
        series_file = tmp_path / "mst.series.jsonl"
        assert (
            main([
                "trace", "mst", "cdp", "--input-set", "test",
                "--out", str(out_file), "--series", str(series_file),
            ])
            == 0
        )
        out = capsys.readouterr().out
        assert "events recorded" in out and "chrome://tracing" in out
        assert validate_chrome_trace(out_file) == []
        assert series_file.exists()

    def test_trace_csv(self, capsys, tmp_path):
        out_file = tmp_path / "mst.events.csv"
        assert (
            main([
                "trace", "mst", "cdp", "--input-set", "test",
                "--format", "csv", "--out", str(out_file),
            ])
            == 0
        )
        header = out_file.read_text().splitlines()[0]
        assert header == "core,ts,kind,name,addr,dur,args"

    def test_sweep_telemetry(self, capsys, tmp_path):
        import json
        from pathlib import Path

        export = tmp_path / "out.json"
        assert (
            main([
                "sweep", "--smoke", "--telemetry",
                "--checkpoint-dir", str(tmp_path),
                "--export", str(export),
            ])
            == 0
        )
        records = json.loads(export.read_text())
        assert all("intervals_completed" in r for r in records)
        ok_rows = [r for r in records if r["status"] == "ok"]
        assert ok_rows
        for record in ok_rows:
            # worker persisted one series file per cell
            assert record["series_file"] is not None
            assert Path(record["series_file"]).exists()
