"""Unit tests for the content-directed prefetcher and ECDP filtering."""

import pytest

from repro.compiler.hints import HintTable
from repro.prefetch.cdp import CDP_LEVELS, ContentDirectedPrefetcher

BLOCK = 64
BASE = 0x1000_0000  # compare-region base for all test pointers


def words_with(pointers, n_words=16):
    """A block image with the given {index: value} entries, zero elsewhere."""
    words = [0] * n_words
    for index, value in pointers.items():
        words[index] = value
    return words


class TestScanning:
    def test_pointers_found_by_compare_bits(self):
        cdp = ContentDirectedPrefetcher(BLOCK, compare_bits=8)
        words = words_with({2: BASE + 0x5000, 7: BASE + 0x9000})
        requests = cdp.scan_fill(BASE, words, depth=1, demand_pc=0)
        targets = {r.block_addr for r in requests}
        assert targets == {BASE + 0x5000 & ~63, (BASE + 0x9000) & ~63}

    def test_non_pointer_values_ignored(self):
        cdp = ContentDirectedPrefetcher(BLOCK, compare_bits=8)
        words = words_with({0: 17, 3: 0x7FFF_0000})  # small int, wrong region
        assert cdp.scan_fill(BASE, words, depth=1, demand_pc=0) == []

    def test_null_region_ignored(self):
        cdp = ContentDirectedPrefetcher(BLOCK, compare_bits=0)
        words = words_with({0: 0x800})  # below NULL_REGION_END
        assert cdp.scan_fill(BASE, words, depth=1, demand_pc=0) == []

    def test_self_pointing_block_skipped(self):
        cdp = ContentDirectedPrefetcher(BLOCK, compare_bits=8)
        words = words_with({0: BASE + 8})  # points into the same block
        assert cdp.scan_fill(BASE, words, depth=1, demand_pc=0) == []

    def test_duplicate_targets_deduplicated(self):
        cdp = ContentDirectedPrefetcher(BLOCK, compare_bits=8)
        words = words_with({0: BASE + 0x5000, 1: BASE + 0x5004})
        requests = cdp.scan_fill(BASE, words, depth=1, demand_pc=0)
        assert len(requests) == 1

    def test_depth_recorded_on_requests(self):
        cdp = ContentDirectedPrefetcher(BLOCK, compare_bits=8)
        words = words_with({0: BASE + 0x5000})
        (request,) = cdp.scan_fill(BASE, words, depth=2, demand_pc=None)
        assert request.depth == 2


class TestRecursionDepth:
    def test_beyond_max_depth_returns_nothing(self):
        cdp = ContentDirectedPrefetcher(BLOCK, compare_bits=8)
        cdp.set_level(0)  # max recursion depth 1
        words = words_with({0: BASE + 0x5000})
        assert cdp.scan_fill(BASE, words, depth=2, demand_pc=None) == []

    def test_levels_match_paper_table2(self):
        assert CDP_LEVELS == (1, 2, 3, 4)

    def test_max_depth_follows_level(self):
        cdp = ContentDirectedPrefetcher(BLOCK)
        for level, depth in enumerate(CDP_LEVELS):
            cdp.set_level(level)
            assert cdp.max_recursion_depth == depth


class TestHintFiltering:
    def _hints(self):
        table = HintTable()
        table.add_hint(0x400000, 8)    # offset +8 beneficial
        table.add_hint(0x400000, -4)   # offset -4 beneficial
        return table

    def test_only_hinted_offsets_prefetched(self):
        cdp = ContentDirectedPrefetcher(
            BLOCK, compare_bits=8, hint_filter=self._hints().allows
        )
        # Load accessed byte offset 12; pointers at word indices 3,5 ->
        # byte offsets 12,20 -> deltas +0,+8.
        words = words_with({3: BASE + 0x5000, 5: BASE + 0x6000})
        requests = cdp.scan_fill(
            BASE, words, depth=1, demand_pc=0x400000, accessed_offset=12
        )
        targets = {r.block_addr for r in requests}
        assert targets == {(BASE + 0x6000) & ~63}  # only delta +8

    def test_negative_offsets_respected(self):
        cdp = ContentDirectedPrefetcher(
            BLOCK, compare_bits=8, hint_filter=self._hints().allows
        )
        words = words_with({2: BASE + 0x7000})  # byte 8; accessed 12 -> -4
        requests = cdp.scan_fill(
            BASE, words, depth=1, demand_pc=0x400000, accessed_offset=12
        )
        assert len(requests) == 1

    def test_unhinted_load_prefetches_nothing(self):
        cdp = ContentDirectedPrefetcher(
            BLOCK, compare_bits=8, hint_filter=self._hints().allows
        )
        words = words_with({3: BASE + 0x5000})
        assert (
            cdp.scan_fill(BASE, words, depth=1, demand_pc=0x999999,
                          accessed_offset=0)
            == []
        )

    def test_prefetch_fills_scan_unfiltered(self):
        """Paper Section 3: blocks fetched by CDP prefetches scan ALL."""
        cdp = ContentDirectedPrefetcher(
            BLOCK, compare_bits=8, hint_filter=self._hints().allows
        )
        words = words_with({0: BASE + 0x5000, 9: BASE + 0x6000})
        requests = cdp.scan_fill(BASE, words, depth=2, demand_pc=None)
        assert len(requests) == 2

    def test_filter_statistics(self):
        cdp = ContentDirectedPrefetcher(
            BLOCK, compare_bits=8, hint_filter=self._hints().allows
        )
        words = words_with({3: BASE + 0x5000, 5: BASE + 0x6000})
        cdp.scan_fill(BASE, words, depth=1, demand_pc=0x400000, accessed_offset=12)
        assert cdp.candidates_seen == 2
        assert cdp.candidates_filtered == 1
