"""Telemetry on the multicore path, plus reporting/export surfaces.

Each core of a multiprogrammed mix gets its own disjoint telemetry
stream, interval counts follow each core's own eviction stream (not the
mix's), and the new export columns degrade exactly like the old ones
when a sweep cell failed.
"""

import pytest

from repro.core.config import SystemConfig
from repro.experiments.engine import FailedResult
from repro.experiments.engine.job import JobFailure
from repro.experiments.export import FIELDS, result_record
from repro.experiments.reporting import format_table
from repro.experiments.runner import clear_caches, run_multicore
from repro.telemetry import Telemetry, TelemetryConfig

SMALL = SystemConfig.scaled().with_overrides(
    l2_size=4096, interval_evictions=64
)

MIX = ["mst", "health"]


@pytest.fixture(scope="module")
def multicore_run():
    clear_caches()
    telemetry = Telemetry(TelemetryConfig(series=True, trace=True))
    results = run_multicore(MIX, "ecdp+throttle", SMALL, input_set="test")
    clear_caches()
    telemetry_results = run_multicore(
        MIX, "ecdp+throttle", SMALL, input_set="test", telemetry=telemetry
    )
    clear_caches()
    return telemetry, results, telemetry_results


class TestMulticoreStreams:
    def test_one_stream_per_core(self, multicore_run):
        telemetry, __, __results = multicore_run
        assert sorted(telemetry.streams) == ["core0", "core1"]

    def test_streams_disjoint(self, multicore_run):
        telemetry, __, __results = multicore_run
        core0 = telemetry.stream("core0")
        core1 = telemetry.stream("core1")
        assert core0.core is not core1.core
        assert core0.tracer is not core1.tracer
        assert core0.series is not core1.series
        # different benchmarks -> different interval histories
        assert (
            core0.series.intervals_seen != core1.series.intervals_seen
            or core0.series.samples != core1.series.samples
        )
        # every sample was produced by its own core's collector
        for stream in (core0, core1):
            for sample in stream.series.samples:
                assert sample["cycle"] <= stream.core.cycle

    def test_interval_counts_follow_each_cores_evictions(self, multicore_run):
        telemetry, __, results = multicore_run
        for index, result in enumerate(results):
            stream = telemetry.stream(f"core{index}")
            evictions = stream.core.l2.stats.evictions
            assert result.intervals_completed == (
                evictions // SMALL.interval_evictions
            )
            tail = 1 if stream.core.feedback.tail_flushed else 0
            assert stream.series.intervals_seen == (
                result.intervals_completed + tail
            )

    def test_telemetry_does_not_perturb_multicore(self, multicore_run):
        __, plain, traced = multicore_run
        for before, after in zip(plain, traced):
            assert after == before


class TestExportColumns:
    def make_result(self):
        clear_caches()
        from repro.experiments.runner import run_benchmark

        return run_benchmark("mst", "cdp", SMALL, input_set="test")

    def test_ok_row_carries_intervals_and_series_file(self):
        result = self.make_result()
        record = result_record("mst", "cdp", result,
                               series_file="out/mst.series.jsonl")
        assert set(record) == set(FIELDS)
        assert record["intervals_completed"] == result.intervals_completed > 0
        assert record["series_file"] == "out/mst.series.jsonl"

    def test_ok_row_without_telemetry_has_null_series_file(self):
        record = result_record("mst", "cdp", self.make_result())
        assert record["series_file"] is None

    def test_failed_row_keeps_all_metrics_null(self):
        failed = FailedResult(JobFailure("TimeoutError", "exceeded 5s"))
        record = result_record("mst", "cdp", failed,
                               series_file="ignored.jsonl")
        assert record["status"] == "FAILED(TimeoutError: exceeded 5s)"
        # error_type is the one diagnostic column a failed row keeps
        assert record["error_type"] == "TimeoutError"
        for field in FIELDS:
            if field in ("benchmark", "mechanism", "status", "error_type"):
                continue
            assert record[field] is None, field


class TestReportingRendersNewColumns:
    def test_format_table_with_failed_and_null_cells(self):
        ok = result_record("mst", "cdp", None)  # None -> failed placeholder
        failed = FailedResult(JobFailure("WorkerCrash", "signal 9"))
        headers = ["benchmark", "intervals", "series file"]
        rows = [
            ["mst", 13, "out/mst.series.jsonl"],
            ["health", None, None],
            ["em3d", failed, failed],
        ]
        table = format_table(headers, rows, title="telemetry columns")
        lines = table.splitlines()
        assert "intervals" in lines[1] and "series file" in lines[1]
        assert "13" in table and "out/mst.series.jsonl" in table
        assert "FAILED(WorkerCrash)" in table
        # null metric cells render as the standard dash
        health = next(line for line in lines if "health" in line)
        assert health.split()[-1] == "-"
        assert ok["status"].startswith("FAILED")
