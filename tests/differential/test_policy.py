"""Policy-subsystem differentials.

Two equalities anchor the refactor:

* **Extraction fidelity.**  The default ``table3`` policy driven
  through :class:`~repro.policy.controller.PolicyThrottle` must be
  bit-identical — full snapshot *and* interval-by-interval trajectory,
  including Table 3 case numbers — to the legacy hard-wired
  :class:`~repro.throttle.coordinated.CoordinatedThrottle`, on every
  engine.  The legacy class stays in the tree, frozen, precisely so
  this comparison never goes vacuous.

* **Cross-engine identity.**  Every other policy (static, pid, qlearn
  with its seeded exploration) must agree across reference/fast/batch
  exactly like the rest of the simulator, which is what licenses
  deriving the qlearn RNG seed from config identity *minus* the engine
  field.
"""

import pytest

import repro.experiments.runner as runner
from repro.core.config import SystemConfig
from repro.throttle.coordinated import CoordinatedThrottle
from repro.throttle.levels import ThrottleThresholds
from tests.differential.harness import (
    assert_identical,
    available_engines,
    capture,
    compare_engines,
)

#: small L2 + short interval => tens of feedback intervals on the test
#: input, so trajectory comparisons are never vacuous
INTERVAL_HEAVY = SystemConfig.scaled().with_overrides(
    l2_size=8192, interval_evictions=32
)


def _legacy_controller_for(throttled, config):
    """The pre-policy wiring, reconstructed for comparison."""
    if len(throttled) < 2:
        return None
    thresholds = ThrottleThresholds(
        t_coverage=config.t_coverage,
        a_low=config.a_low,
        a_high=config.a_high,
    )
    return CoordinatedThrottle(throttled, thresholds)


@pytest.mark.parametrize("workload", ["mst", "health"])
def test_table3_policy_bit_identical_to_legacy(workload, monkeypatch):
    """The tentpole invariant: extraction changed nothing, anywhere."""
    for engine in available_engines():
        config = INTERVAL_HEAVY.with_overrides(engine=engine)
        new = capture(workload, "ecdp+throttle", config)
        monkeypatch.setattr(runner, "controller_for",
                            _legacy_controller_for)
        legacy = capture(workload, "ecdp+throttle", config)
        monkeypatch.undo()
        assert legacy["throttle"], "legacy run recorded no trajectory"
        assert_identical({"reference": legacy, engine + "+policy": new})


def test_table3_trajectory_carries_real_cases():
    """The extracted path still reports Table 3 case numbers (1..5),
    not the 0 placeholder the non-heuristic policies use."""
    snapshot = capture("mst", "ecdp+throttle", INTERVAL_HEAVY)
    cases = {case for (_, case, *_rest) in snapshot["throttle"]}
    assert cases and cases <= {1, 2, 3, 4, 5}


@pytest.mark.parametrize("policy,params", [
    ("static", "level=1"),
    ("pid", ""),
    ("qlearn", "epsilon=0.2,seed=11"),
    ("bandit", ""),
])
def test_policies_bit_identical_across_engines(policy, params):
    config = INTERVAL_HEAVY.with_overrides(
        throttle_policy=policy, policy_params=params
    )
    snapshots = compare_engines("mst", "ecdp+throttle", config=config)
    assert snapshots["reference"]["throttle"], (
        "expected at least one policy decision"
    )
    assert_identical(snapshots)


def test_policy_changes_job_identity():
    """policy fields ride the config into the sweep job content hash."""
    from repro.experiments.engine.job import Job

    base = Job("mst", "ecdp+throttle", INTERVAL_HEAVY)
    static = Job("mst", "ecdp+throttle", INTERVAL_HEAVY.with_overrides(
        throttle_policy="static", policy_params="level=1"
    ))
    params_only = Job("mst", "ecdp+throttle", INTERVAL_HEAVY.with_overrides(
        throttle_policy="static", policy_params="level=2"
    ))
    keys = {base.key(), static.key(), params_only.key()}
    assert len(keys) == 3
