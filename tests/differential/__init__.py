"""Differential correctness: the fast engine must be bit-identical to
the reference engine on every observable statistic."""
