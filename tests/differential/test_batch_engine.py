"""Batch-engine differentials beyond the shared matrix.

Two properties the (workload x mechanism) matrix cannot see:

* **Telemetry transparency.**  Attaching a telemetry stream (interval
  series, optionally the event tracer) must not perturb the batch
  engine's simulation, and the *recorded* series/trajectory/trace must
  be bit-identical across all three engines — the batch engine
  reconstructs interval state (MSHR occupancy, DRAM occupancy, derived
  counters) at boundaries rather than maintaining it per op, and this
  is where that reconstruction is observable.

* **Chunk-split invariance.**  The batch engine vectorizes per-chunk
  derivations (``chunk_ops`` ops at a time).  Results must not depend
  on where chunk seams fall relative to interval boundaries, dependency
  edges, or the trace end — a hypothesis sweep over arbitrary chunk
  sizes must reproduce the fast engine's snapshot exactly.
"""

import pytest

from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.core.config import SystemConfig
from repro.core.tracefile import TraceArrays
from repro.experiments.configs import get_mechanism
from repro.experiments.runner import build_core, hint_filter_for, make_dram
from repro.telemetry.session import Telemetry, TelemetryConfig
from repro.workloads.registry import get_workload
from tests.differential.harness import capture

np = pytest.importorskip("numpy")

#: small caches + short intervals: several boundaries inside one run
SMALL = SystemConfig.scaled().with_overrides(
    l2_size=4096, interval_evictions=64
)

ENGINES = ("reference", "fast", "batch")


@pytest.mark.parametrize("trace_on", [False, True])
@pytest.mark.parametrize(
    "workload,mechanism",
    [("mst", "no-prefetch"), ("mst", "ecdp+throttle")],
)
def test_telemetry_runs_identical(workload, mechanism, trace_on):
    probes = {}
    for engine in ENGINES:
        session = Telemetry(TelemetryConfig(series=True, trace=trace_on))
        stream = session.stream("core0")
        snapshot = capture(
            workload,
            mechanism,
            SMALL.with_overrides(engine=engine),
            telemetry=stream,
        )
        probes[engine] = {
            "snapshot": snapshot,
            "samples": stream.series.samples,
            "trajectory": stream.series.trajectory,
            "trace": stream.tracer.snapshot() if trace_on else None,
        }
    reference = probes["reference"]
    assert reference["samples"], "expected at least one interval sample"
    for engine in ("fast", "batch"):
        for key, expected in reference.items():
            assert probes[engine][key] == expected, (
                f"engine {engine!r} diverges on telemetry {key}"
            )


def _run_batch(config: SystemConfig, arrays: TraceArrays, chunk_ops: int):
    """One batch run of *arrays* with an explicit chunk size."""
    mech = get_mechanism("no-prefetch")
    cfg = config.with_overrides(engine="batch")
    instance = get_workload("mst").build("train")
    dram = make_dram(cfg, n_cores=1)
    core = build_core(
        mech, cfg, instance, dram, hint_filter_for(mech, "mst", cfg, "train")
    )
    core.chunk_ops = chunk_ops
    result = core.run(arrays)
    return result, core.l1.stats, core.l2.stats, dram.stats


class TestChunkSplitInvariance:
    config = SystemConfig.scaled().with_overrides(
        l2_size=8192, interval_evictions=32
    )

    @classmethod
    def expected(cls):
        if not hasattr(cls, "_expected"):
            mech = get_mechanism("no-prefetch")
            cfg = cls.config.with_overrides(engine="fast")
            instance = get_workload("mst").build("train")
            ops = list(instance.trace())
            dram = make_dram(cfg, n_cores=1)
            core = build_core(
                mech, cfg, instance, dram,
                hint_filter_for(mech, "mst", cfg, "train"),
            )
            result = core.run(ops)
            cls._arrays = TraceArrays.from_ops(ops)
            cls._expected = (result, core.l1.stats, core.l2.stats, dram.stats)
        return cls._arrays, cls._expected

    @given(chunk_ops=st.integers(min_value=1, max_value=1 << 17))
    @example(chunk_ops=1)
    @example(chunk_ops=17)
    @example(chunk_ops=1 << 16)
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_any_chunk_size_matches_fast_engine(self, chunk_ops):
        arrays, expected = self.expected()
        assert _run_batch(self.config, arrays, chunk_ops) == expected
