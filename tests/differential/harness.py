"""Harness: run one evaluation cell under every engine, capture everything.

A *snapshot* is every externally observable statistic of one simulation:
the :class:`~repro.core.stats.CoreResult` (cycles, IPC inputs, per-
prefetcher issue/useful/harmful/late counts), both caches' counters, the
DRAM controller's counters, prefetch-queue drops, each throttled
prefetcher's final aggressiveness level, and — when coordinated
throttling is attached — the full interval-by-interval throttle
trajectory (case, action, coverage, accuracy, rival coverage per
decision).

``compare_engines`` produces one snapshot per *available* engine for
one (workload, mechanism, input set) cell — reference and fast always,
batch when numpy (the [perf] extra) is importable — and the tests
assert field-by-field equality via :func:`assert_identical`.  Floats
are compared *exactly*: the optimized engines claim the same arithmetic
in the same order, so any drift is a bug, not noise.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.config import ENGINES, SystemConfig
from repro.experiments.configs import get_mechanism
from repro.experiments.runner import build_core, hint_filter_for, make_dram
from repro.workloads.registry import get_workload


def capture(
    benchmark: str,
    mechanism: str,
    config: SystemConfig,
    input_set: str = "test",
    profile_input: str = "train",
    telemetry=None,
) -> Dict[str, Any]:
    """Run one cell under ``config.engine`` and snapshot every statistic.

    ``telemetry`` optionally threads a
    :class:`repro.telemetry.CoreTelemetry` stream into the build, so
    telemetry-on runs can be snapshot-compared against plain ones (they
    must be bit-identical — recording must never perturb simulation).
    """
    mech = get_mechanism(mechanism)
    hint_filter = hint_filter_for(mech, benchmark, config, profile_input)
    instance = get_workload(benchmark).build(input_set)
    dram = make_dram(config, n_cores=1)
    core = build_core(mech, config, instance, dram, hint_filter,
                      telemetry=telemetry)
    result = core.run(instance.trace())

    # duck-typed on the controller exposing a ``decisions`` list, so
    # both the legacy CoordinatedThrottle and any PolicyThrottle-driven
    # policy (repro.policy) record a comparable trajectory
    trajectory = None
    hook = core.feedback.on_interval
    controller = getattr(hook, "__self__", None)
    if getattr(controller, "decisions", None) is not None:
        trajectory = [
            (
                decision.owner,
                decision.case,
                decision.action,
                decision.coverage,
                decision.accuracy,
                decision.rival_coverage,
            )
            for decision in controller.decisions
        ]

    return {
        "result": result,
        "l1": core.l1.stats,
        "l2": core.l2.stats,
        "dram": dram.stats,
        "pf_dropped": core.pf_queue.dropped,
        "bus_transfers": core.bus_transfers,
        "levels": {p.name: p.level for p in core._trained_prefetchers},
        "throttle": trajectory,
    }


def available_engines() -> Tuple[str, ...]:
    """Every engine this environment can run (batch needs numpy)."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return tuple(e for e in ENGINES if e != "batch")
    return tuple(ENGINES)


def compare_engines(
    benchmark: str,
    mechanism: str,
    input_set: str = "test",
    config: Optional[SystemConfig] = None,
    profile_input: str = "train",
) -> Dict[str, Dict[str, Any]]:
    """One snapshot per available engine for one cell, keyed by engine."""
    base = config or SystemConfig.scaled()
    return {
        engine: capture(
            benchmark,
            mechanism,
            base.with_overrides(engine=engine),
            input_set=input_set,
            profile_input=profile_input,
        )
        for engine in available_engines()
    }


def assert_identical(snapshots: Dict[str, Dict[str, Any]]) -> None:
    """Field-by-field equality of every engine against the reference,
    with a readable failure naming the engine and the statistic."""
    reference = snapshots["reference"]
    for engine, snapshot in snapshots.items():
        if engine == "reference":
            continue
        for key in reference:
            assert snapshot[key] == reference[key], (
                f"engine {engine!r} diverges on {key}:\n"
                f"  reference: {reference[key]!r}\n"
                f"  {engine}: {snapshot[key]!r}"
            )
