"""The differential matrix: every engine == reference engine, exactly.

Every cell of (workload x mechanism) runs under every available engine
— reference, fast, and (with numpy) batch — on the ``test`` input set
and must produce identical CoreResults, cache / DRAM / queue counters,
final aggressiveness levels, and (where coordinated throttling is
attached) identical interval-by-interval throttle trajectories.
Mechanisms are chosen to cover every optimized-path branch: the raw
kernel, stream training, CDP scans + recursive deferred scans, compiler
hints, and all three throttling modes.
"""

import pytest

from repro.core.config import SystemConfig
from repro.experiments.runner import run_benchmark
from tests.differential.harness import (
    assert_identical,
    available_engines,
    capture,
    compare_engines,
)

WORKLOADS = ["mst", "health", "libquantum"]

#: prefetcher configuration x throttling mode coverage
MECHANISMS = [
    "no-prefetch",     # raw kernel, no observers
    "baseline",        # stream prefetcher training + issue
    "cdp",             # stream + greedy CDP (fills, recursion, owners)
    "ecdp+throttle",   # hints + coordinated throttling (feedback hooks)
    "ecdp+fdp",        # FDP throttling mode
    "gendler",         # selector throttling mode
]


@pytest.mark.parametrize("mechanism", MECHANISMS)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_engines_bit_identical(workload, mechanism):
    assert_identical(compare_engines(workload, mechanism))


def test_throttle_trajectory_is_exercised_and_identical():
    """Force several feedback intervals so trajectory equality is not
    vacuous, then require the exact same decision sequence."""
    config = SystemConfig.scaled().with_overrides(
        l2_size=8192, interval_evictions=32
    )
    snapshots = compare_engines("mst", "ecdp+throttle", config=config)
    assert snapshots["reference"]["throttle"], (
        "expected at least one throttle interval"
    )
    assert_identical(snapshots)


def test_oracle_and_hw_filter_paths_identical():
    """Cover the oracle-LDS fast path and the hardware prefetch filter."""
    for mechanism in ("oracle-lds", "hwfilter+throttle"):
        assert_identical(compare_engines("mst", mechanism))


def test_run_benchmark_respects_engine_field():
    """The public runner entry selects the engine from the config and
    all engines agree through it (memoization keys must not mix)."""
    results = {
        engine: run_benchmark(
            "mst",
            "ecdp+throttle",
            SystemConfig.scaled().with_overrides(engine=engine),
            input_set="test",
            use_cache=False,
        )
        for engine in available_engines()
    }
    reference = results["reference"]
    assert all(result == reference for result in results.values())


def test_capture_reports_nonzero_activity():
    """Guard against a harness that compares empty snapshots."""
    snapshot = capture(
        "mst",
        "baseline",
        SystemConfig.scaled().with_overrides(engine="fast"),
    )
    assert snapshot["result"].retired_instructions > 0
    assert snapshot["l2"].misses > 0
    assert snapshot["levels"]  # the stream prefetcher is registered
