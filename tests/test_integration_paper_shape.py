"""End-to-end shape tests: the paper's qualitative results must hold.

These run real benchmark analogs at ref scale through the full simulator,
so they are the slowest tests in the suite (the runner memoizes across
tests).  Each assertion mirrors a claim from the paper's evaluation; exact
magnitudes are not asserted — DESIGN.md Section 6 explains why shape, not
absolute numbers, is the reproduction target.
"""

import pytest

from repro.core.config import SystemConfig
from repro.experiments.runner import run_benchmark

CFG = SystemConfig.scaled()


def run(bench, mech):
    return run_benchmark(bench, mech, CFG)


class TestFigure1Motivation:
    def test_stream_prefetcher_helps_on_average(self):
        """Table 5 note: the stream prefetcher improves on no prefetching."""
        for bench in ("gcc", "art", "astar"):
            none = run(bench, "no-prefetch")
            base = run(bench, "baseline")
            assert base.ipc > none.ipc

    def test_ideal_lds_prefetching_has_large_potential(self):
        """Figure 1 bottom: oracle LDS conversion is a big win on the
        pointer-intensive set."""
        for bench in ("mcf", "health", "mst"):
            base = run(bench, "baseline")
            oracle = run(bench, "oracle-lds")
            assert oracle.ipc > base.ipc * 1.25, bench

    def test_stream_coverage_low_on_lds_benchmarks(self):
        """Figure 1 top: stream eliminates <20-ish% of misses on the
        pointer-chasing benchmarks."""
        for bench in ("mcf", "xalancbmk", "health"):
            result = run(bench, "baseline")
            assert result.coverage("stream") < 0.35, bench


class TestFigure2OriginalCdp:
    def test_cdp_degrades_its_known_victims(self):
        """mcf, xalancbmk, bisort, mst lose performance under greedy CDP."""
        for bench in ("mcf", "xalancbmk", "bisort", "mst"):
            base = run(bench, "baseline")
            cdp = run(bench, "cdp")
            assert cdp.ipc < base.ipc, bench

    def test_cdp_explodes_bandwidth(self):
        for bench in ("mcf", "mst", "bisort"):
            base = run(bench, "baseline")
            cdp = run(bench, "cdp")
            assert cdp.bpki > base.bpki * 1.3, bench

    def test_cdp_helps_where_pointers_are_followed(self):
        """Figure 2: CDP improves health and perimeter-like traversals."""
        for bench in ("health", "ammp"):
            base = run(bench, "baseline")
            cdp = run(bench, "cdp")
            assert cdp.ipc > base.ipc, bench

    def test_cdp_accuracy_spread_matches_table1(self):
        """Table 1: accuracy is very low on mcf/mst, high on perimeter."""
        assert run("mcf", "cdp").accuracy("cdp") < 0.25
        assert run("mst", "cdp").accuracy("cdp") < 0.35
        assert run("perimeter", "cdp").accuracy("cdp") > 0.6
        assert run("health", "cdp").accuracy("cdp") > 0.6


class TestFigure7Headline:
    def test_ecdp_eliminates_cdp_losses(self):
        """Section 6.1.2: 'Our mechanism eliminates all performance
        losses due to CDP.'"""
        for bench in ("mcf", "xalancbmk", "bisort", "mst"):
            base = run(bench, "baseline")
            ecdp = run(bench, "ecdp")
            assert ecdp.ipc > base.ipc * 0.97, bench

    def test_full_proposal_beats_baseline_on_winners(self):
        for bench in ("astar", "ammp", "health", "pfast"):
            base = run(bench, "baseline")
            ours = run(bench, "ecdp+throttle")
            assert ours.ipc > base.ipc * 1.05, bench

    def test_full_proposal_saves_bandwidth_on_winners(self):
        """Figure 7 bottom: big BPKI cuts on mcf, astar, ammp."""
        for bench in ("mcf", "astar", "ammp"):
            base = run(bench, "baseline")
            ours = run(bench, "ecdp+throttle")
            assert ours.bpki < base.bpki * 0.9, bench

    def test_synergy_combined_beats_each_alone(self):
        """Section 6.1.1: ECDP and throttling interact positively on
        average."""
        import math

        benches = ("mcf", "astar", "ammp", "health", "mst", "pfast")

        def gmean_ratio(mechanism):
            ratios = [
                run(b, mechanism).ipc / run(b, "baseline").ipc for b in benches
            ]
            return math.exp(sum(math.log(r) for r in ratios) / len(ratios))

        combined = gmean_ratio("ecdp+throttle")
        assert combined > gmean_ratio("ecdp")
        assert combined > gmean_ratio("cdp+throttle")
        assert combined > 1.05


class TestFigure8Accuracy:
    def test_ecdp_throttle_raises_cdp_accuracy(self):
        """Figure 8: our techniques raise CDP accuracy over original CDP."""
        for bench in ("mcf", "mst", "health", "perlbench"):
            greedy = run(bench, "cdp").accuracy("cdp")
            ours_result = run(bench, "ecdp+throttle")
            ours = ours_result.accuracy("cdp")
            if ours_result.prefetchers["cdp"].issued == 0:
                continue  # filtered to silence: no accuracy to compare
            assert ours >= greedy, bench


class TestSection67NonPointer:
    @pytest.mark.parametrize("bench", ["libquantum", "GemsFDTD", "bwaves"])
    def test_no_harm_on_streaming_benchmarks(self, bench):
        base = run(bench, "baseline")
        ours = run(bench, "ecdp+throttle")
        assert ours.ipc > base.ipc * 0.97
