"""Unit tests for feedback counters, interval halving, pollution filter."""

import pytest

from repro.throttle.feedback import (
    FeedbackCollector,
    PollutionFilter,
    SmoothedCounter,
)


class TestSmoothedCounter:
    def test_halving_rule(self):
        """Paper Eq. 3: half old value plus half the interval's count."""
        counter = SmoothedCounter()
        counter.add(10)
        counter.roll()
        assert counter.value == 5.0
        counter.add(2)
        counter.roll()
        assert counter.value == 3.5  # 0.5*5 + 0.5*2

    def test_recent_dominates_history(self):
        counter = SmoothedCounter()
        counter.add(100)
        counter.roll()
        for __ in range(10):
            counter.roll()  # quiet intervals decay the history
        assert counter.value < 0.1


class TestPollutionFilter:
    def test_displaced_then_missed_counts(self):
        filt = PollutionFilter(64)
        filt.mark_displaced(0x1000)
        assert filt.check_and_clear(0x1000)
        assert not filt.check_and_clear(0x1000)  # cleared

    def test_unmarked_address_clean(self):
        assert not PollutionFilter(64).check_and_clear(0x1000)

    def test_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            PollutionFilter(100)


class TestFeedbackCollector:
    def make(self, interval=4):
        return FeedbackCollector(["stream", "cdp"], interval_evictions=interval)

    def test_accuracy_eq1(self):
        collector = self.make()
        collector.record_issue("cdp", 10)
        for __ in range(4):
            collector.record_use("cdp")
        assert collector.accuracy("cdp") == pytest.approx(0.4)

    def test_coverage_eq2(self):
        collector = self.make()
        collector.record_issue("cdp", 10)
        for __ in range(4):
            collector.record_use("cdp")
        for __ in range(6):
            collector.record_demand_miss(0x1000)
        assert collector.coverage("cdp") == pytest.approx(0.4)

    def test_interval_fires_after_n_evictions(self):
        collector = self.make(interval=3)
        fired = []
        collector.on_interval = fired.append
        for __ in range(3):
            collector.record_eviction(0x1000, by_prefetch=False,
                                      victim_was_demand=True)
        assert len(fired) == 1
        assert collector.intervals_completed == 1

    def test_counters_rolled_at_interval(self):
        collector = self.make(interval=2)
        collector.record_issue("stream", 8)
        collector.record_eviction(0, False, True)
        collector.record_eviction(0, False, True)
        assert collector.counters["stream"].total_prefetched.value == 4.0

    def test_lifetime_counters_never_halved(self):
        collector = self.make(interval=1)
        collector.record_issue("stream", 8)
        collector.record_eviction(0, False, True)
        collector.record_eviction(0, False, True)
        assert collector.counters["stream"].lifetime_prefetched == 8

    def test_pollution_tracked_via_filter(self):
        collector = self.make()
        collector.record_eviction(0x1000, by_prefetch=True,
                                  victim_was_demand=True)
        collector.record_demand_miss(0x1000)
        assert collector.lifetime_pollution == 1

    def test_prefetch_evicting_prefetch_not_pollution(self):
        collector = self.make()
        collector.record_eviction(0x1000, by_prefetch=True,
                                  victim_was_demand=False)
        collector.record_demand_miss(0x1000)
        assert collector.lifetime_pollution == 0

    def test_late_use_recorded(self):
        collector = self.make()
        collector.record_issue("cdp")
        collector.record_use("cdp", late=True)
        assert collector.counters["cdp"].lifetime_late == 1

    def test_lifetime_coverage(self):
        collector = self.make()
        collector.record_issue("cdp", 4)
        collector.record_use("cdp")
        collector.record_demand_miss(0)
        assert collector.lifetime_coverage("cdp") == pytest.approx(0.5)


class TestTailFlush:
    """End-of-run flush of the trailing partial interval."""

    def make(self, interval=4):
        return FeedbackCollector(["stream", "cdp"], interval_evictions=interval)

    def test_flush_rolls_trailing_counts(self):
        collector = self.make()
        collector.record_issue("cdp", 8)
        assert collector.flush_partial_interval() is True
        # trailing issues entered the Eq. 3 smoothed value
        assert collector.counters["cdp"].total_prefetched.smoothed == 4.0
        assert collector.counters["cdp"].total_prefetched.during == 0

    def test_flush_does_not_fire_controller(self):
        collector = self.make()
        fired = []
        collector.on_interval = fired.append
        collector.record_issue("cdp")
        collector.flush_partial_interval()
        assert fired == []
        assert collector.intervals_completed == 0

    def test_flush_notifies_telemetry_with_tail_flag(self):
        collector = self.make()
        seen = []
        collector.on_interval_telemetry = (
            lambda c, tail: seen.append((c, tail))
        )
        collector.record_demand_miss(0x40)
        collector.flush_partial_interval()
        assert seen == [(collector, True)]

    def test_flush_idempotent(self):
        collector = self.make()
        collector.record_issue("cdp")
        assert collector.flush_partial_interval() is True
        collector.tail_flushed = collector.tail_flushed  # unchanged
        assert collector.flush_partial_interval() is False

    def test_flush_noop_without_partial_interval(self):
        collector = self.make()
        assert collector.flush_partial_interval() is False
        assert collector.tail_flushed is False

    def test_flush_noop_right_after_roll(self):
        collector = self.make(interval=2)
        collector.record_issue("cdp")
        collector.record_eviction(0, False, True)
        collector.record_eviction(0, False, True)  # interval rolls here
        assert collector.intervals_completed == 1
        assert collector.flush_partial_interval() is False

    def test_partial_evictions_alone_trigger_flush(self):
        collector = self.make(interval=4)
        collector.record_eviction(0, False, True)
        assert collector.flush_partial_interval() is True
