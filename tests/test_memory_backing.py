"""Unit tests for the word-granular backing store."""

import pytest

from repro.memory.backing import SimulatedMemory


class TestReadWrite:
    def test_unwritten_reads_zero(self, memory):
        assert memory.read_word(0x1000) == 0

    def test_round_trip(self, memory):
        memory.write_word(0x1000, 0xDEADBEEF)
        assert memory.read_word(0x1000) == 0xDEADBEEF

    def test_unaligned_access_maps_to_word(self, memory):
        memory.write_word(0x1000, 7)
        assert memory.read_word(0x1002) == 7  # same word

    def test_value_masked_to_32_bits(self, memory):
        memory.write_word(0x1000, (1 << 40) | 5)
        assert memory.read_word(0x1000) == 5

    def test_out_of_range_address_rejected(self, memory):
        with pytest.raises(ValueError):
            memory.read_word(1 << 33)


class TestBlockRead:
    def test_block_words_order_and_size(self, memory):
        base = 0x2000
        for i in range(16):
            memory.write_word(base + 4 * i, i + 1)
        words = memory.read_block_words(base, 64)
        assert words == list(range(1, 17))

    def test_block_words_unwritten_are_zero(self, memory):
        words = memory.read_block_words(0x4000, 64)
        assert words == [0] * 16

    def test_block_words_respect_block_size(self, memory):
        assert len(memory.read_block_words(0, 128)) == 32


class TestBookkeeping:
    def test_len_counts_written_words(self, memory):
        memory.write_word(0x1000, 1)
        memory.write_word(0x1004, 2)
        memory.write_word(0x1000, 3)  # overwrite, not a new word
        assert len(memory) == 2

    def test_clear(self, memory):
        memory.write_word(0x1000, 1)
        memory.clear()
        assert len(memory) == 0
        assert memory.read_word(0x1000) == 0

    def test_iter_words(self, memory):
        memory.write_word(0x1000, 9)
        assert dict(memory.iter_words()) == {0x1000: 9}
