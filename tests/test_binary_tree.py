"""Unit tests for binary trees and the bisort-style swapping traversal."""

import random

import pytest

from repro.core.instruction import PcAllocator
from repro.memory.alloc import BumpAllocator
from repro.structures.base import Program
from repro.structures.binary_tree import (
    bitonic_sort_traversal,
    build_balanced_tree,
    descend,
    inorder_walk,
)


@pytest.fixture
def allocator():
    return BumpAllocator(0x1000_0000, 1 << 22)


def drain(program, steps):
    ops = []
    for __ in steps:
        ops.extend(program.drain())
    ops.extend(program.drain())
    return ops


class TestBuild:
    def test_children_are_real_pointers(self, memory, allocator):
        tree = build_balanced_tree(memory, allocator, 7)
        left = memory.read_word(tree.layout.addr_of(tree.root, "left"))
        right = memory.read_word(tree.layout.addr_of(tree.root, "right"))
        assert left == tree.nodes[1]
        assert right == tree.nodes[2]

    def test_leaves_have_null_children(self, memory, allocator):
        tree = build_balanced_tree(memory, allocator, 7)
        leaf = tree.nodes[-1]
        assert memory.read_word(tree.layout.addr_of(leaf, "left")) == 0
        assert memory.read_word(tree.layout.addr_of(leaf, "right")) == 0

    def test_node_count(self, memory, allocator):
        tree = build_balanced_tree(memory, allocator, 100)
        assert len(tree) == 100


class TestInorderWalk:
    def test_visits_every_node_once(self, memory, allocator):
        tree = build_balanced_tree(memory, allocator, 31)
        program = Program(memory)
        pcs = PcAllocator()
        ops = drain(program, inorder_walk(program, pcs, tree, "w"))
        key_pc = pcs.pc("w.key")
        assert sum(1 for op in ops if op.pc == key_pc) == 31


class TestDescend:
    def test_each_descent_reaches_a_leaf(self, memory, allocator):
        tree = build_balanced_tree(memory, allocator, 15)  # depth 4
        program = Program(memory)
        pcs = PcAllocator()
        rng = random.Random(1)
        ops = drain(program, descend(program, pcs, tree, rng, "d", n_descents=5))
        key_pc = pcs.pc("d.key")
        key_loads = sum(1 for op in ops if op.pc == key_pc)
        # A balanced 15-node tree has depth 4: each descent visits 4 nodes.
        assert key_loads == 20


class TestBitonicTraversal:
    def test_swaps_mutate_memory(self, memory, allocator):
        rng = random.Random(7)
        tree = build_balanced_tree(memory, allocator, 63, rng=rng)
        before = {
            node: (
                memory.read_word(tree.layout.addr_of(node, "left")),
                memory.read_word(tree.layout.addr_of(node, "right")),
            )
            for node in tree.nodes
        }
        program = Program(memory)
        pcs = PcAllocator()
        drain(
            program,
            bitonic_sort_traversal(
                program, pcs, tree, rng, "b", n_rounds=30, swap_probability=1.0
            ),
        )
        after = {
            node: (
                memory.read_word(tree.layout.addr_of(node, "left")),
                memory.read_word(tree.layout.addr_of(node, "right")),
            )
            for node in tree.nodes
        }
        assert before != after

    def test_swap_preserves_node_set(self, memory, allocator):
        """Swaps exchange child pointers but never lose nodes."""
        rng = random.Random(7)
        tree = build_balanced_tree(memory, allocator, 31, rng=rng)
        program = Program(memory)
        pcs = PcAllocator()
        drain(
            program,
            bitonic_sort_traversal(
                program, pcs, tree, rng, "b", n_rounds=50, swap_probability=0.5
            ),
        )
        # Re-collect the tree: all original nodes still reachable.
        seen = set()
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if not node or node in seen:
                continue
            seen.add(node)
            stack.append(memory.read_word(tree.layout.addr_of(node, "left")))
            stack.append(memory.read_word(tree.layout.addr_of(node, "right")))
        assert seen == set(tree.nodes)

    def test_no_swaps_with_zero_probability(self, memory, allocator):
        rng = random.Random(7)
        tree = build_balanced_tree(memory, allocator, 31, rng=rng)
        program = Program(memory)
        pcs = PcAllocator()
        ops = drain(
            program,
            bitonic_sort_traversal(
                program, pcs, tree, rng, "b", n_rounds=10, swap_probability=0.0
            ),
        )
        assert all(op.is_load for op in ops)

    def test_reads_both_children_every_node(self, memory, allocator):
        rng = random.Random(7)
        tree = build_balanced_tree(memory, allocator, 31, rng=rng)
        program = Program(memory)
        pcs = PcAllocator()
        ops = drain(
            program,
            bitonic_sort_traversal(
                program, pcs, tree, rng, "b", n_rounds=4, swap_probability=0.0
            ),
        )
        left_pc = pcs.pc("b.left")
        right_pc = pcs.pc("b.right")
        assert sum(1 for op in ops if op.pc == left_pc) == sum(
            1 for op in ops if op.pc == right_pc
        )
