"""Unit tests for quadtrees, pointer graphs, and arrays."""

import random

import pytest

from repro.core.instruction import PcAllocator
from repro.memory.alloc import BumpAllocator
from repro.structures.arrays import (
    build_array,
    build_pointer_array,
    random_walk,
    sequential_walk,
)
from repro.structures.base import Program
from repro.structures.graph import build_graph, pivot_walk
from repro.structures.quadtree import CHILD_FIELDS, build_quadtree, perimeter_walk


@pytest.fixture
def allocator():
    return BumpAllocator(0x1000_0000, 1 << 23)


def drain(program, steps):
    ops = []
    for __ in steps:
        ops.extend(program.drain())
    ops.extend(program.drain())
    return ops


class TestQuadtree:
    def test_interior_nodes_have_four_children(self, memory, allocator):
        tree = build_quadtree(memory, allocator, depth=3, leaf_probability=0.0)
        children = [
            memory.read_word(tree.layout.addr_of(tree.root, c))
            for c in CHILD_FIELDS
        ]
        assert all(children)

    def test_depth_bound_respected(self, memory, allocator):
        tree = build_quadtree(
            memory, allocator, depth=2, leaf_probability=0.0, rng=random.Random(1)
        )
        # depth 2, no early leaves: 1 + 4 + 16 = 21 nodes
        assert len(tree) == 21

    def test_perimeter_walk_visits_all_nodes(self, memory, allocator):
        tree = build_quadtree(
            memory, allocator, depth=3, leaf_probability=0.3, rng=random.Random(2)
        )
        program = Program(memory)
        pcs = PcAllocator()
        ops = drain(program, perimeter_walk(program, pcs, tree, "p"))
        color_pc = pcs.pc("p.color")
        assert sum(1 for op in ops if op.pc == color_pc) == len(tree)

    def test_walk_loads_all_child_pointers(self, memory, allocator):
        tree = build_quadtree(
            memory, allocator, depth=2, leaf_probability=0.0, rng=random.Random(2)
        )
        program = Program(memory)
        pcs = PcAllocator()
        ops = drain(program, perimeter_walk(program, pcs, tree, "p"))
        for child in CHILD_FIELDS:
            pc = pcs.pc(f"p.{child}")
            assert sum(1 for op in ops if op.pc == pc) == len(tree)


class TestPointerGraph:
    def test_arcs_point_at_real_nodes(self, memory, allocator):
        graph = build_graph(memory, allocator, 20, rng=random.Random(1))
        node_set = set(graph.nodes)
        for node in graph.nodes:
            for a in range(graph.n_arcs):
                target = memory.read_word(
                    graph.layout.addr_of(node, f"arc_{a}")
                )
                assert target in node_set

    def test_pivot_walk_step_count(self, memory, allocator):
        graph = build_graph(memory, allocator, 20, rng=random.Random(1))
        program = Program(memory)
        pcs = PcAllocator()
        ops = drain(
            program,
            pivot_walk(program, pcs, graph, random.Random(2), "g", n_steps=25),
        )
        cost_pc = pcs.pc("g.cost")
        assert sum(1 for op in ops if op.pc == cost_pc) == 25

    def test_pivot_walk_is_dependent_chain(self, memory, allocator):
        graph = build_graph(memory, allocator, 20, rng=random.Random(1))
        program = Program(memory)
        pcs = PcAllocator()
        ops = drain(
            program,
            pivot_walk(program, pcs, graph, random.Random(2), "g", n_steps=10),
        )
        # The first step starts from a literal node address (no producer);
        # every later access chains off a loaded arc pointer.
        assert all(op.dep >= 0 for op in ops[2:])


class TestArrays:
    def test_sequential_walk_covers_strided_indices(self, memory, allocator):
        array = build_array(memory, allocator, 32, rng=random.Random(1))
        program = Program(memory)
        pcs = PcAllocator()
        ops = drain(
            program,
            sequential_walk(program, pcs, array, "a", stride_words=2),
        )
        assert len(ops) == 16
        assert ops[1].addr - ops[0].addr == 8

    def test_store_fraction_mixes_stores(self, memory, allocator):
        array = build_array(memory, allocator, 100, rng=random.Random(1))
        program = Program(memory)
        pcs = PcAllocator()
        ops = drain(
            program,
            sequential_walk(
                program, pcs, array, "a",
                store_fraction=0.5, rng=random.Random(2),
            ),
        )
        stores = sum(1 for op in ops if not op.is_load)
        assert 20 <= stores <= 80

    def test_random_walk_stays_in_bounds(self, memory, allocator):
        array = build_array(memory, allocator, 64, rng=random.Random(1))
        program = Program(memory)
        pcs = PcAllocator()
        ops = drain(
            program,
            random_walk(program, pcs, array, random.Random(3), "r", n_accesses=50),
        )
        assert all(array.base <= op.addr < array.base + 64 * 4 for op in ops)

    def test_pointer_array_holds_targets(self, memory, allocator):
        targets = [0x2000_0000, 0x2000_0040]
        array = build_pointer_array(memory, allocator, targets)
        assert memory.read_word(array.addr(0)) == targets[0]
        assert memory.read_word(array.addr(1)) == targets[1]

    def test_array_fill_modes(self, memory, allocator):
        iota = build_array(memory, allocator, 8, fill="iota")
        assert [memory.read_word(iota.addr(i)) for i in range(8)] == list(range(8))
        with pytest.raises(ValueError):
            build_array(memory, allocator, 8, fill="bogus")
