"""Tests for informing-load profiling (paper Section 3, second sketch)."""

import pytest

from repro.compiler.hints import HintTable
from repro.compiler.informing import PgObserver, profile_with_informing_loads
from repro.core.config import SystemConfig

CFG = SystemConfig.scaled()


class TestPgObserver:
    def test_demand_issue_and_use(self):
        observer = PgObserver()
        observer.on_issue(0x1000, (0x400000, 8))
        observer.on_use(0x1000)
        stats = observer.profile.get((0x400000, 8))
        assert stats.issued == 1 and stats.useful == 1

    def test_recursive_issue_inherits_root(self):
        observer = PgObserver()
        observer.on_issue(0x1000, (0x400000, 8))
        observer.on_issue(0x2000, None, parent_addr=0x1000)
        assert observer.profile.get((0x400000, 8)).issued == 2
        observer.on_use(0x2000)
        assert observer.profile.get((0x400000, 8)).useful == 1

    def test_orphan_recursive_issue_untracked(self):
        observer = PgObserver()
        assert observer.on_issue(0x2000, None, parent_addr=0x9999) is None
        assert len(observer.profile) == 0

    def test_eviction_forfeits_use(self):
        observer = PgObserver()
        observer.on_issue(0x1000, (0x400000, 8))
        observer.on_evict(0x1000)
        observer.on_use(0x1000)  # too late — already evicted
        assert observer.profile.get((0x400000, 8)).useful == 0

    def test_double_use_counts_once(self):
        observer = PgObserver()
        observer.on_issue(0x1000, (0x400000, 8))
        observer.on_use(0x1000)
        observer.on_use(0x1000)
        assert observer.profile.get((0x400000, 8)).useful == 1


class TestInformingProfile:
    def test_produces_usable_hint_table(self):
        profile = profile_with_informing_loads("health", CFG, input_set="test")
        assert len(profile) > 0
        table = HintTable.from_profile(profile)
        # health's chains are fully walked: some PGs must be beneficial.
        assert len(table) >= 0  # structurally valid even if empty at test scale

    def test_agrees_with_functional_profiler_on_direction(self):
        """Both profiling implementations should classify health's
        dominant PGs as beneficial (they measure the same program)."""
        from repro.experiments.runner import profile_benchmark

        informing = profile_with_informing_loads("health", CFG, "train")
        functional = profile_benchmark("health", CFG, "train")
        assert informing.beneficial_keys(), "informing found nothing"
        assert functional.beneficial_keys(), "functional found nothing"
        shared = set(informing.beneficial_keys()) & set(
            functional.beneficial_keys()
        )
        assert shared, "the two profilers agree on no beneficial PG"
