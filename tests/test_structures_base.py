"""Unit tests for StructLayout, Program (trace emission, dependences)."""

import pytest

from repro.core.instruction import MemOp
from repro.structures.base import Program, SilentWriter, StructLayout


class TestStructLayout:
    def test_offsets_are_word_multiples(self):
        layout = StructLayout("node", ("key", "data", "next"))
        assert layout.offset("key") == 0
        assert layout.offset("data") == 4
        assert layout.offset("next") == 8

    def test_size(self):
        layout = StructLayout("node", ("a", "b", "c", "d"))
        assert layout.size == 16

    def test_addr_of(self):
        layout = StructLayout("node", ("key", "next"))
        assert layout.addr_of(0x1000, "next") == 0x1004

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            StructLayout("bad", ("x", "x"))

    def test_unknown_field_raises(self):
        layout = StructLayout("node", ("key",))
        with pytest.raises(ValueError):
            layout.offset("nope")


class TestProgram:
    def test_load_reads_memory(self, memory):
        memory.write_word(0x1000, 77)
        program = Program(memory)
        assert program.load(1, 0x1000) == 77

    def test_store_writes_memory(self, memory):
        program = Program(memory)
        program.store(1, 0x1000, 55)
        assert memory.read_word(0x1000) == 55

    def test_ops_buffered_and_drained(self, memory):
        program = Program(memory)
        program.load(1, 0x1000)
        program.store(2, 0x1004, 9)
        ops = program.drain()
        assert [op.is_load for op in ops] == [True, False]
        assert program.drain() == []

    def test_work_attaches_to_next_op(self, memory):
        program = Program(memory)
        program.work(7)
        program.work(3)
        program.load(1, 0x1000)
        program.load(1, 0x1004)
        first, second = program.drain()
        assert first.work == 10
        assert second.work == 0

    def test_pc_recorded(self, memory):
        program = Program(memory)
        program.load(0x400010, 0x1000)
        (op,) = program.drain()
        assert op.pc == 0x400010


class TestDependences:
    def test_pointer_chase_is_dependent(self, memory):
        # node A at 0x1000 holds pointer to node B at 0x2000.
        memory.write_word(0x1000, 0x2000)
        program = Program(memory)
        node_b = program.load(1, 0x1000)  # seq 0, loads pointer 0x2000
        program.load(2, node_b, base=node_b)  # seq 1, depends on seq 0
        op_a, op_b = program.drain()
        assert op_a.dep == -1
        assert op_b.dep == 0

    def test_field_access_inherits_dependence(self, memory):
        memory.write_word(0x1000, 0x2000)
        program = Program(memory)
        node = program.load(1, 0x1000)
        program.load(2, node + 8, base=node)  # node->field
        __, field_op = program.drain()
        assert field_op.dep == 0

    def test_independent_load_has_no_dep(self, memory):
        program = Program(memory)
        program.load(1, 0x1000)
        program.load(2, 0x2000)
        ops = program.drain()
        assert all(op.dep == -1 for op in ops)

    def test_small_values_never_become_producers(self, memory):
        memory.write_word(0x1000, 42)  # not a pointer
        program = Program(memory)
        value = program.load(1, 0x1000)
        program.load(2, 0x2000, base=value)
        __, second = program.drain()
        assert second.dep == -1

    def test_latest_producer_wins(self, memory):
        memory.write_word(0x1000, 0x3000)
        memory.write_word(0x2000, 0x3000)  # same pointer value, later load
        program = Program(memory)
        program.load(1, 0x1000)  # seq 0
        program.load(2, 0x2000)  # seq 1
        program.load(3, 0x3000, base=0x3000)  # depends on the most recent
        ops = program.drain()
        assert ops[2].dep == 1


class TestSilentWriter:
    def test_writes_without_trace(self, memory):
        layout = StructLayout("node", ("key", "next"))
        writer = SilentWriter(memory)
        writer.store_fields(layout, 0x1000, {"key": 5, "next": 0x2000})
        assert memory.read_word(0x1000) == 5
        assert memory.read_word(0x1004) == 0x2000
