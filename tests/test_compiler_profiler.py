"""Unit tests for the functional profiling pass (PG usefulness)."""

import pytest

from repro.compiler.profiler import (
    FunctionalCdpSimulator,
    ProfilerConfig,
    profile_trace,
)
from repro.core.instruction import MemOp, PcAllocator
from repro.memory.alloc import BumpAllocator
from repro.structures.base import Program
from repro.structures.linked_list import build_list, walk

CONFIG = ProfilerConfig(l2_size=4096, l2_ways=4, block_size=64, compare_bits=8)


def load(pc, addr):
    return MemOp(pc, addr, True, 0, -1)


class TestBasicAttribution:
    def test_used_prefetch_counts_for_its_pg(self, memory):
        # Block A holds a pointer (at byte 8) to block B; the trace
        # misses A then demands B.
        memory.write_word(0x1000_0008, 0x1000_4000)
        sim = FunctionalCdpSimulator(memory, CONFIG)
        sim.access(load(0x400000, 0x1000_0000))
        sim.access(load(0x400004, 0x1000_4000))
        stats = sim.profile.get((0x400000, 8))
        assert stats.issued == 1
        assert stats.useful == 1

    def test_unused_prefetch_counts_against_pg(self, memory):
        memory.write_word(0x1000_0008, 0x1000_4000)
        sim = FunctionalCdpSimulator(memory, CONFIG)
        sim.access(load(0x400000, 0x1000_0000))
        stats = sim.profile.get((0x400000, 8))
        assert stats.issued == 1
        assert stats.useful == 0

    def test_offset_relative_to_accessed_byte(self, memory):
        # Load touches byte 12 of the block; pointer lives at byte 4.
        memory.write_word(0x1000_0004, 0x1000_4000)
        sim = FunctionalCdpSimulator(memory, CONFIG)
        sim.access(load(0x400000, 0x1000_000C))
        assert sim.profile.get((0x400000, -8)).issued == 1

    def test_recursive_prefetch_attributed_to_root(self, memory):
        # A -> B -> C chain: prefetch of C (found while scanning B's
        # prefetched fill) belongs to the ROOT pointer group in A.
        memory.write_word(0x1000_0008, 0x1000_4000)  # A holds ptr to B
        memory.write_word(0x1000_4000, 0x1000_8000)  # B holds ptr to C
        sim = FunctionalCdpSimulator(memory, CONFIG)
        sim.access(load(0x400000, 0x1000_0000))
        stats = sim.profile.get((0x400000, 8))
        assert stats.issued == 2  # B and C

    def test_prefetch_to_cached_block_not_counted(self, memory):
        memory.write_word(0x1000_0008, 0x1000_4000)
        sim = FunctionalCdpSimulator(memory, CONFIG)
        sim.access(load(0x400004, 0x1000_4000))  # B already resident
        sim.access(load(0x400000, 0x1000_0000))  # scan finds ptr to B
        assert sim.profile.get((0x400000, 8)).issued == 0

    def test_eviction_before_use_is_useless(self, memory):
        memory.write_word(0x1000_0008, 0x1000_4000)
        sim = FunctionalCdpSimulator(memory, CONFIG)
        sim.access(load(0x400000, 0x1000_0000))
        # Thrash the set holding the prefetched block until it's evicted,
        # then demand it: must NOT count as useful.
        for i in range(1, 6):
            sim.access(load(0x500000, 0x1000_4000 + i * 4096))
        sim.access(load(0x400004, 0x1000_4000))
        assert sim.profile.get((0x400000, 8)).useful == 0

    def test_stores_do_not_trigger_scans(self, memory):
        memory.write_word(0x1000_0008, 0x1000_4000)
        sim = FunctionalCdpSimulator(memory, CONFIG)
        sim.access(MemOp(0x400000, 0x1000_0000, False, 0, -1))
        assert len(sim.profile) == 0


class TestDepthAndBudget:
    def test_recursion_stops_at_max_depth(self, memory):
        # Chain A->B->C->D with max depth 2: only B and C prefetched.
        memory.write_word(0x1000_0008, 0x1000_4000)
        memory.write_word(0x1000_4000, 0x1000_8000)
        memory.write_word(0x1000_8000, 0x1000_C000)
        config = ProfilerConfig(4096, 4, 64, max_recursion_depth=2)
        sim = FunctionalCdpSimulator(memory, config)
        sim.access(load(0x400000, 0x1000_0000))
        assert sim.profile.get((0x400000, 8)).issued == 2

    def test_chain_budget_caps_flood(self, memory):
        # A block full of pointers to blocks full of pointers.
        for word in range(16):
            memory.write_word(0x1000_0000 + word * 4, 0x1000_4000 + word * 4096)
        config = ProfilerConfig(1 << 16, 4, 64, chain_budget=5)
        sim = FunctionalCdpSimulator(memory, config)
        sim.access(load(0x400000, 0x1000_0000))
        total = sum(stats.issued for __, stats in sim.profile.items())
        assert total == 5


class TestHintFilteredProfiling:
    def test_filter_restricts_measured_pgs(self, memory):
        memory.write_word(0x1000_0008, 0x1000_4000)
        memory.write_word(0x1000_000C, 0x1000_8000)
        allowed = lambda pc, delta: delta == 8
        sim = FunctionalCdpSimulator(memory, CONFIG, hint_filter=allowed)
        sim.access(load(0x400000, 0x1000_0000))
        assert sim.profile.get((0x400000, 8)).issued == 1
        assert sim.profile.get((0x400000, 12)).issued == 0


class TestEndToEndListProfile:
    def test_chain_pg_classified_beneficial(self, memory):
        """A fully-walked list's next-pointer PG must come out beneficial."""
        allocator = BumpAllocator(0x1000_0000, 1 << 20)
        lst = build_list(memory, allocator, 600, data_words=2)
        program = Program(memory)
        pcs = PcAllocator()
        ops = []
        for __ in walk(program, pcs, lst, "w"):
            ops.extend(program.drain())
        ops.extend(program.drain())
        profile = profile_trace(memory, ops, CONFIG)
        assert profile.beneficial_keys(), "list walk produced no beneficial PGs"
