"""Unit tests for the chained hash table (paper Figure 5's structure)."""

import random

import pytest

from repro.core.instruction import PcAllocator
from repro.memory.alloc import BumpAllocator
from repro.structures.base import Program
from repro.structures.hash_table import build_hash_table, hash_lookup


@pytest.fixture
def arenas3():
    return (
        BumpAllocator(0x1000_0000, 1 << 18),  # buckets
        BumpAllocator(0x1100_0000, 1 << 20),  # nodes
        BumpAllocator(0x1200_0000, 1 << 21),  # data records
    )


def drain(program, steps):
    ops = []
    for __ in steps:
        ops.extend(program.drain())
    ops.extend(program.drain())
    return ops


class TestBuild:
    def test_all_keys_reachable_through_chains(self, memory, arenas3):
        buckets, nodes, __ = arenas3
        table = build_hash_table(memory, buckets, nodes, 8, 50, random.Random(1))
        found = set()
        for bucket in range(8):
            node = memory.read_word(table.bucket_addr(bucket))
            while node:
                found.add(memory.read_word(table.layout.addr_of(node, "key")))
                node = memory.read_word(table.layout.addr_of(node, "next"))
        assert found == set(table.keys)

    def test_chains_respect_hash_function(self, memory, arenas3):
        buckets, nodes, __ = arenas3
        table = build_hash_table(memory, buckets, nodes, 8, 50, random.Random(1))
        for bucket, chain in enumerate(table.chains):
            for node in chain:
                key = memory.read_word(table.layout.addr_of(node, "key"))
                assert key % 8 == bucket

    def test_data_pointers_reference_records(self, memory, arenas3):
        buckets, nodes, data = arenas3
        table = build_hash_table(
            memory, buckets, nodes, 8, 20, random.Random(1), data_allocator=data
        )
        node = table.chains[0][0] if table.chains[0] else table.chains[1][0]
        d1 = memory.read_word(table.layout.addr_of(node, "d1"))
        assert d1 >= 0x1200_0000  # points into the data arena
        assert memory.read_word(d1) != 0

    def test_without_data_allocator_fields_are_small_ints(self, memory, arenas3):
        buckets, nodes, __ = arenas3
        table = build_hash_table(memory, buckets, nodes, 8, 20, random.Random(1))
        node = next(chain[0] for chain in table.chains if chain)
        d1 = memory.read_word(table.layout.addr_of(node, "d1"))
        assert d1 < 0x1000  # never mistaken for a pointer


class TestLookup:
    def test_hit_touches_data_fields(self, memory, arenas3):
        buckets, nodes, data = arenas3
        table = build_hash_table(
            memory, buckets, nodes, 8, 30, random.Random(1), data_allocator=data
        )
        program = Program(memory)
        pcs = PcAllocator()
        key = table.keys[0]
        ops = drain(
            program,
            hash_lookup(program, pcs, table, key, "h", data_are_pointers=True),
        )
        deref_pc = pcs.pc("h.data_deref")
        assert sum(1 for op in ops if op.pc == deref_pc) == 2  # d1 and d2

    def test_miss_walks_full_chain_without_data(self, memory, arenas3):
        buckets, nodes, __ = arenas3
        table = build_hash_table(memory, buckets, nodes, 4, 40, random.Random(1))
        program = Program(memory)
        pcs = PcAllocator()
        missing = max(table.keys) + 4 * 17  # same bucket shape, absent
        while missing in table.keys:
            missing += 4
        ops = drain(program, hash_lookup(program, pcs, table, missing, "h"))
        key_pc = pcs.pc("h.key")
        d1_pc = pcs.pc("h.d1")
        chain_len = len(table.chains[missing % 4])
        assert sum(1 for op in ops if op.pc == key_pc) == chain_len
        assert sum(1 for op in ops if op.pc == d1_pc) == 0

    def test_chain_walk_is_dependent(self, memory, arenas3):
        buckets, nodes, __ = arenas3
        table = build_hash_table(memory, buckets, nodes, 2, 20, random.Random(1))
        program = Program(memory)
        pcs = PcAllocator()
        key = table.keys[0]
        ops = drain(program, hash_lookup(program, pcs, table, key, "h"))
        # Every op after the bucket-head load chains off a previous load.
        assert all(op.dep >= 0 for op in ops[1:])
