"""Trace corruption reporting: offsets, record indices, strict=False."""

import pytest

from repro.core.instruction import MemOp
from repro.core.tracefile import (
    MAGIC,
    load_trace,
    load_trace_text,
    save_trace,
    save_trace_text,
)
from repro.errors import TraceFormatError


def sample_trace():
    return [
        MemOp(0x400000, 0x1000_0000, True, 5, -1),
        MemOp(0x400004, 0x1000_0040, False, 0, -1),
        MemOp(0x400008, 0x2000_0000, True, 12, 0),
    ]


RECORD_SIZE = 17  # <IIBIi>


class TestBinaryCorruption:
    def test_truncation_reports_offset_and_index(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(path, sample_trace())
        path.write_bytes(path.read_bytes()[:-3])  # clip the last record
        with pytest.raises(TraceFormatError) as info:
            list(load_trace(path))
        assert info.value.record_index == 2
        assert info.value.offset == len(MAGIC) + 2 * RECORD_SIZE
        assert str(info.value.offset) in str(info.value)

    def test_bad_magic_reports_offset_zero(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_bytes(b"NOPE" + b"\x00" * 40)
        with pytest.raises(TraceFormatError) as info:
            list(load_trace(path))
        assert info.value.offset == 0

    def test_error_is_a_value_error(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(path, sample_trace())
        path.write_bytes(path.read_bytes()[:-3])
        with pytest.raises(ValueError):  # backwards-compatible catch
            list(load_trace(path))

    def test_non_strict_salvages_intact_prefix(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace(path, sample_trace())
        path.write_bytes(path.read_bytes()[:-3])
        with pytest.warns(UserWarning, match="truncated"):
            ops = list(load_trace(path, strict=False))
        assert ops == sample_trace()[:2]

    def test_non_strict_still_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_bytes(b"NOPE" + b"\x00" * 40)
        with pytest.raises(TraceFormatError):
            list(load_trace(path, strict=False))


class TestTextCorruption:
    def test_malformed_line_reports_line_and_offset(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("# header\n0x1 0x1000 L 3 -1\n0x2 0x2000 X 0 -1\n")
        with pytest.raises(TraceFormatError) as info:
            list(load_trace_text(path))
        assert info.value.record_index == 3  # 1-based line number
        assert info.value.offset == len("# header\n0x1 0x1000 L 3 -1\n")

    def test_non_integer_field_is_format_error(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("0x1 0x1000 L three -1\n")
        with pytest.raises(TraceFormatError):
            list(load_trace_text(path))

    def test_non_strict_skips_corrupt_records(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text(
            "0x1 0x1000 L 3 -1\nGARBAGE LINE\n0x2 0x2000 S 0 -1\n"
        )
        with pytest.warns(UserWarning, match="malformed"):
            ops = list(load_trace_text(path, strict=False))
        assert len(ops) == 2
        assert ops[0].pc == 0x1 and ops[1].pc == 0x2

    def test_round_trip_still_exact(self, tmp_path):
        path = tmp_path / "t.txt"
        save_trace_text(path, sample_trace())
        assert list(load_trace_text(path)) == sample_trace()
