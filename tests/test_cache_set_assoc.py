"""Unit tests for the set-associative cache: LRU, eviction, prefetch bits."""

import pytest

from repro.cache.set_assoc import SetAssociativeCache


def make_cache(size=1024, ways=2, block=64):
    return SetAssociativeCache(size, ways, block)


class TestGeometry:
    def test_set_count(self):
        cache = make_cache(1024, 2, 64)  # 16 blocks, 2-way -> 8 sets
        assert cache.n_sets == 8
        assert cache.n_blocks == 16

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 3, 64)

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1024, 2, 48)


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.lookup(0x1000) is None
        cache.insert(0x1000)
        assert cache.lookup(0x1000) is not None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_lookup_within_block_hits(self):
        cache = make_cache(block=64)
        cache.insert(0x1000)
        assert cache.lookup(0x103F) is not None
        assert cache.lookup(0x1040) is None

    def test_reinsert_refreshes_not_evicts(self):
        cache = make_cache()
        cache.insert(0x1000)
        victim = cache.insert(0x1000)
        assert victim is None
        assert len(cache) == 1


class TestLru:
    def test_lru_victim_selected(self):
        cache = make_cache(1024, 2, 64)  # 8 sets; same set: stride 512
        a, b, c = 0x1000, 0x1000 + 512, 0x1000 + 1024
        cache.insert(a)
        cache.insert(b)
        victim = cache.insert(c)  # evicts a (LRU)
        assert victim is not None and victim.addr == a

    def test_touch_updates_recency(self):
        cache = make_cache(1024, 2, 64)
        a, b, c = 0x1000, 0x1000 + 512, 0x1000 + 1024
        cache.insert(a)
        cache.insert(b)
        cache.lookup(a)  # a becomes MRU
        victim = cache.insert(c)
        assert victim.addr == b

    def test_peek_and_contains_do_not_touch(self):
        cache = make_cache(1024, 2, 64)
        a, b, c = 0x1000, 0x1000 + 512, 0x1000 + 1024
        cache.insert(a)
        cache.insert(b)
        cache.peek(a)
        assert cache.contains(a)
        victim = cache.insert(c)
        assert victim.addr == a  # peek/contains did not refresh a
        assert cache.stats.hits == 0


class TestPrefetchedBits:
    def test_prefetch_owner_recorded_and_cleared(self):
        cache = make_cache()
        cache.insert(0x1000, prefetch_owner="cdp")
        block = cache.lookup(0x1000)
        assert block.was_prefetched
        assert block.mark_used() == "cdp"
        assert not block.was_prefetched
        assert block.mark_used() is None

    def test_prefetch_fill_counted(self):
        cache = make_cache()
        cache.insert(0x1000, prefetch_owner="stream")
        assert cache.stats.prefetch_fills == 1


class TestEvictionCallback:
    def test_callback_receives_victims(self):
        cache = make_cache(256, 1, 64)  # 4 sets, direct-mapped
        victims = []
        cache.on_eviction = victims.append
        cache.insert(0x1000)
        cache.insert(0x1000 + 256)  # same set
        assert [v.addr for v in victims] == [0x1000]
        assert cache.stats.evictions == 1

    def test_invalidate_removes_silently(self):
        cache = make_cache()
        cache.insert(0x1000)
        removed = cache.invalidate(0x1000)
        assert removed.addr == 0x1000
        assert not cache.contains(0x1000)
        assert cache.stats.evictions == 0


class TestFillTime:
    def test_fill_time_preserved(self):
        cache = make_cache()
        cache.insert(0x1000, fill_time=123.0)
        assert cache.lookup(0x1000).fill_time == 123.0

    def test_resident_blocks_snapshot(self):
        cache = make_cache()
        cache.insert(0x1000)
        cache.insert(0x2000)
        snapshot = cache.resident_blocks()
        assert set(snapshot) == {0x1000, 0x2000}
